"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that ``pip install -e .`` works in offline environments whose setuptools
lacks the ``wheel`` package needed by PEP 517 editable builds (pip then falls
back to the legacy ``setup.py develop`` code path).
"""

from setuptools import setup

setup()
