"""Packaging metadata for the ``repro`` reproduction toolkit.

Kept in ``setup.py`` (rather than ``pyproject.toml``) so that
``pip install -e .`` works in offline environments whose setuptools lacks
the ``wheel`` package needed by PEP 517 editable builds — pip then falls
back to the legacy ``setup.py`` code path, which this file fully supports.

Install targets:

* ``pip install .`` — core library + ``repro`` CLI (numpy + networkx only);
* ``pip install .[scipy]`` — SciPy-accelerated batched flood kernel;
* ``pip install .[fast]`` — numba, enabling the compiled ``jit`` kernel
  tier for the stochastic search loops (identical results, much faster);
* ``pip install .[dev]`` — the test/benchmark/lint toolchain (pytest,
  hypothesis, ruff, mypy; ``repro lint`` itself is stdlib-only).

Everything optional degrades gracefully: without scipy the CSR flood
kernel falls back to pure NumPy, without numba the ``jit`` kernel tier
falls back to the Python loops (see README "Kernel tiers").
"""

import os.path

from setuptools import find_packages, setup


def _read_version() -> str:
    version_path = os.path.join(
        os.path.dirname(__file__), "src", "repro", "_version.py"
    )
    namespace = {}
    with open(version_path, encoding="utf-8") as handle:
        exec(handle.read(), namespace)
    return namespace["__version__"]


setup(
    name="repro-guclu-yuksel-2007",
    version=_read_version(),
    description=(
        "Scale-free overlay topologies with hard cutoffs for unstructured "
        "P2P networks (Guclu & Yuksel, ICDCS 2007) — reproduction toolkit"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.9",
    install_requires=[
        "numpy>=1.22",
        "networkx>=2.8",
    ],
    extras_require={
        "scipy": ["scipy>=1.8"],
        "fast": ["numba>=0.56"],
        "dev": [
            "pytest>=7",
            "pytest-benchmark>=4",
            "hypothesis>=6",
            "ruff>=0.4",
            "mypy>=1.8",
        ],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 5 - Production/Stable",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Distributed Computing",
    ],
)
