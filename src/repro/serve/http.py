"""A dependency-free asyncio HTTP/1.1 front end for the scenario service.

Hand-rolled on :func:`asyncio.start_server` — no framework, no new
dependencies — because the protocol surface is deliberately tiny:

====== ============================= ==========================================
Method Path                          Meaning
====== ============================= ==========================================
POST   ``/scenarios``                Submit a :class:`ScenarioSpec` JSON body.
                                     Query: ``wait=0`` (return 202
                                     immediately), ``scale=...``, ``seed=...``.
GET    ``/scenarios/<hash>``         Status/result of the newest job for a
                                     canonical spec hash.
GET    ``/scenarios/<hash>/events``  NDJSON progress stream (one JSON object
                                     per line, live until the job finishes).
GET    ``/healthz``                  Liveness + uptime.
GET    ``/metrics``                  Telemetry counters/latencies/store stats.
====== ============================= ==========================================

Every connection serves one request and closes (``Connection: close``),
which keeps the parser trivial and NDJSON framing unambiguous: event
streams are terminated by EOF, not chunked encoding.  Blocking service
calls (``submit`` waits on a computation future) run in the event loop's
default thread pool so one slow scenario never stalls health checks.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.errors import ReproError, ScenarioError
from repro.serve.service import ScenarioService
from repro.telemetry.collector import telemetry_clock
from repro.telemetry.logs import get_logger
from repro.telemetry.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE

__all__ = ["ServeHTTP"]

_log = get_logger("repro.serve.http")

#: Specs are small; anything bigger than this is a client error.
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Cap on the request line + one header line.
MAX_LINE_BYTES = 16 * 1024


class _BadRequest(Exception):
    """Maps to a 400 with its message as detail."""


class ServeHTTP:
    """Bind a :class:`ScenarioService` to a TCP port.

    ``port=0`` binds an ephemeral port (tests); the bound port is available
    as :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        service: ScenarioService,
        host: str = "127.0.0.1",
        port: int = 0,
        access_log: bool = True,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        #: Emit one structured ``http.access`` record per request through
        #: the ambient log handler (``repro serve --quiet`` turns this off).
        self.access_log = access_log
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    # Request plumbing
    # ------------------------------------------------------------------ #
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = telemetry_clock()
        # Per-connection response state: the send helpers record the status
        # and the response's trace id here so the access log can report
        # them after dispatch (connections interleave on one event loop, so
        # this must stay request-local).
        state: Dict[str, Any] = {"status": 0, "trace_id": None}
        method: Optional[str] = None
        path: Optional[str] = None
        try:
            method, path, params, body, headers = await self._read_request(reader)
            await self._dispatch(writer, method, path, params, body, headers, state)
        except _BadRequest as error:
            await self._send_json(
                writer, 400, {"error": "BadRequest", "detail": str(error)},
                state,
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request/response
        except Exception as error:  # pragma: no cover - last-resort guard
            print(f"serve: unhandled error: {error!r}", file=sys.stderr)
            try:
                await self._send_json(
                    writer, 500,
                    {"error": type(error).__name__, "detail": str(error)},
                    state,
                )
            except ConnectionError:
                pass
        finally:
            if self.access_log and method is not None:
                _log.info(
                    "http.access",
                    method=method,
                    path=path or "-",
                    status=state["status"],
                    duration_ms=round((telemetry_clock() - started) * 1e3, 3),
                    trace_id=state["trace_id"],
                )
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], bytes, Dict[str, str]]:
        request_line = await reader.readline()
        if not request_line:
            raise _BadRequest("empty request")
        if len(request_line) > MAX_LINE_BYTES:
            raise _BadRequest("request line too long")
        try:
            method, target, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            raise _BadRequest("malformed request line") from None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if len(line) > MAX_LINE_BYTES:
                raise _BadRequest("header line too long")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _BadRequest("malformed Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _BadRequest(f"body too large (limit {MAX_BODY_BYTES} bytes)")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        params = {
            name: values[-1]
            for name, values in parse_qs(split.query).items()
        }
        return method.upper(), split.path, params, body, headers

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        state: Optional[Dict[str, Any]] = None,
    ) -> None:
        if state is not None:
            state["status"] = status
            if payload.get("trace_id"):
                state["trace_id"] = payload["trace_id"]
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        writer.write(self._head(status, "application/json", len(body)) + body)
        await writer.drain()

    @staticmethod
    def _head(status: int, content_type: str, length: Optional[int]) -> bytes:
        reasons = {
            200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            500: "Internal Server Error",
        }
        lines = [
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            "Connection: close",
        ]
        if length is not None:
            lines.append(f"Content-Length: {length}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        params: Dict[str, str],
        body: bytes,
        headers: Dict[str, str],
        state: Dict[str, Any],
    ) -> None:
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, self.service.health(), state)
            return
        if path == "/metrics" and method == "GET":
            # Content negotiation: Prometheus scrapers send ``Accept:
            # text/plain`` (or an openmetrics type) and get text exposition;
            # everything else — including bare curls and the pre-existing
            # JSON consumers — keeps the JSON body.
            accept = headers.get("accept", "")
            if "text/plain" in accept or "openmetrics" in accept:
                text = self.service.metrics_text().encode("utf-8")
                state["status"] = 200
                writer.write(
                    self._head(200, PROMETHEUS_CONTENT_TYPE, len(text)) + text
                )
                await writer.drain()
            else:
                await self._send_json(writer, 200, self.service.metrics(), state)
            return
        if path == "/scenarios":
            if method != "POST":
                await self._send_json(
                    writer, 405,
                    {"error": "MethodNotAllowed", "detail": "POST a spec here"},
                    state,
                )
                return
            await self._submit(writer, params, body, state)
            return
        if path.startswith("/scenarios/") and method == "GET":
            rest = path[len("/scenarios/"):]
            if rest.endswith("/events"):
                await self._stream_events(
                    writer, rest[: -len("/events")].rstrip("/"), state
                )
            else:
                await self._job_status(writer, rest, state)
            return
        await self._send_json(
            writer, 404,
            {"error": "NotFound", "detail": f"no route for {path}"},
            state,
        )

    async def _submit(
        self,
        writer: asyncio.StreamWriter,
        params: Dict[str, str],
        body: bytes,
        state: Dict[str, Any],
    ) -> None:
        wait = params.get("wait", "1") not in ("0", "false", "no")
        seed: Optional[int] = None
        if "seed" in params:
            try:
                seed = int(params["seed"])
            except ValueError:
                raise _BadRequest(f"malformed seed {params['seed']!r}") from None
        scale = params.get("scale")
        loop = asyncio.get_running_loop()
        try:
            response = await loop.run_in_executor(
                None,
                lambda: self.service.submit(body, scale=scale, seed=seed, wait=wait),
            )
        except ScenarioError as error:
            # Eager validation failed: the client's spec is the problem.
            await self._send_json(
                writer, 400, {"error": "ScenarioError", "detail": str(error)},
                state,
            )
            return
        except ReproError as error:
            await self._send_json(
                writer, 400,
                {"error": type(error).__name__, "detail": str(error)},
                state,
            )
            return
        if response.get("status") == "failed":
            await self._send_json(writer, 500, response, state)
        elif response.get("status") in ("queued", "running"):
            await self._send_json(writer, 202, response, state)
        else:
            await self._send_json(writer, 200, response, state)

    async def _job_status(
        self,
        writer: asyncio.StreamWriter,
        spec_hash: str,
        state: Dict[str, Any],
    ) -> None:
        job = self.service.job_for(spec_hash)
        if job is None:
            await self._send_json(
                writer, 404,
                {"error": "NotFound", "detail": f"unknown scenario {spec_hash!r}"},
                state,
            )
            return
        await self._send_json(writer, 200, job.describe(), state)

    async def _stream_events(
        self,
        writer: asyncio.StreamWriter,
        spec_hash: str,
        state: Dict[str, Any],
    ) -> None:
        job = self.service.job_for(spec_hash)
        if job is None:
            await self._send_json(
                writer, 404,
                {"error": "NotFound", "detail": f"unknown scenario {spec_hash!r}"},
                state,
            )
            return
        state["status"] = 200
        state["trace_id"] = job.trace_id
        writer.write(self._head(200, "application/x-ndjson", None))
        await writer.drain()
        loop = asyncio.get_running_loop()
        cursor = 0
        while True:
            # EventLog.after blocks in a worker thread (0.5 s slices keep
            # the coroutine cancellable); events flush line by line.
            events, closed = await loop.run_in_executor(
                None, job.events.after, cursor, 0.5
            )
            for event in events:
                writer.write(
                    (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
                )
            cursor += len(events)
            await writer.drain()
            if closed and not events:
                break
