"""Scenario service: warm-cache, dedup-aware serving of scenario runs.

``repro serve`` turns the scenario layer into a long-lived local service:

* :mod:`repro.serve.service` — the transport-free core.
  :class:`ScenarioService` answers warm requests straight from the
  :class:`~repro.engine.store.ResultStore`, schedules cold ones on a
  shared :class:`~repro.engine.executor.ParallelExecutor` (whose frozen
  CSR topologies ride in shared memory, see :mod:`repro.core.shm`), and
  deduplicates identical in-flight specs by canonical hash — the second
  submitter awaits the first's future and receives a byte-identical
  response.  :class:`EventLog` buffers serializable progress events for
  streaming consumers.
* :mod:`repro.serve.http` — :class:`ServeHTTP`, a stdlib-only asyncio
  HTTP front end (``POST /scenarios``, NDJSON ``/events`` streams,
  ``/healthz``, ``/metrics``).
"""

from repro.serve.http import ServeHTTP
from repro.serve.service import EventLog, ScenarioJob, ScenarioService

__all__ = ["EventLog", "ScenarioJob", "ScenarioService", "ServeHTTP"]
