"""The scenario service core: admission, warm lookup, in-flight dedup.

:class:`ScenarioService` is the transport-free heart of ``repro serve`` —
plain blocking methods a test can drive directly, which the asyncio HTTP
layer (:mod:`repro.serve.http`) calls from worker threads.  One service
instance owns:

* a shared :class:`~repro.engine.executor.Executor` every scenario's
  realization tasks fan into (with :class:`ParallelExecutor` the frozen
  graphs cross the pool boundary through shared memory, see
  :mod:`repro.core.shm`);
* an optional :class:`~repro.engine.store.ResultStore` answering *warm*
  requests straight from disk by the spec's canonical hash;
* an in-flight table keyed by ``(spec hash, scale, seed)`` that
  deduplicates identical *cold* requests — the second identical request
  awaits the first's future instead of recomputing;
* a :class:`~repro.telemetry.collector.TelemetryCollector` counting
  requests / warm hits / dedup hits / cold misses / errors and observing
  request latencies, surfaced by ``GET /metrics``.

Request lifecycle events (accepted → running → per-task progress →
completed/failed) are appended to a per-job :class:`EventLog` as plain
dicts — the structured :class:`~repro.engine.progress.ProgressEvent` form,
not scraped text — which ``GET /scenarios/<hash>/events`` streams as
NDJSON.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.errors import ReproError, ScenarioError
from repro.engine.executor import Executor, SerialExecutor
from repro.engine.progress import ProgressEvent, ProgressReporter
from repro.engine.store import ResultStore
from repro.experiments.runner import ExperimentScale
from repro.scenarios.compile import run_scenario_cached, scenario_cache_extra
from repro.scenarios.measure import resolve_scale
from repro.scenarios.spec import ScenarioSpec
from repro.telemetry.collector import (
    TelemetryCollector,
    telemetry_clock,
    use_telemetry,
)
from repro.telemetry.logs import get_logger
from repro.telemetry.trace import new_trace_id, use_trace_id

__all__ = ["EventLog", "ScenarioJob", "ScenarioService"]

_log = get_logger("repro.serve")


class EventLog:
    """A thread-safe, append-only sequence of progress events with waiting.

    Producers (the job's worker thread) :meth:`append` dicts and finally
    :meth:`close`; consumers (NDJSON streams) call :meth:`after` with
    their cursor and block until new events arrive or the log closes —
    so a client tailing ``/events`` sees each task line the moment it
    happens, with no polling of completed state.
    """

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self._events: List[Dict[str, Any]] = []
        self._condition = threading.Condition()
        self._closed = False
        #: The owning request's correlation id; stamped on every event so
        #: an NDJSON line is attributable without joining on the response.
        self.trace_id = trace_id

    def append(self, payload: Dict[str, Any]) -> None:
        with self._condition:
            record = dict(payload, seq=len(self._events))
            if self.trace_id is not None and record.get("trace_id") is None:
                record["trace_id"] = self.trace_id
            self._events.append(record)
            self._condition.notify_all()

    def append_progress(self, event: ProgressEvent) -> None:
        """The :class:`~repro.engine.progress.ProgressReporter` sink."""
        self.append(event.as_dict())

    def close(self) -> None:
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed

    def snapshot(self) -> List[Dict[str, Any]]:
        """All events so far (a copy)."""
        with self._condition:
            return list(self._events)

    def after(
        self, cursor: int, timeout: Optional[float] = None
    ) -> Tuple[List[Dict[str, Any]], bool]:
        """Block until events beyond ``cursor`` exist (or closed/timeout).

        Returns ``(new_events, closed)``; an empty list with
        ``closed=True`` means the stream is exhausted.
        """
        with self._condition:
            self._condition.wait_for(
                lambda: len(self._events) > cursor or self._closed,
                timeout=timeout,
            )
            return list(self._events[cursor:]), self._closed


class ScenarioJob:
    """One admitted scenario computation (shared by all deduped waiters)."""

    def __init__(
        self,
        spec: ScenarioSpec,
        scale: ExperimentScale,
        job_key: str,
        trace_id: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.scale = scale
        self.job_key = job_key
        self.spec_hash = spec.spec_hash()
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.status = "queued"  # queued | running | done | failed
        self.from_cache = False
        self.result_dict: Optional[Dict[str, Any]] = None
        self.error: Optional[Dict[str, str]] = None
        self.created_at = telemetry_clock()
        self.seconds: Optional[float] = None
        self.events = EventLog(trace_id=self.trace_id)
        self.future: "Future[None]" = Future()
        self.events.append({
            "event": "accepted",
            "scenario": spec.scenario_id,
            "spec_hash": self.spec_hash,
            "scale": scale.name,
            "seed": scale.seed,
        })

    def describe(self) -> Dict[str, Any]:
        """The JSON body of ``GET /scenarios/<hash>`` and POST responses."""
        payload: Dict[str, Any] = {
            "scenario": self.spec.scenario_id,
            "spec_hash": self.spec_hash,
            "trace_id": self.trace_id,
            "scale": self.scale.name,
            "seed": self.scale.seed,
            "status": self.status,
            "from_cache": self.from_cache,
        }
        if self.seconds is not None:
            payload["seconds"] = self.seconds
        if self.result_dict is not None:
            payload["result"] = self.result_dict
        if self.error is not None:
            payload["error"] = self.error
        return payload


class ScenarioService:
    """Admission, caching, and dedup for scenario computations.

    Parameters
    ----------
    store:
        Optional result store; with one attached, warm requests are served
        from disk and every computed result is persisted for the next
        process (a restarted service answers the same hash without
        recompute).
    executor:
        The engine executor all scenario realization tasks share (default:
        serial).  The service does **not** close an executor it was given.
    scale, seed, backend, kernels:
        Defaults applied to every request; ``scale``/``seed`` can be
        overridden per request.
    workers:
        How many scenario computations may run concurrently (each fans its
        realization tasks into the shared ``executor``).
    telemetry:
        Collector for service counters/latencies (default: a fresh one).
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        executor: Optional[Executor] = None,
        scale: "Optional[ExperimentScale | str]" = None,
        seed: Optional[int] = None,
        backend: Optional[str] = None,
        kernels: Optional[str] = None,
        workers: int = 4,
        telemetry: Optional[TelemetryCollector] = None,
    ) -> None:
        self.store = store
        self.executor = executor if executor is not None else SerialExecutor()
        self._owns_executor = executor is None
        if isinstance(scale, str):
            scale = ExperimentScale.from_name(scale)
        self.default_scale = resolve_scale(scale, seed)
        self.backend = backend
        self.kernels = kernels
        self.telemetry = telemetry if telemetry is not None else TelemetryCollector()
        self.started_at = telemetry_clock()
        self._lock = threading.Lock()
        # In-flight jobs keyed by (spec hash, scale name, seed) — the dedup
        # identity; and every job ever admitted keyed by spec hash for
        # /scenarios/<hash> and /events lookups (latest wins).
        self._inflight: Dict[str, ScenarioJob] = {}
        self._jobs: Dict[str, ScenarioJob] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-serve"
        )
        self._closed = False

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #
    def _resolve_scale(
        self, scale_name: Optional[str], seed: Optional[int]
    ) -> ExperimentScale:
        scale = (
            ExperimentScale.from_name(scale_name)
            if scale_name is not None
            else self.default_scale
        )
        if seed is not None:
            scale = scale.with_seed(seed)
        elif scale_name is not None:
            # A per-request scale keeps the service's configured base seed.
            scale = scale.with_seed(self.default_scale.seed)
        return scale

    def parse_spec(self, body: "str | bytes | Mapping[str, Any]") -> ScenarioSpec:
        """Parse and eagerly validate a request body into a spec.

        Raises :class:`~repro.core.errors.ScenarioError` (the HTTP layer's
        400 with detail) on malformed JSON or an invalid spec.
        """
        if isinstance(body, bytes):
            body = body.decode("utf-8", errors="replace")
        if isinstance(body, str):
            spec = ScenarioSpec.from_json(body)
        else:
            spec = ScenarioSpec.from_dict(body)
        spec.validate()
        return spec

    def submit(
        self,
        body: "str | bytes | Mapping[str, Any]",
        scale: Optional[str] = None,
        seed: Optional[int] = None,
        wait: bool = True,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Admit one scenario request; return its response body.

        The three paths, in order:

        1. **warm** — the store already holds this (spec hash, scale, seed):
           answer from disk, no computation;
        2. **dedup** — an identical request is in flight: await its future
           (no second computation, byte-identical response);
        3. **cold** — schedule the computation on the worker pool.

        With ``wait=False`` cold/dedup requests return immediately with
        ``status="queued"``/``"running"``; poll ``GET /scenarios/<hash>``
        or tail ``/events``.
        """
        started = telemetry_clock()
        self.telemetry.count("serve.requests")
        try:
            spec = self.parse_spec(body)
            resolved = self._resolve_scale(scale, seed)
        except (ScenarioError, ReproError):
            self.telemetry.count("serve.errors")
            raise
        spec_hash = spec.spec_hash()
        job_key = f"{spec_hash}:{resolved.name}:{resolved.seed}"
        # Every request gets a correlation id up front.  A deduped request
        # adopts the in-flight job's id (its events already carry it), so
        # the id returned in the response always matches the event stream.
        trace_id = new_trace_id()

        # Warm path: answer straight from the store, no lock needed.
        if self.store is not None:
            with use_trace_id(trace_id), self.telemetry.span(
                "serve.lookup",
                attrs={
                    "spec_hash": spec_hash,
                    "scale": resolved.name,
                    "seed": resolved.seed,
                },
            ):
                cached = self.store.get(
                    spec.scenario_id, resolved, extra=scenario_cache_extra(spec)
                )
            if cached is not None:
                self.telemetry.count("serve.warm_hits")
                job = self._record_warm_job(
                    spec, resolved, job_key, cached, trace_id
                )
                self._observe_latency(started)
                with use_trace_id(trace_id):
                    _log.info(
                        "job-warm", spec_hash=spec_hash, scale=resolved.name
                    )
                return job.describe()

        deduped = False
        with self._lock:
            if self._closed:
                raise ReproError("scenario service is shutting down")
            job = self._inflight.get(job_key)
            if job is not None:
                deduped = True
            else:
                job = ScenarioJob(spec, resolved, job_key, trace_id)
                self._inflight[job_key] = job
                self._jobs[spec_hash] = job
                self._pool.submit(self._run_job, job)
        if deduped:
            self.telemetry.count("serve.dedup_hits")
        else:
            self.telemetry.count("serve.cold_misses")
        with use_trace_id(job.trace_id):
            _log.info(
                "job-deduped" if deduped else "job-accepted",
                spec_hash=spec_hash,
                scale=resolved.name,
                seed=resolved.seed,
            )
        if wait:
            job.future.result(timeout=timeout)
        self._observe_latency(started)
        return job.describe()

    def _record_warm_job(
        self,
        spec: ScenarioSpec,
        scale: ExperimentScale,
        job_key: str,
        cached: Any,
        trace_id: Optional[str] = None,
    ) -> ScenarioJob:
        """Register a completed job for a store hit (for later lookups)."""
        job = ScenarioJob(spec, scale, job_key, trace_id)
        job.status = "done"
        job.from_cache = True
        job.result_dict = cached.as_dict()
        job.seconds = 0.0
        job.events.append({
            "event": "completed",
            "spec_hash": job.spec_hash,
            "from_cache": True,
            "source": "store",
        })
        job.events.close()
        job.future.set_result(None)
        with self._lock:
            self._jobs[job.spec_hash] = job
        return job

    def _run_job(self, job: ScenarioJob) -> None:
        job.status = "running"
        job.events.append({"event": "running", "spec_hash": job.spec_hash})
        reporter = ProgressReporter(sink=job.events.append_progress)
        started = telemetry_clock()
        try:
            # The worker thread's ambient stacks are empty; install the
            # service collector so store/kernel/task spans aggregate into
            # /metrics, and the job's trace id so every span, progress
            # event, and log line below carries it.  The whole computation
            # is the request's root span — the top of the
            # serve → scenario → series → task tree.  Executor/backend/
            # kernels are passed explicitly and run_scenario_cached
            # installs them around the computation.
            with use_telemetry(self.telemetry), use_trace_id(job.trace_id):
                _log.info(
                    "job-running",
                    spec_hash=job.spec_hash,
                    scenario=job.spec.scenario_id,
                    scale=job.scale.name,
                    seed=job.scale.seed,
                )
                with self.telemetry.span(
                    "serve.request",
                    attrs={
                        "spec_hash": job.spec_hash,
                        "scenario": job.spec.scenario_id,
                        "scale": job.scale.name,
                        "seed": job.scale.seed,
                    },
                ):
                    result, from_cache = run_scenario_cached(
                        job.spec,
                        scale=job.scale,
                        executor=self.executor,
                        store=self.store,
                        progress=reporter,
                        backend=self.backend,
                        kernels=self.kernels,
                    )
            self.telemetry.count("serve.computations")
            job.seconds = telemetry_clock() - started
            job.from_cache = from_cache
            job.result_dict = result.as_dict()
            job.status = "done"
            job.events.append({
                "event": "completed",
                "spec_hash": job.spec_hash,
                "from_cache": from_cache,
                "seconds": job.seconds,
            })
            with use_trace_id(job.trace_id):
                _log.info(
                    "job-completed",
                    spec_hash=job.spec_hash,
                    seconds=job.seconds,
                    from_cache=from_cache,
                )
        except ReproError as error:
            self.telemetry.count("serve.errors")
            job.seconds = telemetry_clock() - started
            job.status = "failed"
            job.error = {"type": type(error).__name__, "detail": str(error)}
            job.events.append({
                "event": "failed",
                "spec_hash": job.spec_hash,
                "error": job.error,
            })
            with use_trace_id(job.trace_id):
                _log.error(
                    "job-failed",
                    spec_hash=job.spec_hash,
                    error=job.error["type"],
                    detail=job.error["detail"],
                )
        finally:
            with self._lock:
                self._inflight.pop(job.job_key, None)
            job.events.close()
            job.future.set_result(None)

    def _observe_latency(self, started: float) -> None:
        self.telemetry.observe(
            "serve.request_seconds", telemetry_clock() - started
        )

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def job_for(self, spec_hash: str) -> Optional[ScenarioJob]:
        """The most recent job admitted for ``spec_hash``, or ``None``."""
        with self._lock:
            return self._jobs.get(spec_hash)

    def health(self) -> Dict[str, Any]:
        with self._lock:
            inflight = len(self._inflight)
        return {
            "status": "ok",
            "uptime_seconds": telemetry_clock() - self.started_at,
            "inflight": inflight,
            "jobs": self.executor.jobs,
        }

    def metrics(self) -> Dict[str, Any]:
        """The ``GET /metrics`` JSON body: counters, latencies, store state.

        Histogram entries carry bucket counts and derived p50/p95/p99
        alongside count/total/min/max (the collector's export form).
        """
        export = self.telemetry.export()
        with self._lock:
            inflight = len(self._inflight)
            known = len(self._jobs)
        return {
            "uptime_seconds": telemetry_clock() - self.started_at,
            "inflight": inflight,
            "known_jobs": known,
            "counters": export.get("counters", {}),
            "histograms": export.get("histograms", {}),
            "spans": export.get("spans", {}),
            "store": self.store.stats() if self.store is not None else None,
        }

    def metrics_text(self) -> str:
        """The ``GET /metrics`` Prometheus text body (content-negotiated).

        Counter/histogram/span families come from the collector export
        (``serve.request_seconds`` is scraped as the bucketed
        ``serve_request_seconds`` histogram); service- and store-level
        instantaneous values are appended as gauges.
        """
        from repro.telemetry.prometheus import render_prometheus

        export = self.telemetry.export()
        with self._lock:
            inflight = len(self._inflight)
            known = len(self._jobs)
        gauges: Dict[str, float] = {
            "serve_uptime_seconds": telemetry_clock() - self.started_at,
            "serve_inflight": inflight,
            "serve_known_jobs": known,
        }
        if self.store is not None:
            for name, value in self.store.stats().items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    gauges[f"store_{name}"] = value
        return render_prometheus(export, gauges)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drain workers, persist store counters, release the executor."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=True)
        if self._owns_executor:
            self.executor.close()
        if self.store is not None:
            self.store.save_stats()

    def __enter__(self) -> "ScenarioService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
