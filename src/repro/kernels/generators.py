"""Topology-construction kernels in reference draw order.

PR 4 moved the stochastic *search* loops onto compiled MT19937 kernels;
at paper scale (N = 10^5) that left topology *generation* as the dominant
per-realization cost — the growth loops of PA/HAPA/DAPA touch every node
through Python dict-of-sets operations, and CM shuffles a 2E-entry stub
list one draw at a time.  This module ports those loops to the same
kernel tier: each ``_*_kernel`` function replays one reference generator —
:class:`~repro.generators.pa.PreferentialAttachmentGenerator` (roulette
*and* paper-literal attempt strategies),
:class:`~repro.generators.nonlinear_pa.NonlinearPreferentialAttachmentGenerator`,
:class:`~repro.generators.hapa.HAPAGenerator`,
:class:`~repro.generators.dapa.DAPAGenerator`, and
:class:`~repro.generators.cm.ConfigurationModelGenerator` (stub matching)
— over preallocated NumPy degree/stub/adjacency arrays while consuming
**exactly** the CPython Mersenne-Twister draw sequence via
:mod:`repro.kernels.mt19937`.  A kernel build therefore produces the same
edges in the same insertion order, the same metadata counters, *and
leaves the RNG stream at the same position* as the Python loop it
replaces — so a full realization (generate + search) can run tier-``jit``
end to end and stay byte-identical to the reference.

Two layers live here, mirroring :mod:`repro.kernels.search`:

* the ``_*_kernel`` functions — plain array-in/array-out code decorated
  with :func:`repro.kernels._compat.maybe_njit` (compiled under numba,
  interpreted otherwise, identical values either way);
* the Python-facing builders (:func:`pa_roulette_build`,
  :func:`pa_attempt_build`, :func:`nlpa_build`, :func:`hapa_build`,
  :func:`dapa_build`, :func:`cm_stub_matching_build`)
  — they replicate the reference's Python-side draws (seed sampling, the
  CM degree sequence) on the real :class:`~repro.core.rng.RandomSource`,
  splice the stream into a kernel state vector, run the kernel, splice the
  advanced stream back, and ingest the emitted edge arrays through
  :meth:`repro.core.graph.Graph.from_edge_array` (which precomputes the
  CSR arrays, so a subsequent ``freeze()`` under the ``csr`` backend is
  free) — no per-edge Python calls anywhere.

Never call these from experiment code directly; the generators dispatch
here when :func:`repro.kernels.dispatch.kernel_generation_ready` says the
``jit`` tier is active.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.kernels._compat import maybe_njit
from repro.kernels.mt19937 import mt_randbelow, mt_random

__all__ = [
    "pa_roulette_build",
    "pa_attempt_build",
    "nlpa_build",
    "hapa_build",
    "dapa_build",
    "cm_stub_matching_build",
]

# Single source of truth for the safety bounds: the kernels must give up
# after exactly as many draws as the reference loops.
from repro.generators.pa import _MAX_REJECTIONS_PER_STUB as _PA_MAX_REJECTIONS
from repro.generators.dapa import _MAX_ATTEMPTS_PER_STUB as _DAPA_MAX_ATTEMPTS


# --------------------------------------------------------------------------- #
# Shared: growable per-node adjacency lists in one flat pool (HAPA's hop
# needs indexed, insertion-ordered neighbor access while degrees grow)
# --------------------------------------------------------------------------- #
@maybe_njit
def _pool_append(pool, starts, caps, lengths, cursor, node, value):
    """Append ``value`` to ``node``'s list, doubling its pool slab if full.

    ``cursor`` is an ``int64[1]`` bump-allocator head.  Amortised slab
    growth keeps the total pool requirement under ``4 * total_appends +
    8 * nodes`` (each node's discarded slabs sum to less than its final
    slab), which the callers size for up front.
    """
    if lengths[node] == caps[node]:
        new_cap = caps[node] * 2
        if new_cap < 4:
            new_cap = 4
        new_start = cursor[0]
        cursor[0] = new_start + new_cap
        for i in range(lengths[node]):
            pool[new_start + i] = pool[starts[node] + i]
        starts[node] = new_start
        caps[node] = new_cap
    pool[starts[node] + lengths[node]] = value
    lengths[node] += 1


@maybe_njit
def _contains(values, count, needle):
    """Linear membership test over ``values[:count]`` (count <= m, tiny)."""
    for i in range(count):
        if values[i] == needle:
            return True
    return False


# --------------------------------------------------------------------------- #
# PA: roulette-strategy growth (paper §III-B, fast strategy)
# --------------------------------------------------------------------------- #
@maybe_njit
def _pa_roulette_kernel(
    state, n, m, cutoff, start_node, max_rejections,
    degrees, entries, stub_list, stub_len, dead_entries, edge_u, edge_v,
):
    """Grow nodes ``start_node..n-1``; returns the metadata counters.

    Statement-for-statement replay of
    ``PreferentialAttachmentGenerator._build_roulette`` (including the
    live-entry audit that short-circuits doomed picks, the bounded
    rejection loop, and the degree-weighted fallback scan), emitting
    growth edges into ``edge_u``/``edge_v`` in attachment order.
    """
    edge_count = 0
    rejected_attempts = 0
    unfilled_stubs = 0
    chosen = np.empty(m, dtype=np.int64)
    for new_node in range(start_node, n):
        chosen_count = 0
        for _stub in range(m):
            # Live-entry audit: stub slots pointing at an unsaturated,
            # not-yet-linked node.  Zero means both the rejection loop and
            # the fallback scan are doomed — consume no draws.
            live = stub_len - dead_entries
            for i in range(chosen_count):
                neighbor = chosen[i]
                if degrees[neighbor] < cutoff:
                    live -= entries[neighbor]
            target = -1
            rejections = 0
            if live > 0:
                while rejections < max_rejections:
                    candidate = stub_list[mt_randbelow(state, stub_len)]
                    if (
                        candidate != new_node
                        and degrees[candidate] < cutoff
                        and not _contains(chosen, chosen_count, candidate)
                    ):
                        target = candidate
                        break
                    rejections += 1
                if target < 0:
                    # Fallback: degree-weighted scan over eligible nodes
                    # (one float draw, exactly rng.weighted_index).
                    total = 0
                    eligible_count = 0
                    for node in range(new_node + 1):
                        if (
                            node != new_node
                            and degrees[node] < cutoff
                            and degrees[node] > 0
                            and not _contains(chosen, chosen_count, node)
                        ):
                            total += degrees[node]
                            eligible_count += 1
                    if eligible_count > 0:
                        threshold = mt_random(state) * float(total)
                        cumulative = 0.0
                        last_eligible = -1
                        for node in range(new_node + 1):
                            if (
                                node != new_node
                                and degrees[node] < cutoff
                                and degrees[node] > 0
                                and not _contains(chosen, chosen_count, node)
                            ):
                                cumulative += degrees[node]
                                last_eligible = node
                                if threshold < cumulative:
                                    target = node
                                    break
                        if target < 0:
                            target = last_eligible
            rejected_attempts += rejections
            if target < 0:
                unfilled_stubs += 1
                continue
            degrees[target] += 1
            if degrees[target] == cutoff:
                dead_entries += entries[target]
            degrees[new_node] += 1
            edge_u[edge_count] = new_node
            edge_v[edge_count] = target
            edge_count += 1
            chosen[chosen_count] = target
            chosen_count += 1
        for i in range(chosen_count):
            neighbor = chosen[i]
            stub_list[stub_len] = neighbor
            stub_len += 1
            entries[neighbor] += 1
            if degrees[neighbor] >= cutoff:
                dead_entries += 1
            stub_list[stub_len] = new_node
            stub_len += 1
            entries[new_node] += 1
            if degrees[new_node] >= cutoff:
                dead_entries += 1
    return edge_count, rejected_attempts, unfilled_stubs


def _seed_clique_edges(seed_n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Edges of ``Graph.complete(seed_n)`` in its add order."""
    pairs = [(u, v) for u in range(seed_n) for v in range(u + 1, seed_n)]
    if not pairs:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    array = np.array(pairs, dtype=np.int64)
    return array[:, 0], array[:, 1]


def pa_roulette_build(config: Any, rng: RandomSource) -> Tuple[Graph, Dict[str, Any]]:
    """Kernel-tier replacement for ``_build_roulette``; same draws, same graph."""
    n, m = config.number_of_nodes, config.stubs
    cutoff = config.effective_cutoff()
    seed_n = min(m + 1, n)
    seed_graph = Graph.complete(seed_n)
    # The reference seeds its stub list from Graph.complete(...).edges();
    # replicate through the same call so the slot order is identical.
    seed_stub: List[int] = []
    for u, v in seed_graph.edges():
        seed_stub.append(u)
        seed_stub.append(v)

    growth = m * max(0, n - seed_n)
    stub_list = np.zeros(len(seed_stub) + 2 * growth, dtype=np.int64)
    stub_list[: len(seed_stub)] = seed_stub
    degrees = np.zeros(n, dtype=np.int64)
    degrees[:seed_n] = seed_n - 1
    entries = np.zeros(n, dtype=np.int64)
    for node in seed_stub:
        entries[node] += 1
    dead_entries = 0
    for node in range(seed_n):
        if degrees[node] >= cutoff:
            dead_entries += int(entries[node])
    edge_u = np.zeros(growth, dtype=np.int64)
    edge_v = np.zeros(growth, dtype=np.int64)

    state = rng.export_mt_state()
    edge_count, rejected_attempts, unfilled_stubs = _pa_roulette_kernel(
        state, n, m, cutoff, seed_n, _PA_MAX_REJECTIONS,
        degrees, entries, stub_list, len(seed_stub), dead_entries,
        edge_u, edge_v,
    )
    rng.import_mt_state(state)

    seed_u, seed_v = _seed_clique_edges(seed_n)
    graph = Graph.from_edge_array(
        n,
        np.concatenate([seed_u, edge_u[:edge_count]]),
        np.concatenate([seed_v, edge_v[:edge_count]]),
    )
    metadata = {
        "rejected_attempts": int(rejected_attempts),
        "unfilled_stubs": int(unfilled_stubs),
        "strategy": "roulette",
    }
    return graph, metadata


# --------------------------------------------------------------------------- #
# PA: attempt-strategy growth (paper §III-B, Algorithm 1 literal)
# --------------------------------------------------------------------------- #
@maybe_njit
def _pa_attempt_kernel(
    state, n, m, cutoff, start_node, max_rejections,
    degrees, total_degree, edge_u, edge_v,
):
    """Grow nodes ``start_node..n-1``; returns the metadata counters.

    Statement-for-statement replay of
    ``PreferentialAttachmentGenerator._build_attempt``: per attempt one
    uniform candidate draw then one acceptance draw, accepted when the
    candidate is not yet a neighbor, passes the ``k/k_total`` coin, and is
    below the cutoff.  The new node's only neighbors are this round's
    targets, so the reference's ``has_edge`` check reduces to a scan of
    ``chosen``.  The fourth return value flags the reference's edgeless
    seed-graph guard (raised as ``GenerationError`` by the wrapper).
    """
    edge_count = 0
    rejected_attempts = 0
    unfilled_stubs = 0
    chosen = np.empty(m, dtype=np.int64)
    for new_node in range(start_node, n):
        chosen_count = 0
        for _stub in range(m):
            placed = False
            attempts = 0
            while not placed and attempts < max_rejections:
                attempts += 1
                candidate = mt_randbelow(state, new_node)
                acceptance = mt_random(state)
                if total_degree == 0:
                    return edge_count, rejected_attempts, unfilled_stubs, 1
                if (
                    not _contains(chosen, chosen_count, candidate)
                    and acceptance < degrees[candidate] / total_degree
                    and degrees[candidate] < cutoff
                ):
                    edge_u[edge_count] = new_node
                    edge_v[edge_count] = candidate
                    edge_count += 1
                    degrees[candidate] += 1
                    degrees[new_node] += 1
                    total_degree += 2
                    chosen[chosen_count] = candidate
                    chosen_count += 1
                    placed = True
            rejected_attempts += attempts - 1
            if not placed:
                unfilled_stubs += 1
    return edge_count, rejected_attempts, unfilled_stubs, 0


def pa_attempt_build(config: Any, rng: RandomSource) -> Tuple[Graph, Dict[str, Any]]:
    """Kernel-tier replacement for ``_build_attempt``; same draws, same graph."""
    from repro.core.errors import GenerationError

    n, m = config.number_of_nodes, config.stubs
    cutoff = config.effective_cutoff()
    seed_n = min(m + 1, n)
    seed_graph = Graph.complete(seed_n)

    degrees = np.zeros(n, dtype=np.int64)
    for node in seed_graph.nodes():
        degrees[node] = seed_graph.degree(node)
    total_degree = seed_graph.total_degree
    growth = m * max(0, n - seed_n)
    edge_u = np.zeros(growth, dtype=np.int64)
    edge_v = np.zeros(growth, dtype=np.int64)

    state = rng.export_mt_state()
    edge_count, rejected_attempts, unfilled_stubs, edgeless = _pa_attempt_kernel(
        state, n, m, cutoff, seed_n, _PA_MAX_REJECTIONS,
        degrees, total_degree, edge_u, edge_v,
    )
    rng.import_mt_state(state)
    if edgeless:
        raise GenerationError(
            "preferential attachment needs at least one existing edge to "
            "define attachment probabilities; the seed graph is edgeless"
        )

    seed_edges = seed_graph.edges()
    seed_u = np.array([pair[0] for pair in seed_edges], dtype=np.int64)
    seed_v = np.array([pair[1] for pair in seed_edges], dtype=np.int64)
    graph = Graph.from_edge_array(
        n,
        np.concatenate([seed_u, edge_u[:edge_count]]),
        np.concatenate([seed_v, edge_v[:edge_count]]),
    )
    metadata = {
        "rejected_attempts": int(rejected_attempts),
        "unfilled_stubs": int(unfilled_stubs),
        "strategy": "attempt",
    }
    return graph, metadata


# --------------------------------------------------------------------------- #
# NLPA: nonlinear preferential attachment, Π(k) ∝ k^α (extension)
# --------------------------------------------------------------------------- #
@maybe_njit
def _nlpa_kernel(state, n, m, alpha, cutoff, start_node, degrees, edge_u, edge_v):
    """Grow nodes ``start_node..n-1``; returns ``(edge_count, unfilled)``.

    Replays ``NonlinearPreferentialAttachmentGenerator._build``: per stub
    one pass over ``0..new_node-1`` accumulating ``degree**alpha`` weights
    in node order (float-for-float the reference's ``sum(weights)``), then
    one ``rng.weighted_index`` draw — threshold compare and last-index
    fallback included.  A stub whose eligible set is empty *or* carries
    zero total weight (every eligible node isolated under ``alpha > 0``)
    consumes no draw, exactly like the reference's guard.
    """
    edge_count = 0
    unfilled_stubs = 0
    chosen = np.empty(m, dtype=np.int64)
    for new_node in range(start_node, n):
        chosen_count = 0
        for _stub in range(m):
            total = 0.0
            eligible_count = 0
            for node in range(new_node):
                if degrees[node] >= cutoff or _contains(chosen, chosen_count, node):
                    continue
                total += degrees[node] ** alpha
                eligible_count += 1
            if eligible_count == 0 or total <= 0.0:
                unfilled_stubs += 1
                continue
            threshold = mt_random(state) * total
            cumulative = 0.0
            target = -1
            last_eligible = -1
            for node in range(new_node):
                if degrees[node] >= cutoff or _contains(chosen, chosen_count, node):
                    continue
                cumulative += degrees[node] ** alpha
                last_eligible = node
                if threshold < cumulative:
                    target = node
                    break
            if target < 0:
                target = last_eligible
            edge_u[edge_count] = new_node
            edge_v[edge_count] = target
            edge_count += 1
            degrees[target] += 1
            degrees[new_node] += 1
            chosen[chosen_count] = target
            chosen_count += 1
    return edge_count, unfilled_stubs


def nlpa_build(
    config: Any, alpha: float, rng: RandomSource
) -> Tuple[Graph, Dict[str, Any]]:
    """Kernel-tier replacement for the nlpa ``_build``; same draws, same graph."""
    n, m = config.number_of_nodes, config.stubs
    cutoff = config.effective_cutoff()
    seed_n = min(m + 1, n)

    degrees = np.zeros(n, dtype=np.int64)
    degrees[:seed_n] = seed_n - 1
    growth = m * max(0, n - seed_n)
    edge_u = np.zeros(growth, dtype=np.int64)
    edge_v = np.zeros(growth, dtype=np.int64)

    state = rng.export_mt_state()
    edge_count, unfilled_stubs = _nlpa_kernel(
        state, n, m, float(alpha), cutoff, seed_n, degrees, edge_u, edge_v
    )
    rng.import_mt_state(state)

    seed_u, seed_v = _seed_clique_edges(seed_n)
    graph = Graph.from_edge_array(
        n,
        np.concatenate([seed_u, edge_u[:edge_count]]),
        np.concatenate([seed_v, edge_v[:edge_count]]),
    )
    metadata = {
        "exponent_alpha": float(alpha),
        "unfilled_stubs": int(unfilled_stubs),
    }
    return graph, metadata


# --------------------------------------------------------------------------- #
# HAPA: hop-and-attempt growth (paper §IV-A, Algorithm 3)
# --------------------------------------------------------------------------- #
@maybe_njit
def _hapa_accepts(state, degrees, chosen, chosen_count, new_node, candidate,
                  cutoff, total_degree):
    """``HAPAGenerator._accepts``: draw the coin only when pre-checks pass."""
    if candidate == new_node or _contains(chosen, chosen_count, candidate):
        return False
    degree = degrees[candidate]
    if degree >= cutoff or degree == 0:
        return False
    if total_degree == 0:
        return False
    return mt_random(state) < degree / total_degree


@maybe_njit
def _hapa_kernel(
    state, n, m, cutoff, max_hops,
    pool, starts, caps, degrees, cursor, edge_u, edge_v,
):
    """Build the whole HAPA topology; returns the metadata counters.

    The seed clique is constructed in the kernel (no draws, same adjacency
    order as ``Graph.complete``); growth edges are emitted in attachment
    order.
    """
    seed_n = m + 1 if m + 1 < n else n
    for u in range(seed_n):
        for v in range(u + 1, seed_n):
            _pool_append(pool, starts, caps, degrees, cursor, u, v)
            _pool_append(pool, starts, caps, degrees, cursor, v, u)
    total_degree = seed_n * (seed_n - 1)

    edge_count = 0
    total_hops = 0
    fallback_attachments = 0
    unfilled_stubs = 0
    chosen = np.empty(m, dtype=np.int64)
    for new_node in range(seed_n, n):
        filled = 0
        chosen_count = 0

        # Step 1 (paper lines 3-7): one attempt at a uniform existing node.
        candidate = mt_randbelow(state, new_node)
        if _hapa_accepts(state, degrees, chosen, chosen_count, new_node,
                         candidate, cutoff, total_degree):
            _pool_append(pool, starts, caps, degrees, cursor, new_node, candidate)
            _pool_append(pool, starts, caps, degrees, cursor, candidate, new_node)
            total_degree += 2
            edge_u[edge_count] = new_node
            edge_v[edge_count] = candidate
            edge_count += 1
            chosen[chosen_count] = candidate
            chosen_count += 1
            filled = 1
        current = candidate

        # Step 2 (paper lines 8-15): hop along links, attempting everywhere.
        hops_for_node = 0
        while filled < m:
            degree_current = degrees[current]
            if degree_current > 0:
                next_node = pool[starts[current]
                                 + mt_randbelow(state, degree_current)]
            else:
                # Isolated landing spot: restart from a random existing node.
                next_node = mt_randbelow(state, new_node)
            current = next_node
            hops_for_node += 1
            total_hops += 1
            if current != new_node and _hapa_accepts(
                state, degrees, chosen, chosen_count, new_node, current,
                cutoff, total_degree,
            ):
                _pool_append(pool, starts, caps, degrees, cursor, new_node, current)
                _pool_append(pool, starts, caps, degrees, cursor, current, new_node)
                total_degree += 2
                edge_u[edge_count] = new_node
                edge_v[edge_count] = current
                edge_count += 1
                chosen[chosen_count] = current
                chosen_count += 1
                filled += 1
                hops_for_node = 0
                continue
            if hops_for_node >= max_hops:
                # Fallback: uniform choice over the eligible nodes
                # (one draw, exactly rng.choice over the eligible list).
                eligible = 0
                for node in range(new_node + 1):
                    if (
                        node != new_node
                        and degrees[node] < cutoff
                        and not _contains(chosen, chosen_count, node)
                    ):
                        eligible += 1
                if eligible == 0:
                    unfilled_stubs += m - filled
                    break
                pick_index = mt_randbelow(state, eligible)
                picked = -1
                seen = 0
                for node in range(new_node + 1):
                    if (
                        node != new_node
                        and degrees[node] < cutoff
                        and not _contains(chosen, chosen_count, node)
                    ):
                        if seen == pick_index:
                            picked = node
                            break
                        seen += 1
                _pool_append(pool, starts, caps, degrees, cursor, new_node, picked)
                _pool_append(pool, starts, caps, degrees, cursor, picked, new_node)
                total_degree += 2
                edge_u[edge_count] = new_node
                edge_v[edge_count] = picked
                edge_count += 1
                chosen[chosen_count] = picked
                chosen_count += 1
                fallback_attachments += 1
                filled += 1
                hops_for_node = 0
    return edge_count, total_hops, fallback_attachments, unfilled_stubs


def hapa_build(config: Any, rng: RandomSource) -> Tuple[Graph, Dict[str, Any]]:
    """Kernel-tier replacement for ``HAPAGenerator._build``; same draws."""
    n, m = config.number_of_nodes, config.stubs
    cutoff = config.effective_cutoff()
    max_hops = config.max_hops_per_stub
    seed_n = min(m + 1, n)

    max_edges = seed_n * (seed_n - 1) // 2 + m * max(0, n - seed_n)
    pool = np.zeros(8 * max_edges + 8 * n + 64, dtype=np.int64)
    starts = np.zeros(n, dtype=np.int64)
    caps = np.zeros(n, dtype=np.int64)
    degrees = np.zeros(n, dtype=np.int64)
    cursor = np.zeros(1, dtype=np.int64)
    growth = m * max(0, n - seed_n)
    edge_u = np.zeros(growth, dtype=np.int64)
    edge_v = np.zeros(growth, dtype=np.int64)

    state = rng.export_mt_state()
    edge_count, total_hops, fallback_attachments, unfilled_stubs = _hapa_kernel(
        state, n, m, cutoff, max_hops,
        pool, starts, caps, degrees, cursor, edge_u, edge_v,
    )
    rng.import_mt_state(state)

    seed_u, seed_v = _seed_clique_edges(seed_n)
    graph = Graph.from_edge_array(
        n,
        np.concatenate([seed_u, edge_u[:edge_count]]),
        np.concatenate([seed_v, edge_v[:edge_count]]),
    )
    metadata = {
        "total_hops": int(total_hops),
        "fallback_attachments": int(fallback_attachments),
        "unfilled_stubs": int(unfilled_stubs),
    }
    return graph, metadata


# --------------------------------------------------------------------------- #
# DAPA: discover-and-attempt growth on a substrate (paper §IV-B, Algorithm 4)
# --------------------------------------------------------------------------- #
@maybe_njit
def _dapa_kernel(
    state, indptr, indices, n_sub, target_peers, m, cutoff, max_depth,
    max_attempts, peer_mask, overlay_deg, overlay_pos, peers_count,
    visited_epoch, depth, queue, horizon,
    join_rows, join_edge_counts, edge_u, edge_v,
):
    """Grow the overlay to ``target_peers``; returns join/edge counters.

    Replays ``DAPAGenerator._grow_overlay`` over the frozen substrate's
    ``indptr``/``indices`` (BFS discovery in defined neighbor order, the
    horizon-restricted accept/reject attachment, and the weighted-draw
    termination fallback), recording joining rows and their edges in
    insertion order.  ``overlay_pos`` maps a substrate row to the node's
    position in the overlay's insertion order (seeds first), and the edge
    arrays are emitted in *position* space so the wrapper can hand them to
    ``Graph.from_edge_array(..., edges_are_rows=True)`` without a
    per-edge id translation.
    """
    max_without_progress = 20 * n_sub
    attempts_without_progress = 0
    empty_horizons = 0
    short_horizons = 0
    discovery_messages = 0
    join_count = 0
    edge_count = 0
    epoch = 0
    chosen = np.empty(m, dtype=np.int64)
    while peers_count < target_peers:
        if attempts_without_progress > max_without_progress:
            # No remaining substrate node can see a peer within tau_sub hops.
            break
        node = mt_randbelow(state, n_sub)
        if peer_mask[node]:
            attempts_without_progress += 1
            continue

        # Horizon discovery: BFS bounded by tau_sub, epoch-stamped scratch.
        epoch += 1
        horizon_len = 0
        remaining_peers = peers_count
        visited_epoch[node] = epoch
        depth[node] = 0
        queue[0] = node
        head = 0
        tail = 1
        while head < tail and remaining_peers > 0:
            current = queue[head]
            head += 1
            current_depth = depth[current]
            if current_depth >= max_depth:
                continue
            for idx in range(indptr[current], indptr[current + 1]):
                neighbor = indices[idx]
                if visited_epoch[neighbor] == epoch:
                    continue
                visited_epoch[neighbor] = epoch
                depth[neighbor] = current_depth + 1
                queue[tail] = neighbor
                tail += 1
                if peer_mask[neighbor]:
                    remaining_peers -= 1
                    if overlay_deg[neighbor] < cutoff:
                        horizon[horizon_len] = neighbor
                        horizon_len += 1
        discovery_messages += 1
        if horizon_len == 0:
            empty_horizons += 1
            attempts_without_progress += 1
            continue

        join_rows[join_count] = node
        overlay_pos[node] = peers_count
        node_pos = overlay_pos[node]
        edges_before = edge_count
        if horizon_len <= m:
            short_horizons += 1
            for i in range(horizon_len):
                peer = horizon[i]
                edge_u[edge_count] = node_pos
                edge_v[edge_count] = overlay_pos[peer]
                edge_count += 1
                overlay_deg[node] += 1
                overlay_deg[peer] += 1
        else:
            # Accept/reject attachment (Algorithm 4 lines 18-29); the
            # horizon's total degree is computed once and deliberately
            # left stale as edges land, exactly like the reference.
            chosen_count = 0
            attempts = 0
            horizon_total_degree = 0
            for i in range(horizon_len):
                horizon_total_degree += overlay_deg[horizon[i]]
            while chosen_count < m and chosen_count < horizon_len:
                if attempts >= max_attempts or horizon_total_degree == 0:
                    # Weighted (or uniform) draw over the remaining
                    # eligible peers to guarantee termination.
                    total = 0
                    remaining_count = 0
                    for i in range(horizon_len):
                        peer = horizon[i]
                        if (
                            not _contains(chosen, chosen_count, peer)
                            and overlay_deg[peer] < cutoff
                        ):
                            weight = overlay_deg[peer]
                            if weight < 1:
                                weight = 1
                            total += weight
                            remaining_count += 1
                    if remaining_count == 0:
                        break
                    threshold = mt_random(state) * float(total)
                    cumulative = 0.0
                    picked = -1
                    last_eligible = -1
                    for i in range(horizon_len):
                        peer = horizon[i]
                        if (
                            not _contains(chosen, chosen_count, peer)
                            and overlay_deg[peer] < cutoff
                        ):
                            weight = overlay_deg[peer]
                            if weight < 1:
                                weight = 1
                            cumulative += weight
                            last_eligible = peer
                            if threshold < cumulative:
                                picked = peer
                                break
                    if picked < 0:
                        picked = last_eligible
                    edge_u[edge_count] = node_pos
                    edge_v[edge_count] = overlay_pos[picked]
                    edge_count += 1
                    overlay_deg[node] += 1
                    overlay_deg[picked] += 1
                    chosen[chosen_count] = picked
                    chosen_count += 1
                    attempts = 0
                    continue
                attempts += 1
                peer = horizon[mt_randbelow(state, horizon_len)]
                if _contains(chosen, chosen_count, peer):
                    continue
                degree = overlay_deg[peer]
                if degree >= cutoff:
                    continue
                if mt_random(state) < degree / horizon_total_degree:
                    edge_u[edge_count] = node_pos
                    edge_v[edge_count] = overlay_pos[peer]
                    edge_count += 1
                    overlay_deg[node] += 1
                    overlay_deg[peer] += 1
                    chosen[chosen_count] = peer
                    chosen_count += 1
        join_edge_counts[join_count] = edge_count - edges_before
        join_count += 1
        peer_mask[node] = True
        peers_count += 1
        attempts_without_progress = 0
    return (
        join_count, edge_count, peers_count,
        empty_horizons, short_horizons, discovery_messages,
    )


def dapa_build(
    config: Any, substrate: Any, rng: RandomSource
) -> Tuple[Graph, Dict[str, Any]]:
    """Kernel-tier replacement for ``DAPAGenerator._build`` (post-substrate).

    ``substrate`` is the already-resolved substrate graph — resolving it
    (and its ``rng.spawn``) happens in the generator so the stream prefix
    is shared with the reference.  The seed sampling below replays the
    reference's ``rng.sample`` on the real source; only the growth loop
    runs in the kernel.
    """
    from repro.core.csr import CSRGraph

    cutoff = config.effective_cutoff()
    m = config.stubs
    target_peers = config.overlay_size

    csr = substrate if isinstance(substrate, CSRGraph) else substrate.freeze()
    substrate_nodes = substrate.nodes()
    n_sub = len(substrate_nodes)

    seeds = rng.sample(substrate_nodes, config.initial_peers)
    seed_rows = [csr._row_of(node) for node in seeds]
    peer_mask = np.zeros(n_sub, dtype=np.bool_)
    overlay_deg = np.zeros(n_sub, dtype=np.int64)
    overlay_pos = np.full(n_sub, -1, dtype=np.int64)
    for position, row in enumerate(seed_rows):
        peer_mask[row] = True
        overlay_deg[row] = config.initial_peers - 1
        overlay_pos[row] = position

    max_joins = max(0, target_peers - config.initial_peers)
    max_edges = m * max_joins
    join_rows = np.zeros(max_joins, dtype=np.int64)
    join_edge_counts = np.zeros(max_joins, dtype=np.int64)
    edge_u = np.zeros(max_edges, dtype=np.int64)
    edge_v = np.zeros(max_edges, dtype=np.int64)

    state = rng.export_mt_state()
    (
        join_count, edge_count, peers_count,
        empty_horizons, short_horizons, discovery_messages,
    ) = _dapa_kernel(
        state, csr._indptr, csr._indices, n_sub, target_peers, m, cutoff,
        config.local_ttl, _DAPA_MAX_ATTEMPTS, peer_mask, overlay_deg,
        overlay_pos, config.initial_peers, np.zeros(n_sub, dtype=np.int64),
        np.zeros(n_sub, dtype=np.int64), np.zeros(n_sub, dtype=np.int64),
        np.zeros(n_sub, dtype=np.int64), join_rows, join_edge_counts,
        edge_u, edge_v,
    )
    rng.import_mt_state(state)

    row_ids = np.arange(n_sub, dtype=np.int64) if csr._ids is None else csr._ids
    join_ids = row_ids[join_rows[:join_count]]
    # Seed-clique edges in reference add order, as overlay *positions*
    # (seeds occupy positions 0..initial_peers-1 by construction).
    clique = [
        (i, j)
        for i in range(len(seeds))
        for j in range(i + 1, len(seeds))
    ]
    clique_u = np.array([pair[0] for pair in clique], dtype=np.int64)
    clique_v = np.array([pair[1] for pair in clique], dtype=np.int64)
    overlay = Graph.from_edge_array(
        list(seeds) + [int(node) for node in join_ids],
        np.concatenate([clique_u, edge_u[:edge_count]]),
        np.concatenate([clique_v, edge_v[:edge_count]]),
        edges_are_rows=True,
    )
    metadata = {
        "substrate_nodes": substrate.number_of_nodes,
        "substrate_edges": substrate.number_of_edges,
        "substrate_mean_degree": substrate.mean_degree(),
        "overlay_peers": int(peers_count),
        "target_overlay_size": target_peers,
        "reached_target": int(peers_count) >= target_peers,
        "empty_horizons": int(empty_horizons),
        "short_horizons": int(short_horizons),
        "discovery_messages": int(discovery_messages),
        "substrate_graph": substrate,
    }
    return overlay, metadata


# --------------------------------------------------------------------------- #
# CM: stub matching with self-loop/multi-edge removal (paper §III-C)
# --------------------------------------------------------------------------- #
@maybe_njit
def _cm_stub_matching_kernel(state, stubs, starts, lengths, pool, edge_u, edge_v):
    """Shuffle the stub list and pair consecutive stubs; returns counters.

    The shuffle is CPython's ``random.shuffle`` draw for draw; duplicate
    edges are detected with a scan over the shorter endpoint's adjacency
    slab (bounded by the prescribed cutoff).
    """
    length = stubs.shape[0]
    for i in range(length - 1, 0, -1):
        j = mt_randbelow(state, i + 1)
        swap = stubs[i]
        stubs[i] = stubs[j]
        stubs[j] = swap
    removed_self_loops = 0
    removed_multi_edges = 0
    edge_count = 0
    for index in range(0, length - 1, 2):
        u = stubs[index]
        v = stubs[index + 1]
        if u == v:
            removed_self_loops += 1
            continue
        if lengths[u] <= lengths[v]:
            scan, other = u, v
        else:
            scan, other = v, u
        duplicate = False
        for i in range(lengths[scan]):
            if pool[starts[scan] + i] == other:
                duplicate = True
                break
        if duplicate:
            removed_multi_edges += 1
            continue
        pool[starts[u] + lengths[u]] = v
        lengths[u] += 1
        pool[starts[v] + lengths[v]] = u
        lengths[v] += 1
        edge_u[edge_count] = u
        edge_v[edge_count] = v
        edge_count += 1
    return edge_count, removed_self_loops, removed_multi_edges


def cm_stub_matching_build(
    sequence: Sequence[int], rng: RandomSource
) -> Tuple[Graph, int, int]:
    """Kernel-tier replacement for ``_stub_matching``; same draws, same graph."""
    degrees = np.array(sequence, dtype=np.int64)
    n = len(degrees)
    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    starts = np.zeros(n, dtype=np.int64)
    np.cumsum(degrees[:-1], out=starts[1:])
    lengths = np.zeros(n, dtype=np.int64)
    pool = np.zeros(max(1, int(degrees.sum())), dtype=np.int64)
    max_edges = len(stubs) // 2
    edge_u = np.zeros(max(1, max_edges), dtype=np.int64)
    edge_v = np.zeros(max(1, max_edges), dtype=np.int64)

    state = rng.export_mt_state()
    edge_count, removed_self_loops, removed_multi_edges = _cm_stub_matching_kernel(
        state, stubs, starts, lengths, pool, edge_u, edge_v
    )
    rng.import_mt_state(state)

    graph = Graph.from_edge_array(n, edge_u[:edge_count], edge_v[:edge_count])
    return graph, int(removed_self_loops), int(removed_multi_edges)
