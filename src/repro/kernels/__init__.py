"""JIT kernel tier: compiled search and generation kernels below the CSR backend.

The third execution tier of the stack (after the ``adj`` reference backend
and the frozen ``csr`` backend): :mod:`repro.kernels.search` JIT-compiles
the NF/PF/RW query loops over the CSR ``indptr``/``indices`` arrays,
:mod:`repro.kernels.generators` the PA (both strategies) / nonlinear-PA /
HAPA / DAPA growth loops and CM stub matching over preallocated
degree/stub arrays, :mod:`repro.kernels.substrate` the GRN cell-grid sweep
and ER skip loop, and :mod:`repro.kernels.simulation` the protocol's
batched Gnutella queries — all while consuming the *exact* CPython
Mersenne-Twister draw sequence (:mod:`repro.kernels.mt19937`), so results
— graphs, curves, and RNG stream positions — are bit-for-bit identical to
the Python implementations.  :mod:`repro.kernels.dispatch` owns tier
selection: capability probing (numba + a parity self-check covering every
kernel family) and the ambient ``--kernels {auto,python,jit}`` mode.

This package import is deliberately light: numba (when installed) is only
imported on the first kernel-eligible query, never at import time.
"""

from repro.kernels.dispatch import (
    DEFAULT_KERNELS,
    KERNEL_MODES,
    active_kernels,
    kernel_generation_ready,
    kernel_query_ready,
    kernel_self_check,
    kernel_simulation_ready,
    kernel_tier,
    kernels_runtime,
    normalize_kernels,
    numba_available,
    resolve_kernels,
    use_kernels,
)

__all__ = [
    "DEFAULT_KERNELS",
    "KERNEL_MODES",
    "active_kernels",
    "kernel_generation_ready",
    "kernel_query_ready",
    "kernel_self_check",
    "kernel_simulation_ready",
    "kernel_tier",
    "kernels_runtime",
    "normalize_kernels",
    "numba_available",
    "resolve_kernels",
    "use_kernels",
]
