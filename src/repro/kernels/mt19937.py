"""CPython-compatible MT19937 over NumPy state arrays.

The stochastic search algorithms draw every coin from
:class:`repro.core.rng.RandomSource`, i.e. from CPython's
:class:`random.Random` — a Mersenne Twister with a specific seeding
algorithm (``init_by_array``), a specific float construction
(``genrand_res53``), and a specific rejection-sampling integer primitive
(``_randbelow`` over ``getrandbits``).  A compiled kernel can only replace
the Python loops *without changing a single result* if it consumes **the
same draw sequence**, so this module reimplements that exact stack over a
flat ``int64[625]`` NumPy state vector (624 key words + the stream
position) that JIT-compiled code can mutate in place:

* :func:`mt_state_from_seed` — ``random.Random(seed)``'s seeding for int
  seeds (absolute value, 32-bit little-endian key, ``init_by_array``);
* :func:`mt_genrand` — ``genrand_uint32`` including the 624-word twist;
* :func:`mt_random` — ``genrand_res53`` (two words → one double in [0,1));
* :func:`mt_getrandbits32` / :func:`mt_randbelow` — ``getrandbits`` /
  ``_randbelow_with_getrandbits`` semantics for the ≤ 32-bit widths the
  kernels need (multi-word :func:`getrandbits` exists at Python level for
  the parity tests).

State vectors convert losslessly to and from ``random.Random.getstate()``
via :func:`state_from_internal` / :func:`state_to_internal`;
:class:`repro.core.rng.RandomSource` wraps that as
``export_mt_state``/``import_mt_state`` so a kernel can pick a stream up
mid-flight and hand it back at the exact position the reference
implementation would have reached.  Parity with CPython for arbitrary
seeds and draw counts is pinned by ``tests/test_kernels_mt19937.py``.

The draw-consuming functions are decorated with
:func:`repro.kernels._compat.maybe_njit`: compiled under numba, plain
Python otherwise — identical values either way.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.kernels._compat import maybe_njit

__all__ = [
    "STATE_SIZE",
    "mt_state_from_seed",
    "state_from_internal",
    "state_to_internal",
    "mt_genrand",
    "mt_random",
    "mt_getrandbits32",
    "mt_randbelow",
    "getrandbits",
    "randrange",
]

_N = 624
_M = 397
_MATRIX_A = 0x9908B0DF
_UPPER_MASK = 0x80000000
_LOWER_MASK = 0x7FFFFFFF
_MASK32 = 0xFFFFFFFF

#: Length of a kernel state vector: 624 key words plus the position index.
STATE_SIZE = _N + 1


# --------------------------------------------------------------------------- #
# Seeding (Python level — runs once per stream, clarity over speed)
# --------------------------------------------------------------------------- #
def _init_genrand(mt: List[int], seed: int) -> None:
    """The reference ``init_genrand`` (mt19937ar), as CPython uses it."""
    mt[0] = seed & _MASK32
    for i in range(1, _N):
        mt[i] = (1812433253 * (mt[i - 1] ^ (mt[i - 1] >> 30)) + i) & _MASK32


def _init_by_array(key: Sequence[int]) -> List[int]:
    """The reference ``init_by_array``: how CPython seeds from an integer."""
    mt = [0] * _N
    _init_genrand(mt, 19650218)
    i, j = 1, 0
    for _ in range(max(_N, len(key))):
        mt[i] = (
            (mt[i] ^ ((mt[i - 1] ^ (mt[i - 1] >> 30)) * 1664525)) + key[j] + j
        ) & _MASK32
        i += 1
        j += 1
        if i >= _N:
            mt[0] = mt[_N - 1]
            i = 1
        if j >= len(key):
            j = 0
    for _ in range(_N - 1):
        mt[i] = (
            (mt[i] ^ ((mt[i - 1] ^ (mt[i - 1] >> 30)) * 1566083941)) - i
        ) & _MASK32
        i += 1
        if i >= _N:
            mt[0] = mt[_N - 1]
            i = 1
    mt[0] = 0x80000000
    return mt


def mt_state_from_seed(seed: int) -> np.ndarray:
    """Return the state vector ``random.Random(seed)`` starts from.

    Matches CPython's ``random_seed`` for integer seeds: the absolute
    value is split into 32-bit words (least-significant first; ``0``
    becomes the single-word key ``[0]``) and fed to ``init_by_array``.
    """
    value = abs(int(seed))
    key: List[int] = []
    while value:
        key.append(value & _MASK32)
        value >>= 32
    if not key:
        key = [0]
    state = np.empty(STATE_SIZE, dtype=np.int64)
    state[:_N] = _init_by_array(key)
    state[_N] = _N  # position: the first draw triggers a twist
    return state


# --------------------------------------------------------------------------- #
# getstate()/setstate() interop
# --------------------------------------------------------------------------- #
def state_from_internal(internal: Sequence[int]) -> np.ndarray:
    """Convert ``random.Random.getstate()[1]`` (625 ints) to a state vector."""
    if len(internal) != STATE_SIZE:
        raise ValueError(
            f"expected {STATE_SIZE} state words, got {len(internal)}"
        )
    return np.array(internal, dtype=np.int64)


def state_to_internal(state: np.ndarray) -> Tuple[int, ...]:
    """Convert a state vector back to the ``getstate()`` internal tuple."""
    if len(state) != STATE_SIZE:
        raise ValueError(f"expected {STATE_SIZE} state words, got {len(state)}")
    return tuple(int(word) for word in state)


# --------------------------------------------------------------------------- #
# Draw primitives (kernel-side: compiled under numba, interpreted otherwise)
# --------------------------------------------------------------------------- #
@maybe_njit
def mt_genrand(state: np.ndarray) -> int:
    """``genrand_uint32``: one tempered 32-bit word, twisting on exhaustion."""
    position = state[_N]
    if position >= _N:
        for kk in range(_N - _M):
            y = (state[kk] & _UPPER_MASK) | (state[kk + 1] & _LOWER_MASK)
            state[kk] = state[kk + _M] ^ (y >> 1) ^ ((y & 1) * _MATRIX_A)
        for kk in range(_N - _M, _N - 1):
            y = (state[kk] & _UPPER_MASK) | (state[kk + 1] & _LOWER_MASK)
            state[kk] = state[kk + _M - _N] ^ (y >> 1) ^ ((y & 1) * _MATRIX_A)
        y = (state[_N - 1] & _UPPER_MASK) | (state[0] & _LOWER_MASK)
        state[_N - 1] = state[_M - 1] ^ (y >> 1) ^ ((y & 1) * _MATRIX_A)
        position = 0
    y = state[position]
    state[_N] = position + 1
    y ^= y >> 11
    y ^= (y << 7) & 0x9D2C5680
    y ^= (y << 15) & 0xEFC60000
    y ^= y >> 18
    return y & _MASK32


@maybe_njit
def mt_random(state: np.ndarray) -> float:
    """``genrand_res53``: the double ``random.Random.random()`` returns."""
    a = mt_genrand(state) >> 5
    b = mt_genrand(state) >> 6
    return (a * 67108864.0 + b) * (1.0 / 9007199254740992.0)


@maybe_njit
def mt_getrandbits32(state: np.ndarray, k: int) -> int:
    """``getrandbits(k)`` for ``1 <= k <= 32`` (one word, top bits kept)."""
    return mt_genrand(state) >> (32 - k)


@maybe_njit
def _bit_length(n: int) -> int:
    length = 0
    while n > 0:
        n >>= 1
        length += 1
    return length


@maybe_njit
def mt_randbelow(state: np.ndarray, n: int) -> int:
    """``_randbelow_with_getrandbits(n)`` for ``1 <= n < 2**32``.

    Rejection-samples ``getrandbits(n.bit_length())`` until the value is
    below ``n`` — including the ``n == 1`` case, which *does* consume a
    geometric number of one-bit draws (a CPython quirk the kernels must
    reproduce to stay stream-identical).
    """
    k = _bit_length(n)
    r = mt_getrandbits32(state, k)
    while r >= n:
        r = mt_getrandbits32(state, k)
    return r


# --------------------------------------------------------------------------- #
# Python-level conveniences (parity tests; not needed inside kernels)
# --------------------------------------------------------------------------- #
def getrandbits(state: np.ndarray, k: int) -> int:
    """``getrandbits(k)`` for any ``k >= 1`` (little-endian word composition)."""
    if k <= 0:
        raise ValueError("number of bits must be greater than zero")
    if k <= 32:
        return int(mt_getrandbits32(state, k))
    result = 0
    shift = 0
    remaining = k
    while remaining > 0:
        word = int(mt_genrand(state))
        if remaining < 32:
            word >>= 32 - remaining
        result |= word << shift
        shift += 32
        remaining -= 32
    return result


def randrange(state: np.ndarray, start: int, stop: int) -> int:
    """``random.Random.randrange(start, stop)`` (unit step)."""
    width = stop - start
    if width <= 0:
        raise ValueError(f"empty range in randrange({start}, {stop})")
    return start + int(mt_randbelow(state, width))
