"""Numba availability shim for the kernel tier.

Every kernel in this package is written as a plain Python function over
NumPy arrays and decorated with :func:`maybe_njit`.  With numba installed
the decorator compiles the function (``nopython`` mode, on-disk cache);
without numba it returns the function unchanged, so the *same code* runs
interpreted — bit-for-bit identical results, just slower.  That is what
makes the kernel tier testable on numba-less installs: the parity suite
exercises the very functions the JIT would compile.

Importing this module is what actually imports numba, so it must only be
imported lazily (from :mod:`repro.kernels.dispatch` on first use), never
at package-import time — ``repro --help`` must stay fast and must work on
installs without numba.
"""

from __future__ import annotations

__all__ = ["NUMBA_AVAILABLE", "NUMBA_VERSION", "maybe_njit"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba

    NUMBA_AVAILABLE = True
    NUMBA_VERSION: "str | None" = getattr(_numba, "__version__", "unknown")

    def maybe_njit(fn):
        """Compile ``fn`` with ``numba.njit`` (cached nopython mode)."""
        return _numba.njit(cache=True)(fn)

except ImportError:
    NUMBA_AVAILABLE = False
    NUMBA_VERSION = None

    def maybe_njit(fn):
        """No numba: return ``fn`` unchanged (interpreted kernel mode)."""
        return fn
