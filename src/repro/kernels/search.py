"""Stochastic search kernels over CSR arrays, in reference draw order.

Each kernel replays one of the Python search implementations —
:class:`~repro.search.normalized_flooding.NormalizedFloodingSearch` (NF),
:class:`~repro.search.probabilistic_flooding.ProbabilisticFloodingSearch`
(PF, including the forward-probability coin), and
:class:`~repro.search.random_walk.RandomWalkSearch` (RW) — over a frozen
graph's ``indptr``/``indices`` arrays while consuming **exactly** the
Mersenne-Twister draw sequence the reference consumes (via
:mod:`repro.kernels.mt19937`, including CPython's ``random.sample``
pool-swap/rejection-set split and ``_randbelow`` rejection loops).  A
kernel query therefore returns the same hits/messages curves, the same
visited set, the same ``found_at``, *and leaves the RNG stream at the same
position* as the Python loop it replaces — the backend contract of
``tests/test_backend_equivalence.py``, extended to this tier.

Two layers live here:

* the ``*_query_kernel`` / ``*_curve_batch_kernel`` functions — plain
  array-in/array-out code decorated with
  :func:`repro.kernels._compat.maybe_njit` (compiled under numba,
  interpreted otherwise, identical values either way).  The batch kernels
  are the throughput mode: they run a whole query batch back-to-back
  inside one compiled call, consuming the single shared stream in query
  order — draw-identical to looping the single-query kernel, without the
  per-query Python and state-marshalling overhead;
* the Python-facing wrappers (:func:`nf_query`, :func:`pf_query`,
  :func:`rw_query`, :func:`nf_curve_batch`, :func:`pf_curve_batch`,
  :func:`rw_curve_batch`) — they translate node ids to rows, export the
  :class:`~repro.core.rng.RandomSource` stream into a kernel state vector,
  run the kernel, and import the advanced stream position back.

Never call the kernels directly from experiment code; go through
:mod:`repro.kernels.dispatch` (or simply the search classes, which
dispatch here when the ``jit`` tier is active).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.csr import CSRGraph
from repro.core.rng import RandomSource
from repro.core.types import NodeId
from repro.kernels._compat import maybe_njit
from repro.kernels.mt19937 import mt_randbelow, mt_random

__all__ = [
    "nf_query",
    "pf_query",
    "rw_query",
    "nf_curve_batch",
    "pf_curve_batch",
    "rw_curve_batch",
    "nf_query_kernel",
    "pf_query_kernel",
    "rw_query_kernel",
    "nf_curve_batch_kernel",
    "pf_curve_batch_kernel",
    "rw_curve_batch_kernel",
]


# --------------------------------------------------------------------------- #
# random.sample replica
# --------------------------------------------------------------------------- #
@maybe_njit
def _mt_sample(state, pool, n, k, out):  # pragma: no cover - via kernels
    """``random.Random.sample(pool[:n], k)`` for ``k < n``; fills ``out[:k]``.

    Replicates CPython's size heuristic exactly: small populations use the
    pool-swap algorithm (``pool`` is mutated — callers pass a scratch
    copy), large ones rejection-sample indices against a seen-set.  Both
    paths draw through ``_randbelow``, so the stream advances identically
    to the reference.
    """
    setsize = 21
    if k > 5:
        setsize += int(4.0 ** np.ceil(np.log(k * 3.0) / np.log(4.0)))
    if n <= setsize:
        for i in range(k):
            j = mt_randbelow(state, n - i)
            out[i] = pool[j]
            pool[j] = pool[n - i - 1]
    else:
        selected = np.zeros(n, dtype=np.bool_)
        for i in range(k):
            j = mt_randbelow(state, n)
            while selected[j]:
                j = mt_randbelow(state, n)
            selected[j] = True
            out[i] = pool[j]


# --------------------------------------------------------------------------- #
# Normalized flooding (NF)
# --------------------------------------------------------------------------- #
@maybe_njit
def nf_query_kernel(
    indptr, indices, state, source, ttl, branching, target, base_hits, max_degree
):
    """One NF query; returns ``(hits, messages, visited_mask, found_at)``.

    ``target`` is a row index or ``-1`` for none; ``found_at`` is ``-1``
    when the target was never reached; ``max_degree`` (the graph's, a
    batch invariant the caller computes once) sizes the candidate
    scratch.  Draw order matches ``NormalizedFloodingSearch.run``
    statement for statement.
    """
    n = indptr.shape[0] - 1
    hits = np.empty(ttl + 1, dtype=np.int64)
    messages = np.empty(ttl + 1, dtype=np.int64)
    visited = np.zeros(n, dtype=np.bool_)
    forwarded = np.zeros(n, dtype=np.bool_)
    visited[source] = True
    forwarded[source] = True
    found_at = 0 if target == source else -1
    cumulative_hits = base_hits
    cumulative_messages = 0
    hits[0] = cumulative_hits
    messages[0] = 0

    scratch = np.empty(max_degree, dtype=np.int64)
    pick = branching if branching < max_degree else max_degree
    chosen = np.empty(pick, dtype=np.int64)
    frontier_nodes = np.empty(n, dtype=np.int64)
    frontier_prev = np.empty(n, dtype=np.int64)
    next_nodes = np.empty(n, dtype=np.int64)
    next_prev = np.empty(n, dtype=np.int64)
    frontier_len = 0

    # Hop 1: the source forwards to `branching` random neighbors (or all
    # of them when it has fewer); no previous hop to exclude.
    if ttl >= 1:
        start = indptr[source]
        end = indptr[source + 1]
        count = end - start
        if count <= branching:
            recipients = count
            for i in range(count):
                scratch[i] = indices[start + i]
        else:
            recipients = branching
            for i in range(count):
                scratch[i] = indices[start + i]
            _mt_sample(state, scratch, count, branching, chosen)
            for i in range(branching):
                scratch[i] = chosen[i]
        for i in range(recipients):
            neighbor = scratch[i]
            cumulative_messages += 1
            if not visited[neighbor]:
                visited[neighbor] = True
                cumulative_hits += 1
                if target >= 0 and neighbor == target and found_at == -1:
                    found_at = 1
                frontier_nodes[frontier_len] = neighbor
                frontier_prev[frontier_len] = source
                frontier_len += 1
        hits[1] = cumulative_hits
        messages[1] = cumulative_messages

    hop = 2
    while hop <= ttl:
        next_len = 0
        for entry in range(frontier_len):
            node = frontier_nodes[entry]
            previous = frontier_prev[entry]
            if forwarded[node]:
                continue
            forwarded[node] = True
            start = indptr[node]
            end = indptr[node + 1]
            count = 0
            for idx in range(start, end):
                neighbor = indices[idx]
                if neighbor != previous:
                    scratch[count] = neighbor
                    count += 1
            if count <= branching:
                recipients = count
            else:
                recipients = branching
                _mt_sample(state, scratch, count, branching, chosen)
                for i in range(branching):
                    scratch[i] = chosen[i]
            for i in range(recipients):
                neighbor = scratch[i]
                cumulative_messages += 1
                if visited[neighbor]:
                    continue
                visited[neighbor] = True
                cumulative_hits += 1
                if target >= 0 and neighbor == target and found_at == -1:
                    found_at = hop
                next_nodes[next_len] = neighbor
                next_prev[next_len] = node
                next_len += 1
        swap_nodes = frontier_nodes
        frontier_nodes = next_nodes
        next_nodes = swap_nodes
        swap_prev = frontier_prev
        frontier_prev = next_prev
        next_prev = swap_prev
        frontier_len = next_len
        hits[hop] = cumulative_hits
        messages[hop] = cumulative_messages
        if frontier_len == 0:
            for t in range(hop + 1, ttl + 1):
                hits[t] = cumulative_hits
                messages[t] = cumulative_messages
            break
        hop += 1
    return hits, messages, visited, found_at


# --------------------------------------------------------------------------- #
# Probabilistic flooding (PF)
# --------------------------------------------------------------------------- #
@maybe_njit
def pf_query_kernel(indptr, indices, state, source, ttl, probability, target, base_hits):
    """One PF query; returns ``(hits, messages, visited_mask, found_at)``.

    One forwarding coin per (in-order) neighbor, drawn only when
    ``probability < 1.0`` — exactly the reference's per-neighbor loop.
    """
    n = indptr.shape[0] - 1
    hits = np.empty(ttl + 1, dtype=np.int64)
    messages = np.empty(ttl + 1, dtype=np.int64)
    visited = np.zeros(n, dtype=np.bool_)
    visited[source] = True
    found_at = 0 if target == source else -1
    cumulative_hits = base_hits
    cumulative_messages = 0
    hits[0] = cumulative_hits
    messages[0] = 0

    frontier_nodes = np.empty(n, dtype=np.int64)
    frontier_prev = np.empty(n, dtype=np.int64)
    next_nodes = np.empty(n, dtype=np.int64)
    next_prev = np.empty(n, dtype=np.int64)
    frontier_nodes[0] = source
    frontier_prev[0] = -1
    frontier_len = 1

    for hop in range(1, ttl + 1):
        next_len = 0
        for entry in range(frontier_len):
            node = frontier_nodes[entry]
            previous = frontier_prev[entry]
            for idx in range(indptr[node], indptr[node + 1]):
                neighbor = indices[idx]
                if neighbor == previous:
                    continue
                if probability < 1.0 and mt_random(state) >= probability:
                    continue
                cumulative_messages += 1
                if visited[neighbor]:
                    continue
                visited[neighbor] = True
                cumulative_hits += 1
                if target >= 0 and neighbor == target and found_at == -1:
                    found_at = hop
                next_nodes[next_len] = neighbor
                next_prev[next_len] = node
                next_len += 1
        swap_nodes = frontier_nodes
        frontier_nodes = next_nodes
        next_nodes = swap_nodes
        swap_prev = frontier_prev
        frontier_prev = next_prev
        next_prev = swap_prev
        frontier_len = next_len
        hits[hop] = cumulative_hits
        messages[hop] = cumulative_messages
        if frontier_len == 0:
            for t in range(hop + 1, ttl + 1):
                hits[t] = cumulative_hits
                messages[t] = cumulative_messages
            break
    return hits, messages, visited, found_at


# --------------------------------------------------------------------------- #
# Random walk (RW)
# --------------------------------------------------------------------------- #
@maybe_njit
def rw_query_kernel(
    indptr, indices, state, source, ttl, walkers, allow_backtracking, target, base_hits
):
    """One RW query (``walkers`` parallel walkers, walker-index draw order).

    Returns ``(hits, messages, visited_mask, found_at)``.  Each step draws
    one ``_randbelow`` over the previous-hop-excluded candidate count and
    maps the index onto the shared neighbor slice — the reference's
    allocation-free step, draw for draw.
    """
    n = indptr.shape[0] - 1
    hits = np.empty(ttl + 1, dtype=np.int64)
    messages = np.empty(ttl + 1, dtype=np.int64)
    visited = np.zeros(n, dtype=np.bool_)
    visited[source] = True
    found_at = 0 if target == source else -1
    cumulative_hits = base_hits
    cumulative_messages = 0
    hits[0] = cumulative_hits
    messages[0] = 0

    positions = np.full(walkers, source, dtype=np.int64)
    previous = np.full(walkers, -1, dtype=np.int64)
    alive = np.ones(walkers, dtype=np.bool_)
    alive_count = walkers

    for hop in range(1, ttl + 1):
        for walker in range(walkers):
            if not alive[walker]:
                continue
            current = positions[walker]
            start = indptr[current]
            end = indptr[current + 1]
            exclude_position = -1
            if not allow_backtracking and previous[walker] >= 0:
                for idx in range(start, end):
                    if indices[idx] == previous[walker]:
                        exclude_position = idx - start
                        break
            candidate_count = end - start
            if exclude_position >= 0:
                candidate_count -= 1
            if candidate_count == 0:
                alive[walker] = False
                alive_count -= 1
                continue
            choice = mt_randbelow(state, candidate_count)
            if exclude_position >= 0 and choice >= exclude_position:
                choice += 1
            next_node = indices[start + choice]
            cumulative_messages += 1
            previous[walker] = current
            positions[walker] = next_node
            if not visited[next_node]:
                visited[next_node] = True
                cumulative_hits += 1
                if target >= 0 and next_node == target and found_at == -1:
                    found_at = hop
        hits[hop] = cumulative_hits
        messages[hop] = cumulative_messages
        if alive_count == 0:
            for t in range(hop + 1, ttl + 1):
                hits[t] = cumulative_hits
                messages[t] = cumulative_messages
            break
    return hits, messages, visited, found_at


# --------------------------------------------------------------------------- #
# Throughput mode: whole query batches inside one kernel call
# --------------------------------------------------------------------------- #
@maybe_njit
def nf_curve_batch_kernel(
    indptr, indices, state, sources, ttl, branching, base_hits, max_degree
):
    """NF curves for a query batch, one shared stream in query order."""
    total = sources.shape[0]
    hits = np.empty((total, ttl + 1), dtype=np.int64)
    messages = np.empty((total, ttl + 1), dtype=np.int64)
    for query in range(total):
        row_hits, row_messages, _visited, _found = nf_query_kernel(
            indptr, indices, state, sources[query], ttl, branching, -1,
            base_hits, max_degree,
        )
        hits[query, :] = row_hits
        messages[query, :] = row_messages
    return hits, messages


@maybe_njit
def pf_curve_batch_kernel(indptr, indices, state, sources, ttl, probability, base_hits):
    """PF curves for a query batch, one shared stream in query order."""
    total = sources.shape[0]
    hits = np.empty((total, ttl + 1), dtype=np.int64)
    messages = np.empty((total, ttl + 1), dtype=np.int64)
    for query in range(total):
        row_hits, row_messages, _visited, _found = pf_query_kernel(
            indptr, indices, state, sources[query], ttl, probability, -1, base_hits
        )
        hits[query, :] = row_hits
        messages[query, :] = row_messages
    return hits, messages


@maybe_njit
def rw_curve_batch_kernel(
    indptr, indices, state, sources, ttls, walkers, allow_backtracking, base_hits
):
    """RW curves for a query batch with per-query TTL budgets.

    Row ``i`` is valid up to column ``ttls[i]`` (the remainder stays 0 —
    callers index within each query's own budget, mirroring the
    reference's per-query curve lengths).
    """
    total = sources.shape[0]
    max_ttl = 0
    for query in range(total):
        if ttls[query] > max_ttl:
            max_ttl = ttls[query]
    hits = np.zeros((total, max_ttl + 1), dtype=np.int64)
    messages = np.zeros((total, max_ttl + 1), dtype=np.int64)
    for query in range(total):
        row_hits, row_messages, _visited, _found = rw_query_kernel(
            indptr,
            indices,
            state,
            sources[query],
            ttls[query],
            walkers,
            allow_backtracking,
            -1,
            base_hits,
        )
        for t in range(ttls[query] + 1):
            hits[query, t] = row_hits[t]
            messages[query, t] = row_messages[t]
    return hits, messages


# --------------------------------------------------------------------------- #
# Python-facing wrappers: id translation + RNG stream splice
# --------------------------------------------------------------------------- #
QueryPayload = Tuple[List[int], List[int], Set[NodeId], Optional[int]]


def _target_row(csr: CSRGraph, target: Optional[NodeId]) -> int:
    if target is None or not csr.has_node(target):
        return -1
    return csr._row_of(target)


def _visited_ids(csr: CSRGraph, mask: np.ndarray) -> Set[NodeId]:
    rows = np.nonzero(mask)[0]
    if csr._ids is None:
        return set(rows.tolist())
    return set(csr._ids[rows].tolist())


def _payload(csr, rng, state, hits, messages, visited, found_at) -> QueryPayload:
    rng.import_mt_state(state)
    return (
        [int(value) for value in hits],
        [int(value) for value in messages],
        _visited_ids(csr, visited),
        None if found_at < 0 else int(found_at),
    )


def nf_query(
    csr: CSRGraph,
    source: NodeId,
    ttl: int,
    rng: RandomSource,
    branching: int,
    count_source_as_hit: bool,
    target: Optional[NodeId],
) -> QueryPayload:
    """Run one NF query on the kernel tier; splice the stream back into ``rng``."""
    state = rng.export_mt_state()
    hits, messages, visited, found_at = nf_query_kernel(
        csr._indptr,
        csr._indices,
        state,
        csr._row_of(source),
        ttl,
        branching,
        _target_row(csr, target),
        1 if count_source_as_hit else 0,
        csr.max_degree(),
    )
    return _payload(csr, rng, state, hits, messages, visited, found_at)


def pf_query(
    csr: CSRGraph,
    source: NodeId,
    ttl: int,
    rng: RandomSource,
    forward_probability: float,
    count_source_as_hit: bool,
    target: Optional[NodeId],
) -> QueryPayload:
    """Run one PF query on the kernel tier; splice the stream back into ``rng``."""
    state = rng.export_mt_state()
    hits, messages, visited, found_at = pf_query_kernel(
        csr._indptr,
        csr._indices,
        state,
        csr._row_of(source),
        ttl,
        forward_probability,
        _target_row(csr, target),
        1 if count_source_as_hit else 0,
    )
    return _payload(csr, rng, state, hits, messages, visited, found_at)


def rw_query(
    csr: CSRGraph,
    source: NodeId,
    ttl: int,
    rng: RandomSource,
    walkers: int,
    allow_backtracking: bool,
    count_source_as_hit: bool,
    target: Optional[NodeId],
) -> QueryPayload:
    """Run one RW query on the kernel tier; splice the stream back into ``rng``."""
    state = rng.export_mt_state()
    hits, messages, visited, found_at = rw_query_kernel(
        csr._indptr,
        csr._indices,
        state,
        csr._row_of(source),
        ttl,
        walkers,
        allow_backtracking,
        _target_row(csr, target),
        1 if count_source_as_hit else 0,
    )
    return _payload(csr, rng, state, hits, messages, visited, found_at)


def _source_rows(csr: CSRGraph, sources: Sequence[NodeId]) -> np.ndarray:
    return np.array([csr._row_of(node) for node in sources], dtype=np.int64)


def nf_curve_batch(
    csr: CSRGraph,
    sources: Sequence[NodeId],
    ttl: int,
    rng: RandomSource,
    branching: int,
    count_source_as_hit: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    """Whole-batch NF curves (throughput mode); one stream splice total."""
    state = rng.export_mt_state()
    hits, messages = nf_curve_batch_kernel(
        csr._indptr,
        csr._indices,
        state,
        _source_rows(csr, sources),
        ttl,
        branching,
        1 if count_source_as_hit else 0,
        csr.max_degree(),
    )
    rng.import_mt_state(state)
    return hits, messages


def pf_curve_batch(
    csr: CSRGraph,
    sources: Sequence[NodeId],
    ttl: int,
    rng: RandomSource,
    forward_probability: float,
    count_source_as_hit: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    """Whole-batch PF curves (throughput mode); one stream splice total."""
    state = rng.export_mt_state()
    hits, messages = pf_curve_batch_kernel(
        csr._indptr,
        csr._indices,
        state,
        _source_rows(csr, sources),
        ttl,
        forward_probability,
        1 if count_source_as_hit else 0,
    )
    rng.import_mt_state(state)
    return hits, messages


def rw_curve_batch(
    csr: CSRGraph,
    sources: Sequence[NodeId],
    ttls: Sequence[int],
    rng: RandomSource,
    walkers: int,
    allow_backtracking: bool,
    count_source_as_hit: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    """Whole-batch RW curves with per-query TTL budgets (throughput mode)."""
    state = rng.export_mt_state()
    hits, messages = rw_curve_batch_kernel(
        csr._indptr,
        csr._indices,
        state,
        _source_rows(csr, sources),
        np.array([int(value) for value in ttls], dtype=np.int64),
        walkers,
        allow_backtracking,
        1 if count_source_as_hit else 0,
    )
    rng.import_mt_state(state)
    return hits, messages
