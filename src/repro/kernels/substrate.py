"""Substrate-construction kernels: edge arrays straight into the CSR backend.

PR 5 closed the generator families, but a jit DAPA realization still paid
for its *substrate* in Python: :class:`~repro.substrate.grn.GeometricRandomNetwork`
scattered points one ``rng.random()`` at a time, bucketed them into a dict
of cells, and pushed every within-radius pair through ``Graph.add_edge`` —
the dominant Python-side cost of the whole realization once the overlay
growth ran compiled.  This module ports the substrate builders to the same
kernel tier as :mod:`repro.kernels.generators`:

* :func:`grn_build_arrays` — fills the position matrix with the exact
  row-major ``rng.random()`` sequence of the reference (spliced through
  :mod:`repro.kernels.mt19937`), then runs a compiled cell-grid sweep that
  enumerates candidate pairs in the reference's dict order — cells in
  first-occurrence order, offsets in ``itertools.product((-1, 0, 1), ...)``
  order, lexicographic unordered-pair skip, members in node order — and
  emits the within-radius pairs as edge arrays for
  :meth:`repro.core.graph.Graph.from_edge_array`.  The sweep visits each
  unordered cell pair exactly once (the reference's torus wrapping used to
  enumerate duplicates when ``cells_per_side <= 2``).
* :func:`er_build` — the Batagelj–Brandes geometric-skipping loop of
  :class:`~repro.substrate.random_graph.ErdosRenyiNetwork`, one
  ``rng.random()`` per emitted edge, identical skip arithmetic.

The position sweep consumes no draws (all randomness is in the fill), so a
too-small edge-capacity estimate is handled by re-running the deterministic
sweep with the exact count; the ER kernel re-runs from a saved stream
position instead.  Builders dispatch here when
:func:`repro.kernels.dispatch.kernel_generation_ready` says the ``jit``
tier is active; the mesh substrate needs no kernel (it is deterministic and
vectorizes directly in :mod:`repro.substrate.mesh`).
"""

from __future__ import annotations

import math
from typing import Any, Tuple

import numpy as np

from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.kernels._compat import maybe_njit
from repro.kernels.mt19937 import mt_random

__all__ = ["grn_build_arrays", "er_build"]


# --------------------------------------------------------------------------- #
# GRN: uniform scatter + cell-grid radius sweep (paper §IV-B)
# --------------------------------------------------------------------------- #
@maybe_njit
def _fill_unit_positions(state, positions):
    """Row-major uniform fill — the reference's per-node coordinate tuples."""
    for node in range(positions.shape[0]):
        for axis in range(positions.shape[1]):
            positions[node, axis] = mt_random(state)


@maybe_njit
def _grn_within(positions, u, v, torus, radius_squared):
    """``GeometricRandomNetwork._distance_squared`` compare, float-for-float."""
    total = 0.0
    for axis in range(positions.shape[1]):
        delta = positions[u, axis] - positions[v, axis]
        if delta < 0.0:
            delta = -delta
        if torus:
            wrapped = 1.0 - delta
            if wrapped < delta:
                delta = wrapped
        total += delta * delta
    return total <= radius_squared


@maybe_njit
def _grn_sweep_kernel(
    positions, unique_lin, cell_start, cell_count, order, occ_order,
    cells_per_side, torus, radius_squared, edge_u, edge_v,
):
    """Enumerate within-radius pairs in reference order; returns edge count.

    ``unique_lin`` holds the occupied cells' linear ids (most-significant
    coordinate first, so integer comparison equals the reference's tuple
    comparison) in sorted order; ``order``/``cell_start``/``cell_count``
    group the node indices by cell, members in node order; ``occ_order``
    iterates the occupied cells in first-occurrence order — the iteration
    order of the reference's ``cell_of`` dict.  Draws nothing: when the
    emitted count exceeds the arrays' capacity the surplus edges are only
    counted, and the caller re-runs with exact capacity.
    """
    capacity = edge_u.shape[0]
    num_cells = unique_lin.shape[0]
    dims = positions.shape[1]
    key = np.empty(dims, dtype=np.int64)
    offset = np.empty(dims, dtype=np.int64)
    shifted = np.empty(dims, dtype=np.int64)
    seen = np.empty(3 ** dims, dtype=np.int64)
    edge_count = 0
    for occupied_index in range(num_cells):
        ci = occ_order[occupied_index]
        lin = unique_lin[ci]
        remainder = lin
        for axis in range(dims - 1, -1, -1):
            key[axis] = remainder % cells_per_side
            remainder //= cells_per_side
        seen_count = 0
        for combo in range(3 ** dims):
            # Decode ``combo`` into per-axis offsets in (-1, 0, 1), most
            # significant axis first — itertools.product order.
            digits = combo
            for axis in range(dims - 1, -1, -1):
                offset[axis] = digits % 3 - 1
                digits //= 3
            out_of_box = False
            for axis in range(dims):
                value = key[axis] + offset[axis]
                if torus:
                    value %= cells_per_side
                elif value < 0 or value >= cells_per_side:
                    out_of_box = True
                    break
                shifted[axis] = value
            if out_of_box:
                continue
            other_lin = 0
            for axis in range(dims):
                other_lin = other_lin * cells_per_side + shifted[axis]
            # Torus wrapping with cells_per_side <= 2 maps the +1 and -1
            # offsets onto the same neighbor cell: visit each unordered
            # cell pair once.
            duplicate = False
            for i in range(seen_count):
                if seen[i] == other_lin:
                    duplicate = True
                    break
            if duplicate:
                continue
            seen[seen_count] = other_lin
            seen_count += 1
            if other_lin < lin:
                continue
            low = 0
            high = num_cells
            while low < high:
                mid = (low + high) // 2
                if unique_lin[mid] < other_lin:
                    low = mid + 1
                else:
                    high = mid
            if low >= num_cells or unique_lin[low] != other_lin:
                continue
            cj = low
            start_i = cell_start[ci]
            count_i = cell_count[ci]
            if cj == ci:
                for a in range(count_i):
                    u = order[start_i + a]
                    for b in range(a + 1, count_i):
                        v = order[start_i + b]
                        if _grn_within(positions, u, v, torus, radius_squared):
                            if edge_count < capacity:
                                edge_u[edge_count] = u
                                edge_v[edge_count] = v
                            edge_count += 1
            else:
                start_j = cell_start[cj]
                count_j = cell_count[cj]
                for a in range(count_i):
                    u = order[start_i + a]
                    for b in range(count_j):
                        v = order[start_j + b]
                        if _grn_within(positions, u, v, torus, radius_squared):
                            if edge_count < capacity:
                                edge_u[edge_count] = u
                                edge_v[edge_count] = v
                            edge_count += 1
    return edge_count


def grn_build_arrays(config: Any, rng: RandomSource) -> Tuple[Graph, np.ndarray]:
    """Kernel-tier GRN build; returns ``(graph, positions)`` — same draws,
    same edges in the same insertion order as the reference dict sweep."""
    n = config.number_of_nodes
    radius = config.effective_radius()
    dims = config.dimensions
    torus = bool(config.torus)

    positions = np.empty((n, dims), dtype=np.float64)
    state = rng.export_mt_state()
    _fill_unit_positions(state, positions)
    rng.import_mt_state(state)

    cells_per_side = max(1, int(math.floor(1.0 / radius)))
    # min(cps - 1, int(coordinate * cps)): same truncation as the reference.
    cell = np.minimum(
        cells_per_side - 1, (positions * cells_per_side).astype(np.int64)
    )
    lin = np.zeros(n, dtype=np.int64)
    for axis in range(dims):
        lin = lin * cells_per_side + cell[:, axis]
    unique_lin, first_index, cell_count = np.unique(
        lin, return_index=True, return_counts=True
    )
    occ_order = np.argsort(first_index, kind="stable").astype(np.int64)
    order = np.argsort(lin, kind="stable").astype(np.int64)
    cell_count = cell_count.astype(np.int64)
    cell_start = np.zeros(len(unique_lin), dtype=np.int64)
    if len(unique_lin) > 1:
        np.cumsum(cell_count[:-1], out=cell_start[1:])

    if dims == 1:
        volume = 2.0 * radius
    elif dims == 2:
        volume = math.pi * radius * radius
    else:
        volume = (4.0 / 3.0) * math.pi * radius ** 3
    expected_edges = 0.5 * n * n * min(1.0, volume)
    max_pairs = n * (n - 1) // 2
    capacity = int(min(max_pairs, int(1.5 * expected_edges) + 1024))

    radius_squared = radius * radius
    edge_u = np.empty(max(1, capacity), dtype=np.int64)
    edge_v = np.empty(max(1, capacity), dtype=np.int64)
    edge_count = _grn_sweep_kernel(
        positions, unique_lin, cell_start, cell_count, order, occ_order,
        cells_per_side, torus, radius_squared, edge_u, edge_v,
    )
    if edge_count > capacity:
        edge_u = np.empty(edge_count, dtype=np.int64)
        edge_v = np.empty(edge_count, dtype=np.int64)
        _grn_sweep_kernel(
            positions, unique_lin, cell_start, cell_count, order, occ_order,
            cells_per_side, torus, radius_squared, edge_u, edge_v,
        )
    if edge_count == 0:
        return Graph(n), positions
    graph = Graph.from_edge_array(n, edge_u[:edge_count], edge_v[:edge_count])
    return graph, positions


# --------------------------------------------------------------------------- #
# Erdős–Rényi: geometric skipping (Batagelj & Brandes)
# --------------------------------------------------------------------------- #
@maybe_njit
def _er_fill_kernel(state, n, p, log_one_minus_p, edge_u, edge_v):
    """The reference's skip loop; returns the edge count (emission capped)."""
    capacity = edge_u.shape[0]
    edge_count = 0
    u = 1
    v = -1
    while u < n:
        if p >= 1.0:
            v += 1
        else:
            r = mt_random(state)
            v += 1 + int(np.floor(np.log(1.0 - r) / log_one_minus_p))
        while v >= u and u < n:
            v -= u
            u += 1
        if u < n:
            if edge_count < capacity:
                edge_u[edge_count] = u
                edge_v[edge_count] = v
            edge_count += 1
    return edge_count


def er_build(number_of_nodes: int, probability: float, rng: RandomSource) -> Graph:
    """Kernel-tier G(N, p) build; same draws, same edges, same order.

    The caller guarantees ``probability > 0`` (the reference returns the
    empty graph without drawing otherwise).
    """
    n = int(number_of_nodes)
    p = float(probability)
    log_one_minus_p = math.log(1.0 - p) if p < 1.0 else 0.0
    expected_edges = p * n * (n - 1) / 2.0
    capacity = int(min(n * (n - 1) // 2, int(1.25 * expected_edges) + 1024))

    initial_state = rng.export_mt_state()
    state = initial_state.copy()
    edge_u = np.empty(max(1, capacity), dtype=np.int64)
    edge_v = np.empty(max(1, capacity), dtype=np.int64)
    edge_count = _er_fill_kernel(state, n, p, log_one_minus_p, edge_u, edge_v)
    if edge_count > capacity:
        state = initial_state.copy()
        edge_u = np.empty(edge_count, dtype=np.int64)
        edge_v = np.empty(edge_count, dtype=np.int64)
        _er_fill_kernel(state, n, p, log_one_minus_p, edge_u, edge_v)
    rng.import_mt_state(state)
    if edge_count == 0:
        return Graph(n)
    return Graph.from_edge_array(n, edge_u[:edge_count], edge_v[:edge_count])
