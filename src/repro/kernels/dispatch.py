"""Kernel-tier selection: capability probing and the ambient ``--kernels`` mode.

Three modes mirror the graph-backend context in :mod:`repro.core.backend`:

``python``
    The reference implementations (the search classes' own loops) — always
    available, the default consumer of every draw.
``jit``
    The compiled kernel tier of :mod:`repro.kernels.search`.  With numba
    installed the kernels run JIT-compiled; without it they run
    *interpreted* (same code, same results, no speedup) — so an explicit
    ``--kernels jit`` degrades gracefully instead of failing.  Either way
    the tier only activates after :func:`kernel_self_check` has verified,
    in-process, that the kernel stack reproduces CPython's RNG stream and
    the reference algorithms' exact results on a probe graph.
``auto`` (default)
    :func:`kernel_tier`: ``jit`` when numba imports *and* the parity
    self-check passes, ``python`` otherwise — the same
    gate-on-import-else-fall-back policy as the SciPy path in
    :mod:`repro.core.csr`.

The probes are lazy (first kernel-eligible query, not package import) and
cached for the process, so ``repro --help`` never pays for a numba import.
The ambient mode is installed with :func:`use_kernels` — the CLI's
``--kernels`` flag and the engine's per-task capture both go through it —
and consulted by the search classes via :func:`kernel_query_ready`, the
topology generators and substrate builders via
:func:`kernel_generation_ready`, and the protocol's batched query path via
:func:`kernel_simulation_ready`.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.core.ambient import AmbientStack
from repro.core.errors import ConfigurationError
from repro.core.rng import RandomSource
from repro.telemetry.collector import (
    NULL_TELEMETRY,
    active_telemetry,
    telemetry_clock,
    use_telemetry,
)

__all__ = [
    "KERNEL_MODES",
    "DEFAULT_KERNELS",
    "normalize_kernels",
    "active_kernels",
    "use_kernels",
    "numba_available",
    "kernel_self_check",
    "kernel_tier",
    "resolve_kernels",
    "kernel_query_ready",
    "kernel_generation_ready",
    "kernel_simulation_ready",
    "kernels_runtime",
    "probe_status",
]

#: Registered kernel modes, as accepted by ``--kernels`` / ``REPRO_KERNELS``.
KERNEL_MODES = ("auto", "python", "jit")

#: The mode callers get when nothing is selected.
DEFAULT_KERNELS = "auto"

_ACTIVE_STACK: AmbientStack[str] = AmbientStack()

#: Cached probe results (per process): numba importability, self-check
#: verdict, and the self-check failure reason for diagnostics.
_PROBE: Dict[str, object] = {}


def normalize_kernels(name: Optional[str]) -> str:
    """Validate a kernel-mode name (``None`` means the default, ``auto``)."""
    if name is None:
        return DEFAULT_KERNELS
    key = str(name).lower()
    if key not in KERNEL_MODES:
        raise ConfigurationError(
            f"unknown kernel mode {name!r}; available: {', '.join(KERNEL_MODES)}"
        )
    return key


def active_kernels() -> str:
    """Return the mode installed by the innermost :func:`use_kernels`.

    Thread-local like the backend stack; worker threads re-install the mode
    captured from their parent.
    """
    return _ACTIVE_STACK.top(DEFAULT_KERNELS)


@contextmanager
def use_kernels(name: Optional[str]) -> Iterator[str]:
    """Install kernel mode ``name`` for the ``with`` body.

    ``None`` leaves the ambient mode in place (mirroring
    :func:`repro.core.backend.use_backend`), so call sites can pass an
    optional override unconditionally.
    """
    if name is not None:
        _ACTIVE_STACK.push(normalize_kernels(name))
    try:
        yield active_kernels()
    finally:
        if name is not None:
            _ACTIVE_STACK.pop()


# --------------------------------------------------------------------------- #
# Capability probing
# --------------------------------------------------------------------------- #
def numba_available() -> bool:
    """True when numba imports (probed once, lazily, per process)."""
    if "numba" not in _PROBE:
        try:
            from repro.kernels._compat import NUMBA_AVAILABLE

            _PROBE["numba"] = bool(NUMBA_AVAILABLE)
        except Exception:  # pragma: no cover - broken numba install
            _PROBE["numba"] = False
    return bool(_PROBE["numba"])


def _parity_self_check() -> "tuple[bool, str]":
    """Verify the kernel stack against the reference, end to end.

    Checks (1) MT19937 stream parity with :class:`random.Random` for a few
    seeds, and (2) that each stochastic kernel reproduces its reference
    algorithm — curves, visited set, ``found_at``, and final stream
    position — on a probe graph.  Runs the *installed* kernel functions
    (compiled under numba, interpreted otherwise), so a miscompilation is
    caught here and demotes the tier to ``python``.
    """
    import random

    from repro.core.graph import Graph
    from repro.kernels import mt19937 as mt
    from repro.kernels import search as kernels

    for seed in (0, 20070611, 2**40 + 123):
        state = mt.mt_state_from_seed(seed)
        reference = random.Random(seed)
        for _ in range(25):
            if mt.mt_random(state) != reference.random():
                return False, f"mt_random diverged for seed {seed}"
        for bound in (1, 2, 7, 100, 2**20 + 7):
            if int(mt.mt_randbelow(state, bound)) != reference.randrange(bound):
                return False, f"mt_randbelow({bound}) diverged for seed {seed}"
        if mt.state_to_internal(state) != reference.getstate()[1]:
            return False, f"stream position diverged for seed {seed}"

    graph = Graph.from_edges(
        12,
        [
            (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (1, 2), (1, 6), (2, 7),
            (3, 8), (4, 9), (5, 10), (6, 7), (8, 9), (10, 11), (1, 3), (2, 4),
        ],
    )
    frozen = graph.freeze()
    probes = (
        ("nf", lambda g, rng: _reference_nf(g, rng),
         lambda rng: kernels.nf_query(frozen, 0, 5, rng, 2, False, 7)),
        ("pf", lambda g, rng: _reference_pf(g, rng),
         lambda rng: kernels.pf_query(frozen, 0, 5, rng, 0.6, False, 7)),
        ("rw", lambda g, rng: _reference_rw(g, rng),
         lambda rng: kernels.rw_query(frozen, 0, 8, rng, 2, False, False, 7)),
    )
    for name, run_reference, run_kernel in probes:
        rng_ref = RandomSource(seed=97)
        rng_kernel = RandomSource(seed=97)
        result = run_reference(graph, rng_ref)
        hits, messages, visited, found_at = run_kernel(rng_kernel)
        if (
            hits != result.hits_per_ttl
            or messages != result.messages_per_ttl
            or visited != result.visited
            or found_at != result.found_at
        ):
            return False, f"{name} kernel diverged from the reference"
        if rng_ref.random() != rng_kernel.random():
            return False, f"{name} kernel left the stream at a different position"
    passed, reason = _generation_parity_check()
    if not passed:
        return passed, reason
    passed, reason = _substrate_parity_check()
    if not passed:
        return passed, reason
    return _simulation_parity_check()


def _graphs_identical(reference, subject) -> bool:
    """Same nodes in order, same edges in the same neighbor order."""
    import numpy as np

    if reference.nodes() != subject.nodes():
        return False
    frozen_reference, frozen_subject = reference.freeze(), subject.freeze()
    return bool(
        np.array_equal(frozen_reference._indptr, frozen_subject._indptr)
        and np.array_equal(frozen_reference._indices, frozen_subject._indices)
    )


def _generation_parity_check() -> "tuple[bool, str]":
    """The generation probe: every generator kernel family (PA growth in
    both the roulette and paper-literal attempt strategies, nonlinear PA,
    CM stub matching, HAPA hop-and-attempt, DAPA discovery) must reproduce
    its reference builder — edges, neighbor order, metadata counters, and
    final stream position — on small topologies.

    Runs the *installed* kernel functions, like the search probes; a
    miscompiled or drifted generator kernel demotes ``auto`` to ``python``
    for the whole process.  The reference side goes through the
    dispatch-free ``_build_*``/``_grow_overlay``/``_stub_matching`` bodies
    (calling the dispatching ``_build`` here would recurse into this very
    check).
    """
    from repro.core.graph import Graph
    from repro.generators.pa import PreferentialAttachmentGenerator
    from repro.kernels import generators as generator_kernels

    pa = PreferentialAttachmentGenerator(48, stubs=2, hard_cutoff=5)
    rng_ref = RandomSource(seed=53)
    rng_kernel = RandomSource(seed=53)
    graph_ref, meta_ref = pa._build_roulette(rng_ref)
    graph_kernel, meta_kernel = generator_kernels.pa_roulette_build(
        pa.config, rng_kernel
    )
    if not _graphs_identical(graph_ref, graph_kernel) or meta_ref != meta_kernel:
        return False, "pa generation kernel diverged from the reference"
    if rng_ref.random() != rng_kernel.random():
        return False, "pa generation kernel left the stream at a different position"

    from repro.generators.cm import ConfigurationModelGenerator

    sequence = [2, 3, 2, 1, 2, 2, 3, 1]
    rng_ref = RandomSource(seed=71)
    rng_kernel = RandomSource(seed=71)
    cm_ref = ConfigurationModelGenerator._stub_matching(sequence, rng_ref)
    cm_kernel = generator_kernels.cm_stub_matching_build(sequence, rng_kernel)
    if not _graphs_identical(cm_ref[0], cm_kernel[0]) or cm_ref[1:] != cm_kernel[1:]:
        return False, "cm generation kernel diverged from the reference"
    if rng_ref.random() != rng_kernel.random():
        return False, "cm generation kernel left the stream at a different position"

    from repro.generators.hapa import HAPAGenerator

    hapa = HAPAGenerator(40, stubs=2, hard_cutoff=5)
    rng_ref = RandomSource(seed=37)
    rng_kernel = RandomSource(seed=37)
    graph_ref, meta_ref = hapa._build_reference(rng_ref)
    graph_kernel, meta_kernel = generator_kernels.hapa_build(
        hapa.config, rng_kernel
    )
    if not _graphs_identical(graph_ref, graph_kernel) or meta_ref != meta_kernel:
        return False, "hapa generation kernel diverged from the reference"
    if rng_ref.random() != rng_kernel.random():
        return False, "hapa generation kernel left the stream at a different position"

    from repro.generators.dapa import DAPAGenerator

    ring = 30
    substrate = Graph.from_edges(
        ring,
        [(index, (index + 1) % ring) for index in range(ring)]
        + [(index, (index + 7) % ring) for index in range(ring)],
    )
    dapa = DAPAGenerator(
        overlay_size=15, stubs=2, hard_cutoff=4, local_ttl=2,
        substrate_graph=substrate,
    )
    rng_ref = RandomSource(seed=29)
    rng_kernel = RandomSource(seed=29)
    graph_ref, meta_ref = dapa._grow_overlay(substrate, rng_ref)
    graph_kernel, meta_kernel = generator_kernels.dapa_build(
        dapa.config, substrate, rng_kernel
    )
    meta_ref.pop("substrate_graph", None)
    meta_kernel.pop("substrate_graph", None)
    if not _graphs_identical(graph_ref, graph_kernel) or meta_ref != meta_kernel:
        return False, "dapa generation kernel diverged from the reference"
    if rng_ref.random() != rng_kernel.random():
        return False, "dapa generation kernel left the stream at a different position"

    pa_attempt = PreferentialAttachmentGenerator(
        40, stubs=2, hard_cutoff=6, strategy="attempt"
    )
    rng_ref = RandomSource(seed=59)
    rng_kernel = RandomSource(seed=59)
    graph_ref, meta_ref = pa_attempt._build_attempt(rng_ref)
    graph_kernel, meta_kernel = generator_kernels.pa_attempt_build(
        pa_attempt.config, rng_kernel
    )
    if not _graphs_identical(graph_ref, graph_kernel) or meta_ref != meta_kernel:
        return False, "pa attempt generation kernel diverged from the reference"
    if rng_ref.random() != rng_kernel.random():
        return False, (
            "pa attempt generation kernel left the stream at a different position"
        )

    from repro.generators.nonlinear_pa import NonlinearPreferentialAttachmentGenerator

    nlpa = NonlinearPreferentialAttachmentGenerator(
        40, stubs=2, exponent_alpha=0.8, hard_cutoff=6
    )
    rng_ref = RandomSource(seed=61)
    rng_kernel = RandomSource(seed=61)
    graph_ref, meta_ref = nlpa._build_reference(rng_ref)
    graph_kernel, meta_kernel = generator_kernels.nlpa_build(
        nlpa.config, nlpa.exponent_alpha, rng_kernel
    )
    if not _graphs_identical(graph_ref, graph_kernel) or meta_ref != meta_kernel:
        return False, "nlpa generation kernel diverged from the reference"
    if rng_ref.random() != rng_kernel.random():
        return False, "nlpa generation kernel left the stream at a different position"
    return True, ""


def _substrate_parity_check() -> "tuple[bool, str]":
    """The substrate probe: the GRN cell-grid sweep — in the plain unit box
    and on a small-grid torus, where the ±1 offsets wrap onto the same
    neighbor cell and the dedupe logic matters — and the ER skip loop must
    reproduce their dict-based reference builders: edges, neighbor order,
    positions, and final stream position.
    """
    from repro.kernels import substrate as substrate_kernels
    from repro.substrate.grn import GeometricRandomNetwork
    from repro.substrate.random_graph import ErdosRenyiNetwork

    grn_cases = (
        ("grn", dict(number_of_nodes=60, radius=0.2)),
        ("grn-torus", dict(number_of_nodes=25, radius=0.6, torus=True)),
    )
    for name, kwargs in grn_cases:
        builder = GeometricRandomNetwork(**kwargs)
        rng_ref = RandomSource(seed=67)
        rng_kernel = RandomSource(seed=67)
        graph_ref = builder._build_reference(rng_ref)
        positions_ref = dict(builder.positions)
        graph_kernel, positions = substrate_kernels.grn_build_arrays(
            builder.config, rng_kernel
        )
        positions_kernel = {
            node: tuple(row) for node, row in enumerate(positions.tolist())
        }
        if (
            not _graphs_identical(graph_ref, graph_kernel)
            or positions_ref != positions_kernel
        ):
            return False, f"{name} substrate kernel diverged from the reference"
        if rng_ref.random() != rng_kernel.random():
            return False, (
                f"{name} substrate kernel left the stream at a different position"
            )

    er = ErdosRenyiNetwork(80, edge_probability=0.07)
    rng_ref = RandomSource(seed=73)
    rng_kernel = RandomSource(seed=73)
    graph_ref = er._build_reference(rng_ref, 0.07)
    graph_kernel = substrate_kernels.er_build(80, 0.07, rng_kernel)
    if not _graphs_identical(graph_ref, graph_kernel):
        return False, "er substrate kernel diverged from the reference"
    if rng_ref.random() != rng_kernel.random():
        return False, "er substrate kernel left the stream at a different position"
    return True, ""


def _simulation_parity_check() -> "tuple[bool, str]":
    """The batched-query probe: for each forwarding policy the compiled
    batch kernel must reproduce the pure-Python batch reference — per-query
    counters, first-hit hops, provider lists, and final stream position —
    on a probe overlay with multiple sources and providers.
    """
    import numpy as np

    from repro.core.graph import Graph
    from repro.kernels.simulation import gnutella_query_batch
    from repro.simulation.protocol import batch_query_reference

    graph = Graph.from_edges(
        12,
        [
            (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (1, 2), (1, 6), (2, 7),
            (3, 8), (4, 9), (5, 10), (6, 7), (8, 9), (10, 11), (1, 3), (2, 4),
        ],
    )
    frozen = graph.freeze()
    provider_mask = np.zeros(12, dtype=np.bool_)
    provider_mask[7] = True
    provider_mask[11] = True
    sources = [0, 4, 11]
    for policy in ("fl", "nf", "rw"):
        rng_ref = RandomSource(seed=83)
        rng_kernel = RandomSource(seed=83)
        expected = batch_query_reference(
            frozen, sources, 4, policy, 2, 2, provider_mask, rng_ref
        )
        actual = gnutella_query_batch(
            frozen, sources, 4, policy, 2, 2, provider_mask, rng_kernel
        )
        if expected != actual:
            return False, f"{policy} batch query kernel diverged from the reference"
        if rng_ref.random() != rng_kernel.random():
            return False, (
                f"{policy} batch query kernel left the stream at a different position"
            )
    return True, ""


def _reference_nf(graph, rng):
    from repro.search.normalized_flooding import NormalizedFloodingSearch

    return NormalizedFloodingSearch(k_min=2).run(graph, 0, 5, rng=rng, target=7)


def _reference_pf(graph, rng):
    from repro.search.probabilistic_flooding import ProbabilisticFloodingSearch

    return ProbabilisticFloodingSearch(0.6).run(graph, 0, 5, rng=rng, target=7)


def _reference_rw(graph, rng):
    from repro.search.random_walk import RandomWalkSearch

    return RandomWalkSearch(walkers=2).run(graph, 0, 8, rng=rng, target=7)


def kernel_self_check() -> bool:
    """Return (and cache) the parity self-check verdict for this process.

    The first run is also where numba compiles every kernel, so its wall
    time is recorded (``_PROBE["self_check_seconds"]``, and a
    ``kernel-compile`` span when a telemetry collector is active) — that is
    the "compile tax" the trace and the runtime provenance surface.
    """
    if "self_check" not in _PROBE:
        with active_telemetry().span("kernel-compile"):
            started = telemetry_clock()
            try:
                # The probe's reference queries are infrastructure, not
                # workload: mute telemetry so they don't pollute the
                # search/generation counters and histograms.  The
                # kernel-compile span above still charges the probe's wall
                # time to the active collector.
                with use_telemetry(NULL_TELEMETRY):
                    passed, reason = _parity_self_check()
            except Exception as error:  # kernel import/compile failure
                passed, reason = False, f"{type(error).__name__}: {error}"
            _PROBE["self_check_seconds"] = telemetry_clock() - started
        _PROBE["self_check"] = passed
        _PROBE["self_check_failure"] = reason
    return bool(_PROBE["self_check"])


def self_check_failure() -> str:
    """Why the self-check failed (empty string when it passed / never ran)."""
    kernel_self_check()
    return str(_PROBE.get("self_check_failure", ""))


#: One-time-per-process guard for tier-fallback warnings, so a suite with
#: thousands of queries reports its effective tier exactly once.
_TIER_WARNINGS: "set[str]" = set()


def _warn_tier(key: str, message: str) -> None:
    if key in _TIER_WARNINGS:
        return
    _TIER_WARNINGS.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=4)
    # The warning is once-per-process by design; make it observable too:
    # a structured log record (stamped with the active trace id, so a slow
    # interpreted request is attributable) and a counter family.
    from repro.telemetry.logs import get_logger

    get_logger("repro.kernels").warning(
        "kernel-fallback", reason=key, message=message
    )
    active_telemetry().count(f"kernels.fallback.{key}")


def kernel_tier() -> str:
    """The tier ``auto`` resolves to: ``jit`` only when numba imports and
    the parity self-check passes, else ``python``.

    The fallback is no longer silent: the first resolution that demotes
    ``auto`` to ``python`` says why (numba missing, or the parity
    self-check failed) with a one-line :class:`RuntimeWarning`.
    """
    if not numba_available():
        _warn_tier(
            "auto-no-numba",
            "kernels: auto resolved to the python tier (numba is not "
            "installed; pip install numba for compiled kernels)",
        )
        return "python"
    if not kernel_self_check():
        _warn_tier(
            "auto-self-check",
            "kernels: auto resolved to the python tier (jit self-check "
            f"failed: {self_check_failure()})",
        )
        return "python"
    return "jit"


def resolve_kernels(mode: Optional[str] = None) -> str:
    """Resolve a requested mode (default: the ambient one) to a tier.

    ``auto`` → :func:`kernel_tier`.  An explicit ``jit`` activates the
    kernel path whenever the self-check passes — compiled with numba,
    interpreted (correct but not faster) without it — and falls back to
    ``python`` if the self-check fails.
    """
    requested = normalize_kernels(mode if mode is not None else active_kernels())
    if requested == "python":
        return "python"
    if requested == "auto":
        return kernel_tier()
    if kernel_self_check():
        return "jit"
    _warn_tier(
        "jit-self-check",
        "kernels: explicit jit request fell back to the python tier "
        f"(self-check failed: {self_check_failure()})",
    )
    return "python"


def kernel_query_ready(rng: object) -> bool:
    """Should a CSR stochastic query with this RNG go to the kernel tier?

    Requires the resolved tier to be ``jit`` and ``rng`` to be a plain
    :class:`~repro.core.rng.RandomSource` — subclasses (e.g. counting or
    instrumented sources) keep the reference path, because the kernels
    consume the Mersenne-Twister stream directly and would bypass any
    overridden draw methods.
    """
    if type(rng) is not RandomSource:
        return False
    ready = resolve_kernels() == "jit"
    telemetry = active_telemetry()
    if telemetry.enabled:
        telemetry.count(f"kernels.search.{'jit' if ready else 'python'}")
    return ready


def kernel_generation_ready(rng: object) -> bool:
    """Should a topology build with this RNG go to the generator kernels?

    Same contract as :func:`kernel_query_ready`: the resolved tier must be
    ``jit`` and ``rng`` must be a plain :class:`~repro.core.rng.RandomSource`
    — subclasses keep the reference growth loops, because the kernels
    consume the Mersenne-Twister stream directly and would bypass any
    overridden draw methods (e.g. counting sources in the tests).
    """
    if type(rng) is not RandomSource:
        return False
    ready = resolve_kernels() == "jit"
    telemetry = active_telemetry()
    if telemetry.enabled:
        telemetry.count(f"kernels.generation.{'jit' if ready else 'python'}")
    return ready


def kernel_simulation_ready(rng: object) -> bool:
    """Should a batched protocol query with this RNG go to the batch kernel?

    Same contract as :func:`kernel_query_ready`: the resolved tier must be
    ``jit`` and ``rng`` must be a plain :class:`~repro.core.rng.RandomSource`
    — subclasses keep the pure-Python batch reference, because the kernel
    consumes the Mersenne-Twister stream directly and would bypass any
    overridden draw methods.
    """
    if type(rng) is not RandomSource:
        return False
    ready = resolve_kernels() == "jit"
    telemetry = active_telemetry()
    if telemetry.enabled:
        telemetry.count(f"kernels.simulation.{'jit' if ready else 'python'}")
    return ready


def kernels_runtime() -> str:
    """Human-readable description of what the current mode resolves to."""
    tier = resolve_kernels()
    if tier != "jit":
        return "python"
    from repro.kernels._compat import NUMBA_AVAILABLE, NUMBA_VERSION

    if NUMBA_AVAILABLE:
        return f"jit (numba {NUMBA_VERSION})"
    return "jit (interpreted fallback; install numba for compiled kernels)"


def probe_status() -> Dict[str, object]:
    """The cached probe state, *without* triggering the probe.

    Reports (JSON-friendly) whether numba import / self-check have run this
    process and what they concluded, plus the self-check wall time (the
    numba compile tax).  Telemetry reports use this so that rendering a
    ``--json`` block never pays for a kernel compilation the run itself
    did not need.
    """
    return {
        "numba": _PROBE.get("numba"),
        "self_check": _PROBE.get("self_check"),
        "self_check_failure": _PROBE.get("self_check_failure", ""),
        "self_check_seconds": _PROBE.get("self_check_seconds"),
    }
