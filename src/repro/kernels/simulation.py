"""Batched Gnutella query kernel over the frozen overlay's CSR arrays.

PR 4 promised the simulation layer a compiled query path; this module
delivers it.  The event-driven
:meth:`repro.simulation.protocol.GnutellaProtocol.query` cannot be made
draw-identical to a batch (every ``send`` draws a latency sample and the
event heap orders deliveries by those draws), so the batched path defines
its own synchronous semantics — shared, statement for statement, with the
pure-Python reference
:func:`repro.simulation.protocol.batch_query_reference`:

* deliveries are processed in FIFO send order over the frozen overlay's
  ``indptr``/``indices`` rows (CSR insertion order, *not* the live peers'
  sorted neighbor tables);
* per delivery the live path's bookkeeping applies — first-time receipt
  counts the peer, a first-time provider answers exactly once, duplicates
  and exhausted TTLs stop, and forwarding excludes the previous hop with
  the policy's draw semantics (``fl`` all, ``nf`` a ``random.sample`` of
  ``branching``, ``rw`` one uniform pick);
* ``first_hit`` is the hop count of the first provider delivery (the event
  path reports a latency timestamp instead), and per-peer counters are not
  updated.

The kernel consumes the CPython Mersenne-Twister stream through
:mod:`repro.kernels.mt19937` (``random.sample`` via the same ``_mt_sample``
replica the search kernels use), so reference and kernel produce identical
statistics *and* leave the RNG at the same position.  Dispatch goes through
:func:`repro.kernels.dispatch.kernel_simulation_ready`, with the same
``auto`` parity self-check and telemetry tier counters as search and
generation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.rng import RandomSource
from repro.kernels._compat import maybe_njit
from repro.kernels.mt19937 import mt_randbelow
from repro.kernels.search import _mt_sample

__all__ = ["POLICY_CODES", "gnutella_query_batch"]

#: Forwarding-policy encoding shared by the kernel and its callers.
POLICY_CODES = {"fl": 0, "nf": 1, "rw": 2}


@maybe_njit
def _gnutella_batch_kernel(
    indptr, indices, state, sources, ttl, policy, branching, walkers,
    provider_mask, max_degree,
    seen_epoch, queue_node, queue_prev, queue_ttl,
    out_reached, out_query_messages, out_hit_messages, out_first_hit,
    providers_flat, provider_counts,
):
    """Run every query in ``sources`` to completion; fills the out arrays.

    Scratch arrays are caller-allocated and reused across queries via
    epoch stamping (``seen_epoch``) so a large batch allocates nothing per
    query.  ``providers_flat`` records providers in hit order, packed
    consecutively per query (``provider_counts`` holds the slice lengths).
    """
    scratch = np.empty(max_degree, dtype=np.int64)
    pick = branching if branching < max_degree else max_degree
    if pick < 1:
        pick = 1
    chosen = np.empty(pick, dtype=np.int64)
    provider_cursor = 0
    for query_index in range(sources.shape[0]):
        source = sources[query_index]
        epoch = query_index + 1
        reached = 0
        query_messages = 0
        hit_messages = 0
        first_hit = -1
        provider_count = 0
        seen_epoch[source] = epoch
        head = 0
        tail = 0

        start = indptr[source]
        end = indptr[source + 1]
        count = end - start
        if count > 0:
            if policy == 0:  # flooding: every neighbor, no previous hop
                for i in range(count):
                    queue_node[tail] = indices[start + i]
                    queue_prev[tail] = source
                    queue_ttl[tail] = ttl
                    tail += 1
                    query_messages += 1
            elif policy == 1:  # normalized flooding
                if count <= branching:
                    recipients = count
                    for i in range(count):
                        scratch[i] = indices[start + i]
                else:
                    recipients = branching
                    for i in range(count):
                        scratch[i] = indices[start + i]
                    _mt_sample(state, scratch, count, branching, chosen)
                    for i in range(branching):
                        scratch[i] = chosen[i]
                for i in range(recipients):
                    queue_node[tail] = scratch[i]
                    queue_prev[tail] = source
                    queue_ttl[tail] = ttl
                    tail += 1
                    query_messages += 1
            else:  # random walk: min(walkers, degree) independent walkers
                launches = walkers if walkers < count else count
                for _walker in range(launches):
                    target = indices[start + mt_randbelow(state, count)]
                    queue_node[tail] = target
                    queue_prev[tail] = source
                    queue_ttl[tail] = ttl
                    tail += 1
                    query_messages += 1

        while head < tail:
            node = queue_node[head]
            previous = queue_prev[head]
            message_ttl = queue_ttl[head]
            head += 1
            first_time = seen_epoch[node] != epoch
            if first_time:
                seen_epoch[node] = epoch
                reached += 1
                if provider_mask[node]:
                    hit_messages += 1
                    providers_flat[provider_cursor + provider_count] = node
                    provider_count += 1
                    if first_hit < 0:
                        first_hit = ttl - message_ttl + 1
            if not first_time:
                continue
            if message_ttl - 1 < 1:
                continue
            start = indptr[node]
            end = indptr[node + 1]
            count = 0
            for idx in range(start, end):
                neighbor = indices[idx]
                if neighbor != previous:
                    scratch[count] = neighbor
                    count += 1
            if count == 0:
                continue
            if policy == 0:
                recipients = count
            elif policy == 1:
                if count <= branching:
                    recipients = count
                else:
                    recipients = branching
                    _mt_sample(state, scratch, count, branching, chosen)
                    for i in range(branching):
                        scratch[i] = chosen[i]
            else:
                scratch[0] = scratch[mt_randbelow(state, count)]
                recipients = 1
            for i in range(recipients):
                queue_node[tail] = scratch[i]
                queue_prev[tail] = node
                queue_ttl[tail] = message_ttl - 1
                tail += 1
                query_messages += 1

        out_reached[query_index] = reached
        out_query_messages[query_index] = query_messages
        out_hit_messages[query_index] = hit_messages
        out_first_hit[query_index] = first_hit
        provider_counts[query_index] = provider_count
        provider_cursor += provider_count


def gnutella_query_batch(
    frozen,
    source_rows: Sequence[int],
    ttl: int,
    policy: str,
    branching: int,
    walkers: int,
    provider_mask: np.ndarray,
    rng: RandomSource,
) -> Tuple[List[int], List[int], List[int], List[int], List[List[int]]]:
    """Kernel-tier batch query; same draws and results as the reference.

    Everything is in *row* space: ``source_rows`` and the returned provider
    lists index rows of ``frozen`` (the caller translates to peer ids).
    Returns ``(peers_reached, query_messages, hit_messages, first_hit_hop,
    providers)`` with ``first_hit_hop == -1`` when no provider answered.
    """
    indptr = frozen._indptr
    indices = frozen._indices
    n = int(indptr.shape[0] - 1)
    sources = np.asarray(list(source_rows), dtype=np.int64)
    queries = len(sources)
    mask = np.asarray(provider_mask, dtype=np.bool_)
    max_degree = max(1, int(frozen.max_degree())) if n else 1
    queue_capacity = int(indices.shape[0]) + max(1, int(walkers)) + 1

    seen_epoch = np.zeros(n, dtype=np.int64)
    queue_node = np.empty(queue_capacity, dtype=np.int64)
    queue_prev = np.empty(queue_capacity, dtype=np.int64)
    queue_ttl = np.empty(queue_capacity, dtype=np.int64)
    out_reached = np.zeros(queries, dtype=np.int64)
    out_query_messages = np.zeros(queries, dtype=np.int64)
    out_hit_messages = np.zeros(queries, dtype=np.int64)
    out_first_hit = np.full(queries, -1, dtype=np.int64)
    providers_flat = np.empty(
        max(1, queries * int(mask.sum())), dtype=np.int64
    )
    provider_counts = np.zeros(queries, dtype=np.int64)

    state = rng.export_mt_state()
    _gnutella_batch_kernel(
        indptr, indices, state, sources, ttl, POLICY_CODES[policy],
        branching, walkers, mask, max_degree,
        seen_epoch, queue_node, queue_prev, queue_ttl,
        out_reached, out_query_messages, out_hit_messages, out_first_hit,
        providers_flat, provider_counts,
    )
    rng.import_mt_state(state)

    providers: List[List[int]] = []
    cursor = 0
    for query_index in range(queries):
        span = int(provider_counts[query_index])
        providers.append(
            [int(row) for row in providers_flat[cursor : cursor + span]]
        )
        cursor += span
    return (
        [int(value) for value in out_reached],
        [int(value) for value in out_query_messages],
        [int(value) for value in out_hit_messages],
        [int(value) for value in out_first_hit],
        providers,
    )
