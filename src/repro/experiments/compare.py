"""Compare two experiment results (e.g. this run vs. a stored baseline).

Reproduction work needs a quick answer to "did anything move?": between two
runs of the same experiment (different seeds, different scales, a code
change, or a stored baseline under ``benchmarks/results/``), which series
appeared or disappeared, and how far apart are the shared ones?  This module
provides that diff as plain data so it can be printed by the CLI, asserted
in regression tests, or embedded in EXPERIMENTS.md updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import ExperimentError
from repro.experiments.results import ExperimentResult, Series

__all__ = ["SeriesComparison", "ComparisonReport", "compare_results"]


@dataclass
class SeriesComparison:
    """Difference between one series present in both results.

    Attributes
    ----------
    label:
        The shared series label.
    max_relative_difference:
        ``max_i |a_i - b_i| / max(|b_i|, eps)`` over the shared x grid.
    mean_relative_difference:
        The mean of the same per-point quantity.
    points_compared:
        Number of x values present in both series.
    identical_grid:
        Whether the two series share exactly the same x values.
    """

    label: str
    max_relative_difference: float
    mean_relative_difference: float
    points_compared: int
    identical_grid: bool

    def within(self, tolerance: float) -> bool:
        """Return ``True`` when the maximum relative difference is below ``tolerance``."""
        return self.max_relative_difference <= tolerance


@dataclass
class ComparisonReport:
    """Full diff between two :class:`ExperimentResult` objects."""

    experiment_id: str
    shared: List[SeriesComparison] = field(default_factory=list)
    only_in_first: List[str] = field(default_factory=list)
    only_in_second: List[str] = field(default_factory=list)

    def worst(self) -> Optional[SeriesComparison]:
        """Return the shared series with the largest relative difference."""
        if not self.shared:
            return None
        return max(self.shared, key=lambda item: item.max_relative_difference)

    def all_within(self, tolerance: float) -> bool:
        """Return ``True`` when every shared series differs by at most ``tolerance``."""
        return all(item.within(tolerance) for item in self.shared)

    def summary(self) -> Dict[str, object]:
        """Return a JSON-friendly summary of the comparison."""
        worst = self.worst()
        return {
            "experiment_id": self.experiment_id,
            "shared_series": len(self.shared),
            "only_in_first": list(self.only_in_first),
            "only_in_second": list(self.only_in_second),
            "worst_label": worst.label if worst else None,
            "worst_max_relative_difference": (
                worst.max_relative_difference if worst else None
            ),
        }


def _compare_series(first: Series, second: Series, eps: float = 1e-12) -> SeriesComparison:
    first_points = dict(zip(first.x, first.y))
    second_points = dict(zip(second.x, second.y))
    shared_x = sorted(set(first_points) & set(second_points))
    if not shared_x:
        raise ExperimentError(
            f"series {first.label!r} share no x values between the two results"
        )
    differences = []
    for x_value in shared_x:
        a = float(first_points[x_value])
        b = float(second_points[x_value])
        differences.append(abs(a - b) / max(abs(b), eps))
    return SeriesComparison(
        label=first.label,
        max_relative_difference=max(differences),
        mean_relative_difference=sum(differences) / len(differences),
        points_compared=len(shared_x),
        identical_grid=list(first.x) == list(second.x),
    )


def compare_results(first: ExperimentResult, second: ExperimentResult) -> ComparisonReport:
    """Diff two results of the same experiment.

    Raises :class:`~repro.core.errors.ExperimentError` when the experiment
    ids differ (comparing a Fig. 9 run against a Fig. 11 run is a mistake,
    not a diff).

    Examples
    --------
    >>> from repro.experiments.results import ExperimentResult, Series
    >>> a = ExperimentResult("figX", "t", [Series("s", [1, 2], [10.0, 20.0])])
    >>> b = ExperimentResult("figX", "t", [Series("s", [1, 2], [10.0, 22.0])])
    >>> report = compare_results(a, b)
    >>> round(report.worst().max_relative_difference, 3)
    0.091
    >>> report.all_within(0.1)
    True
    """
    if first.experiment_id != second.experiment_id:
        raise ExperimentError(
            "cannot compare results of different experiments "
            f"({first.experiment_id!r} vs {second.experiment_id!r})"
        )
    report = ComparisonReport(experiment_id=first.experiment_id)
    second_by_label = {series.label: series for series in second.series}
    for series in first.series:
        if series.label in second_by_label:
            report.shared.append(_compare_series(series, second_by_label[series.label]))
        else:
            report.only_in_first.append(series.label)
    first_labels = {series.label for series in first.series}
    report.only_in_second = [
        series.label for series in second.series if series.label not in first_labels
    ]
    return report
