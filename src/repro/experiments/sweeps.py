"""Parameter-sweep helpers.

The paper's figures are grids over a handful of parameters (m × kc,
m × τ_sub, γ × kc, ...).  :func:`parameter_grid` expands a mapping of
parameter names to candidate values into the list of combinations, in a
deterministic order, so experiment code reads as "for each point of the
paper's grid" rather than as nested loops.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Sequence

from repro.core.errors import ExperimentError

__all__ = ["parameter_grid", "format_cutoff", "format_label"]


def parameter_grid(space: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Expand ``{"m": [1, 2], "kc": [10, None]}`` into the 4 combinations.

    The order is the Cartesian product with the *last* key varying fastest,
    matching how the paper's figure panels are laid out (outer parameter =
    panel, inner parameter = curve).

    Examples
    --------
    >>> parameter_grid({"m": [1, 2], "kc": [10, None]})
    [{'m': 1, 'kc': 10}, {'m': 1, 'kc': None}, {'m': 2, 'kc': 10}, {'m': 2, 'kc': None}]
    """
    if not space:
        raise ExperimentError("the parameter space must not be empty")
    keys = list(space.keys())
    value_lists = [list(space[key]) for key in keys]
    for key, values in zip(keys, value_lists):
        if not values:
            raise ExperimentError(f"parameter {key!r} has no candidate values")
    combinations: List[Dict[str, Any]] = []
    for values in itertools.product(*value_lists):
        combinations.append(dict(zip(keys, values)))
    return combinations


def format_cutoff(cutoff: "int | None") -> str:
    """Render a hard cutoff the way the paper labels it (``no kc`` for none)."""
    return "no kc" if cutoff is None else f"kc={cutoff}"


def format_label(**parts: Any) -> str:
    """Build a curve label like ``"m=2, kc=10, tau_sub=4"`` from keyword parts.

    ``None`` values are rendered in the paper's "no kc" style when the key is
    ``kc``, and skipped otherwise.

    Examples
    --------
    >>> format_label(m=2, kc=None)
    'm=2, no kc'
    >>> format_label(m=1, kc=40, tau_sub=6)
    'm=1, kc=40, tau_sub=6'
    """
    pieces: List[str] = []
    for key, value in parts.items():
        if key == "kc":
            pieces.append(format_cutoff(value))
        elif value is None:
            continue
        else:
            pieces.append(f"{key}={value}")
    return ", ".join(pieces)
