"""Result containers for the experiment harness.

Every experiment produces an :class:`ExperimentResult`: a set of named
:class:`Series` (x/y arrays plus metadata — one series per curve the paper
plots), the parameters used, and free-form notes describing how the output
should be compared with the paper (which trend to look at, not which absolute
numbers).  Results serialise to JSON (for storage / regression comparison)
and render to aligned text tables (for the CLI and the benchmark logs).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.errors import ExperimentError

__all__ = ["Series", "ExperimentResult"]

Number = Union[int, float]


@dataclass
class Series:
    """One labelled curve: x values, y values, and provenance metadata.

    Attributes
    ----------
    label:
        Legend label, mirroring the paper's curve labels
        (e.g. ``"m=2, kc=10"`` or ``"tau_sub=6"``).
    x:
        Independent variable (degree ``k``, TTL ``τ``, cutoff ``kc``, ...).
    y:
        Dependent variable (``P(k)``, number of hits, exponent γ, ...).
    metadata:
        Free-form provenance (model, parameters, realization count, ...).
    """

    label: str
    x: List[Number]
    y: List[Number]
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ExperimentError(
                f"series {self.label!r}: x and y must have the same length "
                f"({len(self.x)} vs {len(self.y)})"
            )

    def __len__(self) -> int:
        return len(self.x)

    def y_at(self, x_value: Number) -> Number:
        """Return the y value at the exact x value (raises if absent)."""
        try:
            return self.y[self.x.index(x_value)]
        except ValueError:
            raise ExperimentError(
                f"series {self.label!r} has no point at x={x_value}"
            ) from None

    def final(self) -> Number:
        """Return the last y value (the largest-x end of the curve)."""
        if not self.y:
            raise ExperimentError(f"series {self.label!r} is empty")
        return self.y[-1]

    def as_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly representation."""
        return {
            "label": self.label,
            "x": list(self.x),
            "y": list(self.y),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Series":
        """Rebuild a series from :meth:`as_dict` output."""
        return cls(
            label=str(payload["label"]),
            x=list(payload["x"]),
            y=list(payload["y"]),
            metadata=dict(payload.get("metadata", {})),
        )


@dataclass
class ExperimentResult:
    """The complete output of one experiment (one figure or table).

    Attributes
    ----------
    experiment_id:
        Short id ("fig1", "table1", "ablation_min_degree", ...).
    title:
        Human-readable description.
    series:
        The curves / rows reproduced.
    parameters:
        Scale and model parameters the experiment ran with.
    notes:
        How to compare this output with the paper (expected trends).
    """

    experiment_id: str
    title: str
    series: List[Series] = field(default_factory=list)
    parameters: Dict[str, object] = field(default_factory=dict)
    notes: str = ""

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def add(self, series: Series) -> None:
        """Append a series to the result."""
        self.series.append(series)

    def labels(self) -> List[str]:
        """Return the labels of all series, in insertion order."""
        return [series.label for series in self.series]

    def get(self, label: str) -> Series:
        """Return the series with the given label."""
        for series in self.series:
            if series.label == label:
                return series
        raise ExperimentError(
            f"experiment {self.experiment_id!r} has no series labelled {label!r}; "
            f"available: {', '.join(self.labels())}"
        )

    def __contains__(self, label: object) -> bool:
        return any(series.label == label for series in self.series)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly representation."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "series": [series.as_dict() for series in self.series],
            "parameters": dict(self.parameters),
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result from :meth:`as_dict` output."""
        return cls(
            experiment_id=str(payload["experiment_id"]),
            title=str(payload.get("title", "")),
            series=[Series.from_dict(item) for item in payload.get("series", [])],
            parameters=dict(payload.get("parameters", {})),
            notes=str(payload.get("notes", "")),
        )

    def save_json(self, path: "str | Path") -> Path:
        """Write the result to ``path`` as JSON and return the path."""
        destination = Path(path)
        destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True))
        return destination

    @classmethod
    def load_json(cls, path: "str | Path") -> "ExperimentResult":
        """Load a result previously written by :meth:`save_json`."""
        payload = json.loads(Path(path).read_text())
        return cls.from_dict(payload)

    def save_csv(self, path: "str | Path") -> Path:
        """Write the result as a long-format CSV (label, x, y)."""
        destination = Path(path)
        destination.parent.mkdir(parents=True, exist_ok=True)
        lines = ["label,x,y"]
        for series in self.series:
            for x_value, y_value in zip(series.x, series.y):
                lines.append(f"{series.label},{x_value},{y_value}")
        destination.write_text("\n".join(lines) + "\n")
        return destination

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def to_table(self, max_points: int = 12, float_format: str = "{:.4g}") -> str:
        """Render the result as an aligned text table (one row per series).

        Long series are subsampled to ``max_points`` columns so the output
        stays readable in a terminal or a benchmark log.
        """
        lines = [f"{self.experiment_id}: {self.title}"]
        for series in self.series:
            points = list(zip(series.x, series.y))
            if len(points) > max_points:
                step = max(1, len(points) // max_points)
                sampled = points[::step]
                if sampled[-1] != points[-1]:
                    sampled.append(points[-1])
                points = sampled
            rendered = ", ".join(
                f"({float_format.format(float(x))}, {float_format.format(float(y))})"
                for x, y in points
            )
            lines.append(f"  {series.label:<28s} {rendered}")
        if self.notes:
            lines.append(f"  notes: {self.notes}")
        return "\n".join(lines)
