"""Experiment harness: reproduce every table and figure of the paper.

Each experiment module under :mod:`repro.experiments.figures` regenerates the
data behind one figure or table of the paper (the *series* that would be
plotted, not the rendered image):

========================  ================================================
Experiment id             Paper artefact
========================  ================================================
``fig1``                  Fig. 1 — PA degree distributions and γ vs cutoff
``fig2``                  Fig. 2 — CM degree distributions
``fig3``                  Fig. 3 — HAPA degree distributions
``fig4``                  Fig. 4 — DAPA degree distributions and γ vs cutoff
``table1``                Table I — diameter scaling classes
``table2``                Table II — global-information usage
``fig6``                  Fig. 6 — FL on PA and HAPA
``fig7``                  Fig. 7 — FL on CM
``fig8``                  Fig. 8 — FL on DAPA
``fig9``                  Fig. 9 — NF on PA, CM, HAPA
``fig10``                 Fig. 10 — NF on DAPA
``fig11``                 Fig. 11 — RW on PA, CM, HAPA
``fig12``                 Fig. 12 — RW on DAPA
``messaging``             §V-B-2 — messaging complexity of NF vs RW
``natural_cutoff``        Eqs. 2/4/5 — natural-cutoff scaling
``ablation_min_degree``   guideline: m ≥ 2–3 removes the cutoff penalty
``ablation_robustness``   hubs vs cutoffs under failures and attacks
========================  ================================================

All experiments accept an :class:`~repro.experiments.runner.ExperimentScale`
so the same code runs as a fast smoke test, as the default benchmark size, or
at the paper's full network sizes.
"""

from repro.experiments.compare import ComparisonReport, compare_results
from repro.experiments.registry import (
    available_experiments,
    get_experiment,
    run_experiment,
    run_scenario,
    run_scenario_cached,
)
from repro.experiments.results import ExperimentResult, Series
from repro.experiments.runner import ExperimentScale, realization_seeds, run_realizations
from repro.experiments.sweeps import parameter_grid

__all__ = [
    "ComparisonReport",
    "ExperimentResult",
    "ExperimentScale",
    "Series",
    "available_experiments",
    "compare_results",
    "get_experiment",
    "parameter_grid",
    "realization_seeds",
    "run_experiment",
    "run_realizations",
    "run_scenario",
    "run_scenario_cached",
]
