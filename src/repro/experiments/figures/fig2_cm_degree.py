"""Fig. 2 — degree distributions of the configuration model.

Three panels for prescribed exponents γ = 2.2, 2.6, 3.0, each with
m ∈ {1, 2, 3} and cutoffs kc ∈ {10, 40, none}.  Because the exponent is
prescribed, the cutoff does not change the slope: it only truncates the tail.
Deleting self-loops and multi-edges leaves a small number of nodes below the
prescribed minimum degree (possibly isolated), which is also visible in the
paper's panels.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.figures._common import degree_distribution_series, resolve_scale
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import ExperimentScale
from repro.experiments.sweeps import format_label

EXPERIMENT_ID = "fig2"
TITLE = "Configuration-model degree distributions (paper Fig. 2)"

EXPONENTS = (2.2, 2.6, 3.0)


def run(
    scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> ExperimentResult:
    """Regenerate the three panels of Fig. 2 as labelled series."""
    scale = resolve_scale(scale, seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters=scale.as_dict(),
        notes=(
            "For each gamma the cutoff series should share the same slope as "
            "the no-cutoff series and simply stop at k=kc; a few nodes may "
            "fall below the prescribed minimum degree after self-loop/"
            "multi-edge removal."
        ),
    )

    stubs_values = [1, 2, 3] if scale.name != "smoke" else [1, 3]
    cutoff_values = [10, 40, None] if scale.name != "smoke" else [10, None]
    exponents = EXPONENTS if scale.name != "smoke" else (2.2, 3.0)

    for exponent in exponents:
        for stubs in stubs_values:
            for cutoff in cutoff_values:
                result.add(
                    degree_distribution_series(
                        "cm",
                        label=f"gamma={exponent}, {format_label(m=stubs, kc=cutoff)}",
                        scale=scale,
                        stubs=stubs,
                        hard_cutoff=cutoff,
                        exponent=exponent,
                    )
                )
    return result
