"""Fig. 2 — degree distributions of the configuration model.

Three panels for prescribed exponents γ = 2.2, 2.6, 3.0, each with
m ∈ {1, 2, 3} and cutoffs kc ∈ {10, 40, none}.  Because the exponent is
prescribed, the cutoff does not change the slope: it only truncates the tail.
Deleting self-loops and multi-edges leaves a small number of nodes below the
prescribed minimum degree (possibly isolated), which is also visible in the
paper's panels.
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, scenario_runner

SCENARIO = ScenarioSpec.from_dict({
    "id": "fig2",
    "title": "Configuration-model degree distributions (paper Fig. 2)",
    "notes": (
        "For each gamma the cutoff series should share the same slope as "
        "the no-cutoff series and simply stop at k=kc; a few nodes may "
        "fall below the prescribed minimum degree after self-loop/"
        "multi-edge removal."
    ),
    "topology": {"model": "cm"},
    "sweep": {"axes": {
        "exponent": {"default": [2.2, 2.6, 3.0], "smoke": [2.2, 3.0]},
        "stubs": {"default": [1, 2, 3], "smoke": [1, 3]},
        "hard_cutoff": {"default": [10, 40, None], "smoke": [10, None]},
    }},
    "label": "gamma={gamma}, m={m}, {kc}",
    "measurement": {"kind": "degree-distribution"},
})

EXPERIMENT_ID = SCENARIO.scenario_id
TITLE = SCENARIO.title

run = scenario_runner(SCENARIO)
