"""Fig. 3 — degree distributions of the HAPA model.

Panel (a): without a cutoff the hop-and-attempt rule concentrates almost all
links on a handful of super hubs (degree of the order of the system size) —
a star-like topology rather than a power law.
Panels (b, c): a hard cutoff (kc = 50 and kc = 10) destroys the star and the
distribution becomes power-law-like with an exponential correction.

Expected qualitative agreement: the no-cutoff series contains degrees close
to N; the cutoff series do not exceed kc and decay monotonically.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.figures._common import degree_distribution_series, resolve_scale
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import ExperimentScale
from repro.experiments.sweeps import format_label

EXPERIMENT_ID = "fig3"
TITLE = "HAPA degree distributions: star without cutoff, power law with (paper Fig. 3)"


def run(
    scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> ExperimentResult:
    """Regenerate the three panels of Fig. 3 as labelled series."""
    scale = resolve_scale(scale, seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters=scale.as_dict(),
        notes=(
            "The 'no kc' series must contain at least one degree on the order "
            "of the network size (super hub); the kc series are bounded by kc."
        ),
    )

    stubs_values = [1, 2, 3] if scale.name != "smoke" else [1]
    cutoff_values = [None, 50, 10] if scale.name != "smoke" else [None, 10]

    for stubs in stubs_values:
        for cutoff in cutoff_values:
            result.add(
                degree_distribution_series(
                    "hapa",
                    label=f"P(k) {format_label(m=stubs, kc=cutoff)}",
                    scale=scale,
                    stubs=stubs,
                    hard_cutoff=cutoff,
                )
            )
    return result
