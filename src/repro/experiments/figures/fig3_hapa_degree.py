"""Fig. 3 — degree distributions of the HAPA model.

Panel (a): without a cutoff the hop-and-attempt rule concentrates almost all
links on a handful of super hubs (degree of the order of the system size) —
a star-like topology rather than a power law.
Panels (b, c): a hard cutoff (kc = 50 and kc = 10) destroys the star and the
distribution becomes power-law-like with an exponential correction.

Expected qualitative agreement: the no-cutoff series contains degrees close
to N; the cutoff series do not exceed kc and decay monotonically.
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, scenario_runner

SCENARIO = ScenarioSpec.from_dict({
    "id": "fig3",
    "title": "HAPA degree distributions: star without cutoff, power law with (paper Fig. 3)",
    "notes": (
        "The 'no kc' series must contain at least one degree on the order "
        "of the network size (super hub); the kc series are bounded by kc."
    ),
    "topology": {"model": "hapa"},
    "sweep": {"axes": {
        "stubs": {"default": [1, 2, 3], "smoke": [1]},
        "hard_cutoff": {"default": [None, 50, 10], "smoke": [None, 10]},
    }},
    "label": "P(k) m={m}, {kc}",
    "measurement": {"kind": "degree-distribution"},
})

EXPERIMENT_ID = SCENARIO.scenario_id
TITLE = SCENARIO.title

run = scenario_runner(SCENARIO)
