"""Fig. 9 — normalized-flooding search on PA, CM, and HAPA topologies.

Number of hits versus TTL for m ∈ {1, 2, 3} and a sweep of hard cutoffs, on
the three "global-information" construction models.

Expected qualitative agreement (the paper's headline result): on PA and HAPA
topologies *smaller* hard cutoffs give *more* hits at the same τ, for every
m; on CM the cutoff has no such benefit (the exponent is prescribed).
Raising m from 1 to 2–3 increases the hit count by orders of magnitude.
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, scenario_runner

#: Cutoff sweep per model: the paper sweeps 10..200; CM gets a shorter grid
#: because the prescribed exponent makes the cutoff indifferent there.
GLOBAL_MODEL_CUTOFFS = {"default": [10, 20, 40, 100, None], "smoke": [10, None]}
CM_CUTOFFS = {"default": [10, 40, None], "smoke": [10, None]}

#: Stub sweep shared by the NF/RW "global models" figures (9 and 11).
GLOBAL_MODEL_STUBS = {"default": [1, 2, 3], "smoke": [1, 2]}


def global_models_panels(algorithm: str) -> list:
    """The shared Fig. 9 / Fig. 11 panel structure: PA, CM, HAPA sweeps."""
    return [
        {
            "topology": {"model": model, "exponent": exponent},
            "sweep": {"axes": {"stubs": GLOBAL_MODEL_STUBS, "hard_cutoff": cutoffs}},
            "label": "{model} m={m}, {kc}",
            "measurement": {"kind": "search-curve", "algorithm": algorithm},
        }
        for model, exponent, cutoffs in (
            ("pa", 3.0, GLOBAL_MODEL_CUTOFFS),
            ("cm", 2.2, CM_CUTOFFS),
            ("hapa", 3.0, GLOBAL_MODEL_CUTOFFS),
        )
    ]


SCENARIO = ScenarioSpec.from_dict({
    "id": "fig9",
    "title": "Normalized flooding on PA, CM, HAPA topologies (paper Fig. 9)",
    "notes": (
        "On PA and HAPA the smallest-kc series should finish at or above "
        "the no-cutoff series; on CM the ordering is indifferent; m=2,3 "
        "series sit far above m=1 series."
    ),
    "panels": global_models_panels("nf"),
})

EXPERIMENT_ID = SCENARIO.scenario_id
TITLE = SCENARIO.title

run = scenario_runner(SCENARIO)
