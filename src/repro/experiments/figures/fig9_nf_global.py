"""Fig. 9 — normalized-flooding search on PA, CM, and HAPA topologies.

Number of hits versus TTL for m ∈ {1, 2, 3} and a sweep of hard cutoffs, on
the three "global-information" construction models.

Expected qualitative agreement (the paper's headline result): on PA and HAPA
topologies *smaller* hard cutoffs give *more* hits at the same τ, for every
m; on CM the cutoff has no such benefit (the exponent is prescribed).
Raising m from 1 to 2–3 increases the hit count by orders of magnitude.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.figures._common import (
    normalized_flooding_series,
    resolve_scale,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import ExperimentScale
from repro.experiments.sweeps import format_label

EXPERIMENT_ID = "fig9"
TITLE = "Normalized flooding on PA, CM, HAPA topologies (paper Fig. 9)"


def cutoffs_for_model(scale: ExperimentScale, model: str):
    """Cutoff sweep: a few values plus 'none' (the paper sweeps 10..200)."""
    if scale.name == "smoke":
        return [10, None]
    if model == "cm":
        return [10, 40, None]
    return [10, 20, 40, 100, None]


def run(
    scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> ExperimentResult:
    """Regenerate the six panels of Fig. 9 as labelled hit-vs-τ series."""
    scale = resolve_scale(scale, seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters=scale.as_dict(),
        notes=(
            "On PA and HAPA the smallest-kc series should finish at or above "
            "the no-cutoff series; on CM the ordering is indifferent; m=2,3 "
            "series sit far above m=1 series."
        ),
    )

    stubs_values = [1, 2, 3] if scale.name != "smoke" else [1, 2]
    models = ("pa", "cm", "hapa")

    for model in models:
        for stubs in stubs_values:
            for cutoff in cutoffs_for_model(scale, model):
                result.add(
                    normalized_flooding_series(
                        model,
                        label=f"{model} {format_label(m=stubs, kc=cutoff)}",
                        scale=scale,
                        stubs=stubs,
                        hard_cutoff=cutoff,
                        exponent=2.2 if model == "cm" else 3.0,
                    )
                )
    return result
