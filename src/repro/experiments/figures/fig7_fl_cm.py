"""Fig. 7 — flooding search efficiency on configuration-model topologies.

Number of hits versus TTL for prescribed exponents γ ∈ {2.2, 2.6, 3.0},
m ∈ {1, 2, 3}, and kc ∈ {10, 40, none}.

Expected qualitative agreement: for m ≥ 2 the no-cutoff series dominates and
the cutoff penalty shrinks with m; for m = 1 the CM graph is disconnected, so
the hit count saturates well below the network size for every cutoff.
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, scenario_runner

SCENARIO = ScenarioSpec.from_dict({
    "id": "fig7",
    "title": "Flooding search on configuration-model topologies (paper Fig. 7)",
    "notes": (
        "m=1 series must saturate below the network size (disconnected "
        "CM); for m>=2 the 'no kc' series dominates its cutoff variants."
    ),
    "topology": {"model": "cm"},
    "sweep": {"axes": {
        "exponent": {"default": [2.2, 2.6, 3.0], "smoke": [2.2, 3.0]},
        "stubs": {"default": [1, 2, 3], "smoke": [1, 2]},
        "hard_cutoff": {"default": [10, 40, None], "smoke": [10, None]},
    }},
    "label": "gamma={gamma}, m={m}, {kc}",
    "measurement": {"kind": "search-curve", "algorithm": "fl"},
})

EXPERIMENT_ID = SCENARIO.scenario_id
TITLE = SCENARIO.title

run = scenario_runner(SCENARIO)
