"""Fig. 7 — flooding search efficiency on configuration-model topologies.

Number of hits versus TTL for prescribed exponents γ ∈ {2.2, 2.6, 3.0},
m ∈ {1, 2, 3}, and kc ∈ {10, 40, none}.

Expected qualitative agreement: for m ≥ 2 the no-cutoff series dominates and
the cutoff penalty shrinks with m; for m = 1 the CM graph is disconnected, so
the hit count saturates well below the network size for every cutoff.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.figures._common import flooding_series, resolve_scale
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import ExperimentScale
from repro.experiments.sweeps import format_label

EXPERIMENT_ID = "fig7"
TITLE = "Flooding search on configuration-model topologies (paper Fig. 7)"


def run(
    scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> ExperimentResult:
    """Regenerate the three panels of Fig. 7 as labelled hit-vs-τ series."""
    scale = resolve_scale(scale, seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters=scale.as_dict(),
        notes=(
            "m=1 series must saturate below the network size (disconnected "
            "CM); for m>=2 the 'no kc' series dominates its cutoff variants."
        ),
    )

    exponents = (2.2, 2.6, 3.0) if scale.name != "smoke" else (2.2, 3.0)
    stubs_values = [1, 2, 3] if scale.name != "smoke" else [1, 2]
    cutoffs = [10, 40, None] if scale.name != "smoke" else [10, None]

    for exponent in exponents:
        for stubs in stubs_values:
            for cutoff in cutoffs:
                result.add(
                    flooding_series(
                        "cm",
                        label=(
                            f"gamma={exponent}, {format_label(m=stubs, kc=cutoff)}"
                        ),
                        scale=scale,
                        stubs=stubs,
                        hard_cutoff=cutoff,
                        exponent=exponent,
                    )
                )
    return result
