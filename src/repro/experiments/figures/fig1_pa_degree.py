"""Fig. 1 — degree distributions of the PA model with and without hard cutoffs.

Panel (a): P(k) for m = 1, 2, 3 without a cutoff (power law, γ close to 3 for
large N; the paper measures 2.8–2.9 at N = 10⁵).
Panel (b): P(k) with hard cutoffs kc ∈ {10, 20, 40, 100}: still power-law-
like but with an accumulation spike at k = kc.
Panel (c): the fitted exponent γ versus the hard cutoff for m = 1, 2, 3 —
γ decreases as the cutoff shrinks.

Expected qualitative agreement: the no-cutoff curves are straight lines on a
log–log plot; the cutoff curves terminate at kc with an elevated final point;
the γ-vs-kc series are increasing in kc.
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, scenario_runner

_STUBS = {"default": [1, 2, 3], "smoke": [1, 2]}

SCENARIO = ScenarioSpec.from_dict({
    "id": "fig1",
    "title": "PA degree distributions with hard cutoffs (paper Fig. 1)",
    "notes": (
        "Panel (a): 'P(k) m=...' series should be power laws; "
        "panel (b): '... kc=...' series accumulate probability at k=kc; "
        "panel (c): 'gamma vs kc m=...' series increase with kc."
    ),
    "topology": {"model": "pa"},
    "panels": [
        {   # Panel (a): no cutoff.
            "sweep": {"axes": {"stubs": _STUBS}},
            "label": "P(k) m={m}, {kc}",
            "measurement": {"kind": "degree-distribution"},
        },
        {   # Panel (b): hard cutoffs.
            "sweep": {"axes": {
                "stubs": _STUBS,
                "hard_cutoff": {"default": [10, 40, 100], "smoke": [10, 40]},
            }},
            "label": "P(k) m={m}, {kc}",
            "measurement": {"kind": "degree-distribution"},
        },
        {   # Panel (c): fitted exponent vs cutoff.
            "topology": {"tau_sub": 10},
            "sweep": {"axes": {"stubs": _STUBS}},
            "label": "gamma vs kc m={m}",
            "measurement": {
                "kind": "exponent-vs-cutoff",
                "params": {"cutoffs": {
                    "default": [10, 20, 30, 40, 50], "smoke": [10, 30, 50],
                }},
            },
        },
    ],
})

EXPERIMENT_ID = SCENARIO.scenario_id
TITLE = SCENARIO.title

run = scenario_runner(SCENARIO)
