"""Fig. 1 — degree distributions of the PA model with and without hard cutoffs.

Panel (a): P(k) for m = 1, 2, 3 without a cutoff (power law, γ close to 3 for
large N; the paper measures 2.8–2.9 at N = 10⁵).
Panel (b): P(k) with hard cutoffs kc ∈ {10, 20, 40, 100}: still power-law-
like but with an accumulation spike at k = kc.
Panel (c): the fitted exponent γ versus the hard cutoff for m = 1, 2, 3 —
γ decreases as the cutoff shrinks.

Expected qualitative agreement: the no-cutoff curves are straight lines on a
log–log plot; the cutoff curves terminate at kc with an elevated final point;
the γ-vs-kc series are increasing in kc.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.figures._common import (
    degree_distribution_series,
    exponent_vs_cutoff_series,
    resolve_scale,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import ExperimentScale
from repro.experiments.sweeps import format_label

EXPERIMENT_ID = "fig1"
TITLE = "PA degree distributions with hard cutoffs (paper Fig. 1)"


def run(
    scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> ExperimentResult:
    """Regenerate the three panels of Fig. 1 as labelled series."""
    scale = resolve_scale(scale, seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters=scale.as_dict(),
        notes=(
            "Panel (a): 'P(k) m=...' series should be power laws; "
            "panel (b): '... kc=...' series accumulate probability at k=kc; "
            "panel (c): 'gamma vs kc m=...' series increase with kc."
        ),
    )

    stubs_values = [1, 2, 3] if scale.name != "smoke" else [1, 2]

    # Panel (a): no cutoff.
    for stubs in stubs_values:
        result.add(
            degree_distribution_series(
                "pa",
                label=f"P(k) {format_label(m=stubs, kc=None)}",
                scale=scale,
                stubs=stubs,
                hard_cutoff=None,
            )
        )

    # Panel (b): hard cutoffs.
    cutoff_values = [10, 40, 100] if scale.name != "smoke" else [10, 40]
    for stubs in stubs_values:
        for cutoff in cutoff_values:
            result.add(
                degree_distribution_series(
                    "pa",
                    label=f"P(k) {format_label(m=stubs, kc=cutoff)}",
                    scale=scale,
                    stubs=stubs,
                    hard_cutoff=cutoff,
                )
            )

    # Panel (c): fitted exponent vs cutoff.
    sweep_cutoffs = [10, 20, 30, 40, 50] if scale.name != "smoke" else [10, 30, 50]
    for stubs in stubs_values:
        result.add(
            exponent_vs_cutoff_series(
                "pa",
                label=f"gamma vs kc m={stubs}",
                scale=scale,
                stubs=stubs,
                cutoffs=sweep_cutoffs,
            )
        )
    return result
