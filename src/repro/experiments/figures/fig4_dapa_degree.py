"""Fig. 4 — degree distributions of the DAPA model.

Panels (a–f): P(k) for m = 1 and m = 3, cutoffs {none, 40, 10}, as the
locality horizon τ_sub grows from 2 to 50.  Small τ_sub produces an
exponential (short-sighted peers see few candidates); large τ_sub recovers a
power law.  Panel (g): fitted exponent versus the hard cutoff.

Expected qualitative agreement: for fixed cutoff, the large-τ_sub series has
a heavier tail (larger maximum degree, slower decay) than the τ_sub = 2
series; with a small cutoff the series become nearly indistinguishable; the
exponent-vs-cutoff series mirrors the PA behaviour (γ grows with kc... the
paper words it as "as the cutoff decreases the exponent increases" for DAPA,
i.e. opposite sign to PA — the data is noisy, so only the magnitude range is
checked).
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, scenario_runner

_STUBS = {"default": [1, 3], "smoke": [1]}

SCENARIO = ScenarioSpec.from_dict({
    "id": "fig4",
    "title": "DAPA degree distributions vs locality horizon (paper Fig. 4)",
    "notes": (
        "For a fixed cutoff the tau_sub=2 series should decay faster "
        "(exponential) than the largest-tau_sub series (power-law-like); "
        "with kc=10 the series nearly coincide."
    ),
    "topology": {"model": "dapa"},
    "panels": [
        {   # Panels (a-f): P(k) across the tau_sub sweep.
            "sweep": {"axes": {
                "stubs": _STUBS,
                "hard_cutoff": {"default": [10, 50, None], "smoke": [10, None]},
                "tau_sub": {"default": [2, 4, 10], "smoke": [2, 4],
                            "paper": [2, 4, 6, 8, 10, 20, 50]},
            }},
            "label": "P(k) m={m}, {kc}, tau_sub={tau_sub}",
            "measurement": {"kind": "degree-distribution"},
        },
        {   # Panel (g): exponent vs cutoff at a generous horizon.
            "topology": {"tau_sub": {"default": 10, "smoke": 4, "paper": 50}},
            "sweep": {"axes": {"stubs": _STUBS}},
            "label": "gamma vs kc m={m}",
            "measurement": {
                "kind": "exponent-vs-cutoff",
                "params": {"cutoffs": {
                    "default": [10, 20, 30, 40, 50], "smoke": [10, 40],
                }},
            },
        },
    ],
})

EXPERIMENT_ID = SCENARIO.scenario_id
TITLE = SCENARIO.title

run = scenario_runner(SCENARIO)
