"""Fig. 4 — degree distributions of the DAPA model.

Panels (a–f): P(k) for m = 1 and m = 3, cutoffs {none, 40, 10}, as the
locality horizon τ_sub grows from 2 to 50.  Small τ_sub produces an
exponential (short-sighted peers see few candidates); large τ_sub recovers a
power law.  Panel (g): fitted exponent versus the hard cutoff.

Expected qualitative agreement: for fixed cutoff, the large-τ_sub series has
a heavier tail (larger maximum degree, slower decay) than the τ_sub = 2
series; with a small cutoff the series become nearly indistinguishable; the
exponent-vs-cutoff series mirrors the PA behaviour (γ grows with kc... the
paper words it as "as the cutoff decreases the exponent increases" for DAPA,
i.e. opposite sign to PA — the data is noisy, so only the magnitude range is
checked).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.figures._common import (
    dapa_cutoff_grid,
    dapa_tau_sub_grid,
    degree_distribution_series,
    exponent_vs_cutoff_series,
    resolve_scale,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import ExperimentScale
from repro.experiments.sweeps import format_label

EXPERIMENT_ID = "fig4"
TITLE = "DAPA degree distributions vs locality horizon (paper Fig. 4)"


def run(
    scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> ExperimentResult:
    """Regenerate the panels of Fig. 4 as labelled series."""
    scale = resolve_scale(scale, seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters=scale.as_dict(),
        notes=(
            "For a fixed cutoff the tau_sub=2 series should decay faster "
            "(exponential) than the largest-tau_sub series (power-law-like); "
            "with kc=10 the series nearly coincide."
        ),
    )

    stubs_values = [1, 3] if scale.name != "smoke" else [1]
    cutoffs = dapa_cutoff_grid(scale)
    tau_subs = dapa_tau_sub_grid(scale)

    for stubs in stubs_values:
        for cutoff in cutoffs:
            for tau_sub in tau_subs:
                result.add(
                    degree_distribution_series(
                        "dapa",
                        label=(
                            f"P(k) {format_label(m=stubs, kc=cutoff)}, "
                            f"tau_sub={tau_sub}"
                        ),
                        scale=scale,
                        stubs=stubs,
                        hard_cutoff=cutoff,
                        tau_sub=tau_sub,
                    )
                )

    # Panel (g): exponent vs cutoff at a generous horizon.
    sweep_cutoffs = [10, 20, 30, 40, 50] if scale.name != "smoke" else [10, 40]
    generous_tau = max(tau_subs)
    for stubs in stubs_values:
        result.add(
            exponent_vs_cutoff_series(
                "dapa",
                label=f"gamma vs kc m={stubs}",
                scale=scale,
                stubs=stubs,
                cutoffs=sweep_cutoffs,
                tau_sub=generous_tau,
            )
        )
    return result
