"""Table I — diameter scaling classes of scale-free networks.

The paper summarises the known diameter behaviour:

===============  ==========  =========
Diameter d       Exponent γ  Stubs m
===============  ==========  =========
ln ln N          (2, 3)      ≥ 1
ln N / ln ln N   3           ≥ 2
ln N             3           1
ln N             > 3         ≥ 1
===============  ==========  =========

The ``path-length-scaling`` measurement kind grows CM topologies with
γ ∈ {2.5, 3.5} and PA topologies (γ = 3) with m ∈ {1, 2} across a range of
network sizes and reports the measured average shortest-path length next to
the predicted functional form — the reproduction checks the *ordering*
(ultra-small < small-world < tree) rather than asymptotic constants, which
a 10³–10⁴-node network cannot resolve.
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, scenario_runner

SCENARIO = ScenarioSpec.from_dict({
    "id": "table1",
    "title": "Diameter scaling of scale-free topologies (paper Table I)",
    "notes": (
        "At equal N the ordering should be: gamma in (2,3) (ultra-small) "
        "<= gamma=3, m>=2 < gamma=3, m=1 (tree) and gamma>3; every series "
        "should grow slower than linearly in N (logarithmically or "
        "double-logarithmically)."
    ),
    "topology": {"model": "pa"},
    "label": "avg path length vs N",
    "measurement": {
        "kind": "path-length-scaling",
        "params": {
            # (series label, model, exponent, stubs) per table row.
            "rows": [
                ["cm gamma=2.5 m=2", "cm", 2.5, 2],
                ["pa gamma=3 m=2", "pa", 3.0, 2],
                ["pa gamma=3 m=1 (tree)", "pa", 3.0, 1],
                ["cm gamma=3.5 m=2", "cm", 3.5, 2],
            ],
            "sizes": {"default": [500, 1000, 2000, 4000], "smoke": [200, 400],
                      "paper": [1000, 3000, 10000, 30000, 100000]},
        },
    },
})

EXPERIMENT_ID = SCENARIO.scenario_id
TITLE = SCENARIO.title

run = scenario_runner(SCENARIO)
