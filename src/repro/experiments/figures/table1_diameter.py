"""Table I — diameter scaling classes of scale-free networks.

The paper summarises the known diameter behaviour:

===============  ==========  =========
Diameter d       Exponent γ  Stubs m
===============  ==========  =========
ln ln N          (2, 3)      ≥ 1
ln N / ln ln N   3           ≥ 2
ln N             3           1
ln N             > 3         ≥ 1
===============  ==========  =========

This experiment measures the average shortest-path length of CM topologies
with γ ∈ {2.5, 3.0, 3.5} and PA topologies (γ = 3) with m ∈ {1, 2}, across a
range of network sizes, and reports the measured path length next to the
predicted functional form — the reproduction checks the *ordering*
(ultra-small < small-world < tree) rather than asymptotic constants, which a
10³–10⁴-node network cannot resolve.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.analysis.paths import expected_diameter_class, path_length_statistics
from repro.experiments.figures._common import resolve_scale
from repro.experiments.results import ExperimentResult, Series
from repro.experiments.runner import ExperimentScale, realization_seeds
from repro.generators.cm import generate_cm
from repro.generators.pa import generate_pa

EXPERIMENT_ID = "table1"
TITLE = "Diameter scaling of scale-free topologies (paper Table I)"


def _sizes(scale: ExperimentScale) -> List[int]:
    if scale.name == "smoke":
        return [200, 400]
    if scale.name == "paper":
        return [1000, 3000, 10_000, 30_000, 100_000]
    return [500, 1000, 2000, 4000]


def _average_path(model: str, size: int, scale: ExperimentScale, seed: int,
                  exponent: float, stubs: int) -> float:
    sample = min(size, 200)
    if model == "pa":
        graph = generate_pa(size, stubs=stubs, seed=seed)
    else:
        graph = generate_cm(
            size, exponent=exponent, min_degree=stubs, hard_cutoff=None, seed=seed
        )
    return path_length_statistics(graph, sample_size=sample, rng=seed + 1).average


def run(
    scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> ExperimentResult:
    """Measure average path length vs N for the table's (γ, m) classes."""
    scale = resolve_scale(scale, seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters=scale.as_dict(),
        notes=(
            "At equal N the ordering should be: gamma in (2,3) (ultra-small) "
            "<= gamma=3, m>=2 < gamma=3, m=1 (tree) and gamma>3; every series "
            "should grow slower than linearly in N (logarithmically or "
            "double-logarithmically)."
        ),
    )

    rows = [
        # (label, model, exponent, stubs, expected class)
        ("cm gamma=2.5 m=2", "cm", 2.5, 2, expected_diameter_class(2.5, 2)),
        ("pa gamma=3 m=2", "pa", 3.0, 2, expected_diameter_class(3.0, 2)),
        ("pa gamma=3 m=1 (tree)", "pa", 3.0, 1, expected_diameter_class(3.0, 1)),
        ("cm gamma=3.5 m=2", "cm", 3.5, 2, expected_diameter_class(3.5, 2)),
    ]
    sizes = _sizes(scale)

    for label, model, exponent, stubs, diameter_class in rows:
        averages: List[float] = []
        for size in sizes:
            per_realization = []
            for realization_seed in realization_seeds(scale, f"{label}:{size}"):
                per_realization.append(
                    _average_path(model, size, scale, realization_seed, exponent, stubs)
                )
            averages.append(sum(per_realization) / len(per_realization))
        result.add(
            Series(
                label=label,
                x=list(sizes),
                y=averages,
                metadata={
                    "model": model,
                    "exponent": exponent,
                    "stubs": stubs,
                    "expected_class": diameter_class,
                    "ln_n": [math.log(size) for size in sizes],
                    "lnln_n": [math.log(math.log(size)) for size in sizes],
                },
            )
        )
    return result
