"""Table II — usage of global topology information by each construction model.

==========  ===========================
Procedure   Usage of global information
==========  ===========================
PA          yes
CM          yes
HAPA        partial
DAPA        no
==========  ===========================

The ``global-information`` measurement kind asserts the claim structurally
(the generator classes declare their information requirements) and backs it
with a small behavioural check: the amount of non-local state each join
step consumes, derived from the algorithms themselves (PA and CM need the
degrees of all N nodes, HAPA needs only the running total degree, DAPA
needs nothing outside the joining node's horizon).
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, scenario_runner

SCENARIO = ScenarioSpec.from_dict({
    "id": "table2",
    "title": "Global-information requirements of PA, CM, HAPA, DAPA (paper Table II)",
    "notes": (
        "Scores: 2 = needs per-node global information, 1 = needs an "
        "aggregate global quantity, 0 = purely local.  Expected: "
        "pa=2, cm=2, hapa=1, dapa=0."
    ),
    "topology": {"model": "pa"},
    "label": "global information usage",
    "measurement": {
        "kind": "global-information",
        # Only the paper's four mechanisms belong to Table II; extension
        # models registered alongside them (e.g. nonlinear PA) are not part
        # of the table.
        "params": {"expected": {"pa": "yes", "cm": "yes",
                                "hapa": "partial", "dapa": "no"}},
    },
})

EXPERIMENT_ID = SCENARIO.scenario_id
TITLE = SCENARIO.title

run = scenario_runner(SCENARIO)
