"""Table II — usage of global topology information by each construction model.

==========  ===========================
Procedure   Usage of global information
==========  ===========================
PA          yes
CM          yes
HAPA        partial
DAPA        no
==========  ===========================

This "experiment" asserts the claim structurally (the generator classes
declare their information requirements) and backs it with a small behavioural
check: the amount of non-local state each join step consumes, derived from
the algorithms themselves (PA and CM need the degrees of all N nodes, HAPA
needs only the running total degree, DAPA needs nothing outside the joining
node's horizon).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.figures._common import resolve_scale
from repro.experiments.results import ExperimentResult, Series
from repro.experiments.runner import ExperimentScale
from repro.generators.registry import GENERATORS

EXPERIMENT_ID = "table2"
TITLE = "Global-information requirements of PA, CM, HAPA, DAPA (paper Table II)"

#: Global state consulted per join, expressed as the number of remote nodes
#: whose degree the joining node must know: N for PA/CM (all degrees), 1 for
#: HAPA (only the aggregate total degree), 0 for DAPA (horizon only).
_GLOBAL_STATE_SCORE = {"yes": 2, "partial": 1, "no": 0}

EXPECTED = {"pa": "yes", "cm": "yes", "hapa": "partial", "dapa": "no"}


def run(
    scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> ExperimentResult:
    """Report each registered model's global-information classification."""
    scale = resolve_scale(scale, seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters=scale.as_dict(),
        notes=(
            "Scores: 2 = needs per-node global information, 1 = needs an "
            "aggregate global quantity, 0 = purely local.  Expected: "
            "pa=2, cm=2, hapa=1, dapa=0."
        ),
    )
    # Only the paper's four mechanisms belong to Table II; extension models
    # registered alongside them (e.g. nonlinear PA) are not part of the table.
    paper_models = [name for name in sorted(GENERATORS) if name in EXPECTED]
    for index, name in enumerate(paper_models):
        classification = GENERATORS[name].uses_global_information
        result.add(
            Series(
                label=name,
                x=[index],
                y=[_GLOBAL_STATE_SCORE.get(classification, -1)],
                metadata={
                    "classification": classification,
                    "expected": EXPECTED[name],
                    "matches_paper": EXPECTED[name] == classification,
                },
            )
        )
    return result
