"""Messaging complexity of NF and RW (paper §V-B-2).

The paper describes — without plotting, "due to space constraints" — the
average number of messages incurred per search request:

* NF consistently sends fewer messages than the equal-τ RW comparison at the
  same hit level... more precisely the paper states NF "performs better than
  RW consistently" in messaging terms, with the gap shrinking at m = 1 and
  growing for m > 1;
* the messaging cost of imposing a hard cutoff is "very minimal and
  negligible".

This experiment measures messages-per-query versus τ for NF and for RW (RW
at its own τ hops, i.e. un-normalized, so the two are comparable as raw
protocols) on PA topologies with and without cutoffs, plus the hit-per-
message efficiency that substantiates the "NF better than RW" claim.
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, scenario_runner

SCENARIO = ScenarioSpec.from_dict({
    "id": "messaging",
    "title": "Messaging complexity of NF vs RW with and without cutoffs (paper §V-B-2)",
    "notes": (
        "Per-tau message counts of the kc series should stay within a "
        "small factor of the no-cutoff series (cutoff cost negligible); "
        "NF hits-per-message should be at least as good as RW's."
    ),
    "topology": {"model": "pa"},
    "sweep": {"axes": {
        "stubs": {"default": [1, 2, 3], "smoke": [1, 2]},
        "hard_cutoff": {"default": [10, 50, None], "smoke": [10, None]},
    }},
    # Hits per TTL for both algorithms ride along with the message counts so
    # the analysis can compute hits-per-message (the NF vs RW comparison).
    "series": [
        {
            "label": "nf messages m={m}, {kc}",
            "measurement": {"kind": "messaging", "algorithm": "nf"},
        },
        {
            "label": "nf hits m={m}, {kc}",
            "measurement": {"kind": "search-curve", "algorithm": "nf"},
        },
        {
            "label": "rw hits m={m}, {kc}",
            "measurement": {"kind": "search-curve", "algorithm": "rw"},
        },
    ],
})

EXPERIMENT_ID = SCENARIO.scenario_id
TITLE = SCENARIO.title

run = scenario_runner(SCENARIO)
