"""Messaging complexity of NF and RW (paper §V-B-2).

The paper describes — without plotting, "due to space constraints" — the
average number of messages incurred per search request:

* NF consistently sends fewer messages than the equal-τ RW comparison at the
  same hit level... more precisely the paper states NF "performs better than
  RW consistently" in messaging terms, with the gap shrinking at m = 1 and
  growing for m > 1;
* the messaging cost of imposing a hard cutoff is "very minimal and
  negligible".

This experiment measures messages-per-query versus τ for NF and for RW (RW
at its own τ hops, i.e. un-normalized, so the two are comparable as raw
protocols) on PA topologies with and without cutoffs, plus the hit-per-
message efficiency that substantiates the "NF better than RW" claim.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.figures._common import (
    messaging_series,
    normalized_flooding_series,
    random_walk_series,
    resolve_scale,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import ExperimentScale
from repro.experiments.sweeps import format_label

EXPERIMENT_ID = "messaging"
TITLE = "Messaging complexity of NF vs RW with and without cutoffs (paper §V-B-2)"


def run(
    scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> ExperimentResult:
    """Measure messages per query and hits per message for NF and RW."""
    scale = resolve_scale(scale, seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters=scale.as_dict(),
        notes=(
            "Per-tau message counts of the kc series should stay within a "
            "small factor of the no-cutoff series (cutoff cost negligible); "
            "NF hits-per-message should be at least as good as RW's."
        ),
    )

    stubs_values = [1, 2] if scale.name == "smoke" else [1, 2, 3]
    cutoffs = [10, None] if scale.name == "smoke" else [10, 50, None]

    for stubs in stubs_values:
        for cutoff in cutoffs:
            label_suffix = format_label(m=stubs, kc=cutoff)
            result.add(
                messaging_series(
                    "pa",
                    label=f"nf messages {label_suffix}",
                    scale=scale,
                    algorithm="nf",
                    stubs=stubs,
                    hard_cutoff=cutoff,
                )
            )
            # Hits per TTL for both algorithms let the analysis compute
            # hits-per-message (NF vs RW comparison).
            result.add(
                normalized_flooding_series(
                    "pa",
                    label=f"nf hits {label_suffix}",
                    scale=scale,
                    stubs=stubs,
                    hard_cutoff=cutoff,
                )
            )
            result.add(
                random_walk_series(
                    "pa",
                    label=f"rw hits {label_suffix}",
                    scale=scale,
                    stubs=stubs,
                    hard_cutoff=cutoff,
                )
            )
    return result
