"""Fig. 11 — random-walk search on PA, CM, and HAPA topologies.

Number of hits versus τ, where the random walk is granted as many hops as an
NF query with the same τ would send messages (the paper's normalization), on
the three global-information construction models.

Expected qualitative agreement: the same ordering as Fig. 9 — on PA and HAPA
smaller cutoffs improve the hit count, on CM they do not — with the cutoff
effect somewhat more pronounced for RW than for NF.
"""

from __future__ import annotations

from repro.experiments.figures.fig9_nf_global import global_models_panels
from repro.scenarios import ScenarioSpec, scenario_runner

SCENARIO = ScenarioSpec.from_dict({
    "id": "fig11",
    "title": "Random-walk search on PA, CM, HAPA topologies (paper Fig. 11)",
    "notes": (
        "RW hits are measured at equal NF message budget; on PA and HAPA "
        "the small-kc series should finish at or above the no-cutoff "
        "series."
    ),
    "panels": global_models_panels("rw"),
})

EXPERIMENT_ID = SCENARIO.scenario_id
TITLE = SCENARIO.title

run = scenario_runner(SCENARIO)
