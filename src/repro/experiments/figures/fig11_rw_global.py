"""Fig. 11 — random-walk search on PA, CM, and HAPA topologies.

Number of hits versus τ, where the random walk is granted as many hops as an
NF query with the same τ would send messages (the paper's normalization), on
the three global-information construction models.

Expected qualitative agreement: the same ordering as Fig. 9 — on PA and HAPA
smaller cutoffs improve the hit count, on CM they do not — with the cutoff
effect somewhat more pronounced for RW than for NF.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.figures._common import random_walk_series, resolve_scale
from repro.experiments.figures.fig9_nf_global import cutoffs_for_model
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import ExperimentScale
from repro.experiments.sweeps import format_label

EXPERIMENT_ID = "fig11"
TITLE = "Random-walk search on PA, CM, HAPA topologies (paper Fig. 11)"


def run(
    scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> ExperimentResult:
    """Regenerate the six panels of Fig. 11 as labelled hit-vs-τ series."""
    scale = resolve_scale(scale, seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters=scale.as_dict(),
        notes=(
            "RW hits are measured at equal NF message budget; on PA and HAPA "
            "the small-kc series should finish at or above the no-cutoff "
            "series."
        ),
    )

    stubs_values = [1, 2, 3] if scale.name != "smoke" else [1, 2]
    models = ("pa", "cm", "hapa")

    for model in models:
        for stubs in stubs_values:
            for cutoff in cutoffs_for_model(scale, model):
                result.add(
                    random_walk_series(
                        model,
                        label=f"{model} {format_label(m=stubs, kc=cutoff)}",
                        scale=scale,
                        stubs=stubs,
                        hard_cutoff=cutoff,
                        exponent=2.2 if model == "cm" else 3.0,
                    )
                )
    return result
