"""Fig. 10 — normalized-flooding search on DAPA topologies.

Number of hits versus TTL for m ∈ {1, 2, 3}, cutoffs {none, 50, 10}, and a
sweep of locality horizons τ_sub.

Expected qualitative agreement: as the hard cutoff shrinks the NF efficiency
improves regardless of m; better connectedness (m = 3) improves the hit
count greatly; and larger τ_sub matters more when m is larger ("more global
information is more important when target connectedness is high").
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.figures._common import (
    dapa_cutoff_grid,
    dapa_tau_sub_grid,
    normalized_flooding_series,
    resolve_scale,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import ExperimentScale
from repro.experiments.sweeps import format_label

EXPERIMENT_ID = "fig10"
TITLE = "Normalized flooding on DAPA topologies (paper Fig. 10)"


def run(
    scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> ExperimentResult:
    """Regenerate the nine panels of Fig. 10 as labelled hit-vs-τ series."""
    scale = resolve_scale(scale, seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters=scale.as_dict(),
        notes=(
            "Hits should improve as kc shrinks for every m; m=3 series sit "
            "far above m=1 series; the spread across tau_sub widens with m."
        ),
    )

    stubs_values = [1, 2, 3] if scale.name != "smoke" else [1]
    cutoffs = dapa_cutoff_grid(scale)
    tau_subs = dapa_tau_sub_grid(scale)

    for stubs in stubs_values:
        for cutoff in cutoffs:
            for tau_sub in tau_subs:
                result.add(
                    normalized_flooding_series(
                        "dapa",
                        label=(
                            f"{format_label(m=stubs, kc=cutoff)}, tau_sub={tau_sub}"
                        ),
                        scale=scale,
                        stubs=stubs,
                        hard_cutoff=cutoff,
                        tau_sub=tau_sub,
                    )
                )
    return result
