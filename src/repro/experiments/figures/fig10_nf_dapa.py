"""Fig. 10 — normalized-flooding search on DAPA topologies.

Number of hits versus TTL for m ∈ {1, 2, 3}, cutoffs {none, 50, 10}, and a
sweep of locality horizons τ_sub.

Expected qualitative agreement: as the hard cutoff shrinks the NF efficiency
improves regardless of m; better connectedness (m = 3) improves the hit
count greatly; and larger τ_sub matters more when m is larger ("more global
information is more important when target connectedness is high").
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, scenario_runner

SCENARIO = ScenarioSpec.from_dict({
    "id": "fig10",
    "title": "Normalized flooding on DAPA topologies (paper Fig. 10)",
    "notes": (
        "Hits should improve as kc shrinks for every m; m=3 series sit "
        "far above m=1 series; the spread across tau_sub widens with m."
    ),
    "topology": {"model": "dapa"},
    "sweep": {"axes": {
        "stubs": {"default": [1, 2, 3], "smoke": [1]},
        "hard_cutoff": {"default": [10, 50, None], "smoke": [10, None]},
        "tau_sub": {"default": [2, 4, 10], "smoke": [2, 4],
                    "paper": [2, 4, 6, 8, 10, 20, 50]},
    }},
    "label": "m={m}, {kc}, tau_sub={tau_sub}",
    "measurement": {"kind": "search-curve", "algorithm": "nf"},
})

EXPERIMENT_ID = SCENARIO.scenario_id
TITLE = SCENARIO.title

run = scenario_runner(SCENARIO)
