"""Fig. 8 — flooding search efficiency on DAPA topologies.

Number of hits versus TTL for m ∈ {1, 2, 3}, cutoffs {10, 50, none}, and a
sweep of locality horizons τ_sub.

Expected qualitative agreement: larger τ_sub yields better flooding
efficiency (closer to PA); for weak connectedness (m = 1) imposing a hard
cutoff *improves* flooding (the connectedness/exponent interplay), while for
larger m the effect of the cutoff diminishes.
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, scenario_runner

SCENARIO = ScenarioSpec.from_dict({
    "id": "fig8",
    "title": "Flooding search on DAPA topologies (paper Fig. 8)",
    "notes": (
        "Larger tau_sub should reach more peers at the same TTL; for m=1 "
        "the kc=10 series should beat the no-cutoff series (connectedness "
        "interplay)."
    ),
    "topology": {"model": "dapa"},
    "sweep": {"axes": {
        "stubs": {"default": [1, 2, 3], "smoke": [1]},
        "hard_cutoff": {"default": [10, 50, None], "smoke": [10, None]},
        "tau_sub": {"default": [2, 4, 10], "smoke": [2, 4],
                    "paper": [2, 4, 6, 8, 10, 20, 50]},
    }},
    "label": "m={m}, {kc}, tau_sub={tau_sub}",
    "measurement": {"kind": "search-curve", "algorithm": "fl"},
})

EXPERIMENT_ID = SCENARIO.scenario_id
TITLE = SCENARIO.title

run = scenario_runner(SCENARIO)
