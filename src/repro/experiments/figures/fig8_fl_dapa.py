"""Fig. 8 — flooding search efficiency on DAPA topologies.

Number of hits versus TTL for m ∈ {1, 2, 3}, cutoffs {10, 50, none}, and a
sweep of locality horizons τ_sub.

Expected qualitative agreement: larger τ_sub yields better flooding
efficiency (closer to PA); for weak connectedness (m = 1) imposing a hard
cutoff *improves* flooding (the connectedness/exponent interplay), while for
larger m the effect of the cutoff diminishes.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.figures._common import (
    dapa_cutoff_grid,
    dapa_tau_sub_grid,
    flooding_series,
    resolve_scale,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import ExperimentScale
from repro.experiments.sweeps import format_label

EXPERIMENT_ID = "fig8"
TITLE = "Flooding search on DAPA topologies (paper Fig. 8)"


def run(
    scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> ExperimentResult:
    """Regenerate the three panels of Fig. 8 as labelled hit-vs-τ series."""
    scale = resolve_scale(scale, seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters=scale.as_dict(),
        notes=(
            "Larger tau_sub should reach more peers at the same TTL; for m=1 "
            "the kc=10 series should beat the no-cutoff series (connectedness "
            "interplay)."
        ),
    )

    stubs_values = [1, 2, 3] if scale.name != "smoke" else [1]
    cutoffs = dapa_cutoff_grid(scale)
    tau_subs = dapa_tau_sub_grid(scale)

    for stubs in stubs_values:
        for cutoff in cutoffs:
            for tau_sub in tau_subs:
                result.add(
                    flooding_series(
                        "dapa",
                        label=(
                            f"{format_label(m=stubs, kc=cutoff)}, tau_sub={tau_sub}"
                        ),
                        scale=scale,
                        stubs=stubs,
                        hard_cutoff=cutoff,
                        tau_sub=tau_sub,
                    )
                )
    return result
