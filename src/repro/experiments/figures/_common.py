"""Compatibility shims over the scenario layer (:mod:`repro.scenarios`).

This module used to own the figure harness's plumbing: topology builders,
parameter grids, and seven near-identical ``*_series`` helpers that each
figure module re-encoded its grid through.  That machinery now lives in the
declarative scenario layer — :mod:`repro.scenarios.measure` holds the
primitives and :mod:`repro.scenarios.compile` the compiler — and the figure
modules are :class:`~repro.scenarios.ScenarioSpec` instances.

Everything importable from here keeps working (same names, same signatures,
same numbers, no deprecation noise for this release); the series helpers
are now thin shims that build a single compiled
:class:`~repro.scenarios.compile.SeriesPlan` and hand it to the scenario
compiler's :func:`~repro.scenarios.compile.run_series_plan`.  New code
should author a :class:`~repro.scenarios.ScenarioSpec` (or call
:mod:`repro.scenarios.measure` directly) instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.results import Series
from repro.experiments.runner import ExperimentScale
from repro.scenarios.compile import SeriesPlan, run_series_plan
from repro.scenarios.measure import (  # noqa: F401  (compatibility re-exports)
    HAPA_NONPAPER_NODE_CAP,
    RealizationSpec,
    build_graph,
    cutoff_grid,
    dapa_cutoff_grid,
    dapa_tau_sub_grid,
    resolve_scale,
)

__all__ = [
    "resolve_scale",
    "build_graph",
    "degree_distribution_series",
    "exponent_vs_cutoff_series",
    "flooding_series",
    "normalized_flooding_series",
    "random_walk_series",
    "messaging_series",
    "cutoff_grid",
    "dapa_tau_sub_grid",
    "dapa_cutoff_grid",
]


def _single_series(
    label: str,
    kind: str,
    scale: ExperimentScale,
    model: str,
    stubs: int,
    hard_cutoff: Optional[int],
    exponent: float,
    tau_sub: int,
    algorithm: Optional[str] = None,
    params: Optional[Dict[str, object]] = None,
) -> Series:
    """Run one pre-labelled series plan through the scenario compiler."""
    plan = SeriesPlan(
        label=label,
        kind=kind,
        algorithm=algorithm,
        ttl=None,
        topology={
            "model": model,
            "stubs": stubs,
            "hard_cutoff": hard_cutoff,
            "exponent": exponent,
            "tau_sub": tau_sub,
        },
        params=dict(params or {}),
    )
    (series,) = run_series_plan(plan, scale)
    return series


def degree_distribution_series(
    model: str,
    label: str,
    scale: ExperimentScale,
    stubs: int = 1,
    hard_cutoff: Optional[int] = None,
    exponent: float = 3.0,
    tau_sub: int = 4,
) -> Series:
    """P(k) for one parameter combination, pooled over all realizations."""
    return _single_series(
        label, "degree-distribution", scale, model, stubs, hard_cutoff, exponent, tau_sub
    )


def exponent_vs_cutoff_series(
    model: str,
    label: str,
    scale: ExperimentScale,
    stubs: int,
    cutoffs: Sequence[int],
    tau_sub: int = 10,
) -> Series:
    """Fitted γ as a function of the hard cutoff (Figs. 1c and 4g)."""
    return _single_series(
        label, "exponent-vs-cutoff", scale, model, stubs, None, 3.0, tau_sub,
        params={"cutoffs": list(cutoffs)},
    )


def flooding_series(
    model: str,
    label: str,
    scale: ExperimentScale,
    stubs: int = 1,
    hard_cutoff: Optional[int] = None,
    exponent: float = 3.0,
    tau_sub: int = 4,
) -> Series:
    """FL hits-vs-τ curve for one parameter combination."""
    return _single_series(
        label, "search-curve", scale, model, stubs, hard_cutoff, exponent, tau_sub,
        algorithm="fl",
    )


def normalized_flooding_series(
    model: str,
    label: str,
    scale: ExperimentScale,
    stubs: int = 1,
    hard_cutoff: Optional[int] = None,
    exponent: float = 3.0,
    tau_sub: int = 4,
) -> Series:
    """NF hits-vs-τ curve for one parameter combination."""
    return _single_series(
        label, "search-curve", scale, model, stubs, hard_cutoff, exponent, tau_sub,
        algorithm="nf",
    )


def random_walk_series(
    model: str,
    label: str,
    scale: ExperimentScale,
    stubs: int = 1,
    hard_cutoff: Optional[int] = None,
    exponent: float = 3.0,
    tau_sub: int = 4,
) -> Series:
    """NF-message-normalized RW hits-vs-τ curve for one parameter combination."""
    return _single_series(
        label, "search-curve", scale, model, stubs, hard_cutoff, exponent, tau_sub,
        algorithm="rw",
    )


def messaging_series(
    model: str,
    label: str,
    scale: ExperimentScale,
    algorithm: str,
    stubs: int = 2,
    hard_cutoff: Optional[int] = None,
    exponent: float = 3.0,
    tau_sub: int = 4,
) -> Series:
    """Messages-per-query vs τ for NF or RW (the §V-B-2 messaging study)."""
    return _single_series(
        label, "messaging", scale, model, stubs, hard_cutoff, exponent, tau_sub,
        algorithm=algorithm,
    )
