"""Fig. 12 — random-walk search on DAPA topologies.

Number of hits versus τ (NF-message-normalized) for m ∈ {1, 2, 3}, cutoffs
{none, 50, 10}, and a sweep of locality horizons τ_sub.

Expected qualitative agreement: as in Fig. 10, smaller hard cutoffs improve
the hit count for every connectedness level, and m = 3 gives order-of-
magnitude more hits than m = 1.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.figures._common import (
    dapa_cutoff_grid,
    dapa_tau_sub_grid,
    random_walk_series,
    resolve_scale,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import ExperimentScale
from repro.experiments.sweeps import format_label

EXPERIMENT_ID = "fig12"
TITLE = "Random-walk search on DAPA topologies (paper Fig. 12)"


def run(
    scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> ExperimentResult:
    """Regenerate the nine panels of Fig. 12 as labelled hit-vs-τ series."""
    scale = resolve_scale(scale, seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters=scale.as_dict(),
        notes=(
            "Hits should improve as kc shrinks for every m; m=3 series sit "
            "far above m=1 series."
        ),
    )

    stubs_values = [1, 2, 3] if scale.name != "smoke" else [1]
    cutoffs = dapa_cutoff_grid(scale)
    tau_subs = dapa_tau_sub_grid(scale)

    for stubs in stubs_values:
        for cutoff in cutoffs:
            for tau_sub in tau_subs:
                result.add(
                    random_walk_series(
                        "dapa",
                        label=(
                            f"{format_label(m=stubs, kc=cutoff)}, tau_sub={tau_sub}"
                        ),
                        scale=scale,
                        stubs=stubs,
                        hard_cutoff=cutoff,
                        tau_sub=tau_sub,
                    )
                )
    return result
