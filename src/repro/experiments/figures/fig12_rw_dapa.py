"""Fig. 12 — random-walk search on DAPA topologies.

Number of hits versus τ (NF-message-normalized) for m ∈ {1, 2, 3}, cutoffs
{none, 50, 10}, and a sweep of locality horizons τ_sub.

Expected qualitative agreement: as in Fig. 10, smaller hard cutoffs improve
the hit count for every connectedness level, and m = 3 gives order-of-
magnitude more hits than m = 1.
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, scenario_runner

SCENARIO = ScenarioSpec.from_dict({
    "id": "fig12",
    "title": "Random-walk search on DAPA topologies (paper Fig. 12)",
    "notes": (
        "Hits should improve as kc shrinks for every m; m=3 series sit "
        "far above m=1 series."
    ),
    "topology": {"model": "dapa"},
    "sweep": {"axes": {
        "stubs": {"default": [1, 2, 3], "smoke": [1]},
        "hard_cutoff": {"default": [10, 50, None], "smoke": [10, None]},
        "tau_sub": {"default": [2, 4, 10], "smoke": [2, 4],
                    "paper": [2, 4, 6, 8, 10, 20, 50]},
    }},
    "label": "m={m}, {kc}, tau_sub={tau_sub}",
    "measurement": {"kind": "search-curve", "algorithm": "rw"},
})

EXPERIMENT_ID = SCENARIO.scenario_id
TITLE = SCENARIO.title

run = scenario_runner(SCENARIO)
