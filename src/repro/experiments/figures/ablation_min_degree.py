"""Ablation — the "minimum of 2–3 links" join guideline.

The paper's practical guideline: "as long as every peer is required to
maintain a minimum of 2-3 links to the rest of the network rather than just
one link, it is possible to diminish negative effects of hard cutoffs on
search performance."

The ``cutoff-penalty`` measurement kind quantifies that claim directly: for
m = 1, 2, 3 on PA topologies it measures the *relative flooding penalty* of
a hard cutoff — ``hits(no cutoff) / hits(kc = 10)`` at a fixed TTL — which
should shrink towards 1 as m grows.
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, scenario_runner

SCENARIO = ScenarioSpec.from_dict({
    "id": "ablation_min_degree",
    "title": "Cutoff penalty on flooding vs minimum degree m (paper §V-B guideline)",
    "notes": (
        "The 'cutoff penalty ratio' series should decrease towards ~1 as "
        "m grows from 1 to 3: by m=3 the hard cutoff costs flooding "
        "almost nothing."
    ),
    "topology": {"model": "pa"},
    "label": "cutoff penalty ratio (no kc / kc=10)",
    "measurement": {
        "kind": "cutoff-penalty",
        "params": {
            "stubs_values": {"default": [1, 2, 3], "smoke": [1, 2]},
            "penalty_cutoff": 10,
            "reference_ttl_cap": 6,
        },
    },
})

EXPERIMENT_ID = SCENARIO.scenario_id
TITLE = SCENARIO.title

run = scenario_runner(SCENARIO)
