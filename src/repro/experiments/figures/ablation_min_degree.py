"""Ablation — the "minimum of 2–3 links" join guideline.

The paper's practical guideline: "as long as every peer is required to
maintain a minimum of 2-3 links to the rest of the network rather than just
one link, it is possible to diminish negative effects of hard cutoffs on
search performance."

This ablation quantifies that claim directly: for m = 1, 2, 3 on PA
topologies it measures the *relative flooding penalty* of a hard cutoff —
``hits(no cutoff) / hits(kc = 10)`` at a fixed TTL — which should shrink
towards 1 as m grows.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.figures._common import flooding_series, resolve_scale
from repro.experiments.results import ExperimentResult, Series
from repro.experiments.runner import ExperimentScale

EXPERIMENT_ID = "ablation_min_degree"
TITLE = "Cutoff penalty on flooding vs minimum degree m (paper §V-B guideline)"


def run(
    scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> ExperimentResult:
    """Measure the flooding-hit ratio no-cutoff / kc=10 as a function of m."""
    scale = resolve_scale(scale, seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters=scale.as_dict(),
        notes=(
            "The 'cutoff penalty ratio' series should decrease towards ~1 as "
            "m grows from 1 to 3: by m=3 the hard cutoff costs flooding "
            "almost nothing."
        ),
    )

    stubs_values = [1, 2, 3] if scale.name != "smoke" else [1, 2]
    reference_ttl = min(6, scale.flooding_max_ttl)

    penalties: List[float] = []
    for stubs in stubs_values:
        unbounded = flooding_series(
            "pa", label=f"m={stubs}, no kc", scale=scale, stubs=stubs, hard_cutoff=None
        )
        bounded = flooding_series(
            "pa", label=f"m={stubs}, kc=10", scale=scale, stubs=stubs, hard_cutoff=10
        )
        result.add(unbounded)
        result.add(bounded)
        hits_unbounded = unbounded.y_at(reference_ttl)
        hits_bounded = max(1.0, float(bounded.y_at(reference_ttl)))
        penalties.append(float(hits_unbounded) / hits_bounded)

    result.add(
        Series(
            label="cutoff penalty ratio (no kc / kc=10)",
            x=list(stubs_values),
            y=penalties,
            metadata={"reference_ttl": reference_ttl},
        )
    )
    return result
