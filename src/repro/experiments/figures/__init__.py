"""One module per paper figure / table.

Every module exposes three things:

* ``EXPERIMENT_ID`` — the id used by the registry and the CLI;
* ``TITLE`` — a one-line description of the paper artefact;
* ``run(scale=None, seed=None)`` — regenerate the artefact's data as an
  :class:`~repro.experiments.results.ExperimentResult`.

The modules are deliberately thin: they wire the generators, search
algorithms, and analysis routines together with the paper's parameter grids;
all heavy lifting lives in the library proper.
"""

from repro.experiments.figures import (  # noqa: F401  (re-exported for discovery)
    ablation_min_degree,
    ablation_robustness,
    fig1_pa_degree,
    fig2_cm_degree,
    fig3_hapa_degree,
    fig4_dapa_degree,
    fig6_fl_pa_hapa,
    fig7_fl_cm,
    fig8_fl_dapa,
    fig9_nf_global,
    fig10_nf_dapa,
    fig11_rw_global,
    fig12_rw_dapa,
    messaging,
    natural_cutoff,
    table1_diameter,
    table2_locality,
)

ALL_FIGURE_MODULES = [
    fig1_pa_degree,
    fig2_cm_degree,
    fig3_hapa_degree,
    fig4_dapa_degree,
    table1_diameter,
    table2_locality,
    fig6_fl_pa_hapa,
    fig7_fl_cm,
    fig8_fl_dapa,
    fig9_nf_global,
    fig10_nf_dapa,
    fig11_rw_global,
    fig12_rw_dapa,
    messaging,
    natural_cutoff,
    ablation_min_degree,
    ablation_robustness,
]

__all__ = ["ALL_FIGURE_MODULES"]
