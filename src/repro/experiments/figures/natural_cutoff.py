"""Natural-cutoff scaling (paper §III-A, Eqs. 2, 4, 5).

The natural cutoff of a finite scale-free network — the largest degree one
expects to observe — scales as ``k_nc ~ m N^{1/(γ-1)}`` (Dorogovtsev et al.),
which for the PA model (γ = 3) becomes ``m √N``.  The
``natural-cutoff-scaling`` measurement kind grows PA networks of increasing
size without any hard cutoff, records the maximum degree, and reports it
next to the two analytical estimates so the scaling exponent can be
compared.
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, scenario_runner

SCENARIO = ScenarioSpec.from_dict({
    "id": "natural_cutoff",
    "title": "Natural-cutoff scaling of PA networks (paper Eqs. 2, 4, 5)",
    "notes": (
        "The measured maximum degree should grow roughly like sqrt(N) "
        "(the Dorogovtsev estimate for gamma=3) and faster than the "
        "Aiello estimate N^(1/3)."
    ),
    "topology": {"model": "pa"},
    "label": "natural cutoff scaling",
    "measurement": {
        "kind": "natural-cutoff-scaling",
        "params": {
            "sizes": {"default": [500, 2000, 8000], "smoke": [200, 800],
                      "paper": [1000, 10000, 100000]},
            "stubs_values": {"default": [1, 2], "smoke": [1]},
        },
    },
})

EXPERIMENT_ID = SCENARIO.scenario_id
TITLE = SCENARIO.title

run = scenario_runner(SCENARIO)
