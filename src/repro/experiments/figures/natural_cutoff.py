"""Natural-cutoff scaling (paper §III-A, Eqs. 2, 4, 5).

The natural cutoff of a finite scale-free network — the largest degree one
expects to observe — scales as ``k_nc ~ m N^{1/(γ-1)}`` (Dorogovtsev et al.),
which for the PA model (γ = 3) becomes ``m √N``.  This experiment grows PA
networks of increasing size without any hard cutoff, records the maximum
degree, and reports it next to the two analytical estimates so the scaling
exponent can be compared.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.cutoff import (
    empirical_cutoff,
    natural_cutoff_aiello,
    natural_cutoff_dorogovtsev,
)
from repro.experiments.figures._common import resolve_scale
from repro.experiments.results import ExperimentResult, Series
from repro.experiments.runner import ExperimentScale, realization_seeds
from repro.generators.pa import generate_pa

EXPERIMENT_ID = "natural_cutoff"
TITLE = "Natural-cutoff scaling of PA networks (paper Eqs. 2, 4, 5)"


def _sizes(scale: ExperimentScale) -> List[int]:
    if scale.name == "smoke":
        return [200, 800]
    if scale.name == "paper":
        return [1000, 10_000, 100_000]
    return [500, 2000, 8000]


def run(
    scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> ExperimentResult:
    """Measure the empirical maximum degree of PA networks vs the estimates."""
    scale = resolve_scale(scale, seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters=scale.as_dict(),
        notes=(
            "The measured maximum degree should grow roughly like sqrt(N) "
            "(the Dorogovtsev estimate for gamma=3) and faster than the "
            "Aiello estimate N^(1/3)."
        ),
    )

    sizes = _sizes(scale)
    for stubs in ([1, 2] if scale.name != "smoke" else [1]):
        measured: List[float] = []
        for size in sizes:
            per_realization = []
            for realization_seed in realization_seeds(scale, f"m{stubs}-N{size}"):
                graph = generate_pa(size, stubs=stubs, hard_cutoff=None, seed=realization_seed)
                per_realization.append(empirical_cutoff(graph))
            measured.append(sum(per_realization) / len(per_realization))
        result.add(
            Series(
                label=f"measured kmax m={stubs}",
                x=list(sizes),
                y=measured,
                metadata={"stubs": stubs},
            )
        )
        result.add(
            Series(
                label=f"dorogovtsev m={stubs} (m*sqrt(N))",
                x=list(sizes),
                y=[natural_cutoff_dorogovtsev(size, 3.0, stubs) for size in sizes],
                metadata={"stubs": stubs, "analytical": True},
            )
        )
        result.add(
            Series(
                label=f"aiello m={stubs} (N^(1/3))",
                x=list(sizes),
                y=[natural_cutoff_aiello(size, 3.0) for size in sizes],
                metadata={"stubs": stubs, "analytical": True},
            )
        )
    return result
