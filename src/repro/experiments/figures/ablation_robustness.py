"""Ablation — hard cutoffs and the "robust yet fragile" property.

Section III motivates hard cutoffs partly by the attack fragility of hubs:
scale-free networks survive random failures but shatter when the hubs are
removed.  A hard cutoff removes the super hubs, so it should *narrow* the
gap between failure tolerance and attack tolerance.

This ablation removes up to 30 % of the nodes of PA topologies — uniformly at
random and highest-degree-first — with and without a hard cutoff, and
records the giant-component fraction curves.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.robustness import attack_robustness, failure_robustness
from repro.experiments.figures._common import resolve_scale
from repro.experiments.results import ExperimentResult, Series
from repro.experiments.runner import ExperimentScale, realization_seeds, average_curves
from repro.experiments.sweeps import format_label
from repro.generators.pa import generate_pa

EXPERIMENT_ID = "ablation_robustness"
TITLE = "Failure vs attack tolerance with and without hard cutoffs (paper §III)"


def run(
    scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
) -> ExperimentResult:
    """Measure giant-component decay under failures and attacks."""
    scale = resolve_scale(scale, seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        parameters=scale.as_dict(),
        notes=(
            "Without a cutoff the attack curve should collapse much faster "
            "than the failure curve; with kc=10 the two curves should be "
            "closer together (no super hubs to decapitate)."
        ),
    )

    nodes = min(scale.search_nodes, 1500)
    steps = 6
    max_removed = 0.3

    for cutoff in (None, 10):
        for strategy_name, runner in (
            ("failure", failure_robustness),
            ("attack", attack_robustness),
        ):
            curves = []
            x_values = None
            for realization_seed in realization_seeds(
                scale, f"{strategy_name}-{cutoff}"
            ):
                graph = generate_pa(
                    nodes, stubs=2, hard_cutoff=cutoff, seed=realization_seed
                )
                if strategy_name == "failure":
                    removal = runner(
                        graph,
                        max_removed_fraction=max_removed,
                        steps=steps,
                        rng=realization_seed + 13,
                    )
                else:
                    removal = runner(
                        graph, max_removed_fraction=max_removed, steps=steps
                    )
                curves.append(removal.giant_component_fractions)
                x_values = removal.removed_fractions
            result.add(
                Series(
                    label=f"{strategy_name}, {format_label(kc=cutoff)}",
                    x=[float(value) for value in (x_values or [])],
                    y=average_curves(curves),
                    metadata={
                        "strategy": strategy_name,
                        "hard_cutoff": cutoff,
                        "nodes": nodes,
                    },
                )
            )
    return result
