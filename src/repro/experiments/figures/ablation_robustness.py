"""Ablation — hard cutoffs and the "robust yet fragile" property.

Section III motivates hard cutoffs partly by the attack fragility of hubs:
scale-free networks survive random failures but shatter when the hubs are
removed.  A hard cutoff removes the super hubs, so it should *narrow* the
gap between failure tolerance and attack tolerance.

The ``robustness-sweep`` measurement kind removes up to 30 % of the nodes of
PA topologies — uniformly at random and highest-degree-first — with and
without a hard cutoff, and records the giant-component fraction curves.
"""

from __future__ import annotations

from repro.scenarios import ScenarioSpec, scenario_runner

SCENARIO = ScenarioSpec.from_dict({
    "id": "ablation_robustness",
    "title": "Failure vs attack tolerance with and without hard cutoffs (paper §III)",
    "notes": (
        "Without a cutoff the attack curve should collapse much faster "
        "than the failure curve; with kc=10 the two curves should be "
        "closer together (no super hubs to decapitate)."
    ),
    "topology": {"model": "pa"},
    "label": "giant component under removal",
    "measurement": {
        "kind": "robustness-sweep",
        "params": {
            "cutoffs": [None, 10],
            "steps": 6,
            "max_removed": 0.3,
            "node_cap": 1500,
            "stubs": 2,
        },
    },
})

EXPERIMENT_ID = SCENARIO.scenario_id
TITLE = SCENARIO.title

run = scenario_runner(SCENARIO)
