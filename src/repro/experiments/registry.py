"""Registry of reproducible experiments (figures, tables, ablations).

Every built-in experiment is a :class:`~repro.scenarios.ScenarioSpec`
declared in its figure module; this registry maps ids to their ``run``
callables and forwards engine options (executor / store / progress /
backend).  User-authored scenarios enter through the same machinery via
:func:`run_scenario` (re-exported here from :mod:`repro.scenarios`), which
is what the ``repro run`` CLI verb calls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.core.errors import ExperimentError
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import ExperimentScale

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.engine.executor import Executor
    from repro.engine.progress import ProgressReporter
    from repro.engine.store import ResultStore
    from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "available_experiments",
    "get_experiment",
    "run_experiment",
    "run_experiment_cached",
    "run_scenario",
    "run_scenario_cached",
    "experiment_titles",
]

ExperimentRunner = Callable[..., ExperimentResult]


def _load_modules():
    # Imported lazily to keep `import repro.experiments` cheap and to avoid
    # a circular import through figures/_common.
    from repro.experiments.figures import ALL_FIGURE_MODULES

    return ALL_FIGURE_MODULES


def _registry() -> Dict[str, object]:
    modules = _load_modules()
    registry: Dict[str, object] = {}
    for module in modules:
        registry[module.EXPERIMENT_ID] = module
    return registry


def available_experiments() -> List[str]:
    """Return the ids of every registered experiment, in paper order."""
    return list(_registry().keys())


def experiment_titles() -> Dict[str, str]:
    """Return a mapping of experiment id to its human-readable title."""
    return {exp_id: module.TITLE for exp_id, module in _registry().items()}


def get_experiment(experiment_id: str) -> ExperimentRunner:
    """Return the ``run`` callable of the experiment with the given id."""
    registry = _registry()
    if experiment_id not in registry:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(available_experiments())}"
        )
    return registry[experiment_id].run


def run_experiment(
    experiment_id: str,
    scale: Optional[ExperimentScale] = None,
    seed: Optional[int] = None,
    executor: "Optional[Executor]" = None,
    store: "Optional[ResultStore]" = None,
    progress: "Optional[ProgressReporter]" = None,
    backend: Optional[str] = None,
    kernels: Optional[str] = None,
) -> ExperimentResult:
    """Run one experiment by id and return its result.

    Parameters
    ----------
    experiment_id:
        Registered experiment id ("fig9", "table1", ...).
    scale, seed:
        Scale preset (default: ``small``) and optional base-seed override.
    executor:
        Optional :class:`~repro.engine.executor.Executor`; when given, the
        experiment's realization tasks are fanned out through it (results
        are numerically identical to a serial run).
    store:
        Optional :class:`~repro.engine.store.ResultStore`; a cached result
        for these exact inputs is returned without recomputing, and fresh
        results are persisted for future runs.
    progress:
        Optional :class:`~repro.engine.progress.ProgressReporter` receiving
        experiment/task timing events.
    backend:
        Optional graph backend (``"adj"`` or ``"csr"``) installed around
        the run via :func:`repro.core.backend.use_backend`.  Results are
        byte-identical across backends (so cached results are shared);
        ``"csr"`` freezes each topology once and searches the snapshot.
    kernels:
        Optional kernel mode (``"auto"``, ``"python"``, or ``"jit"``)
        installed around the run via
        :func:`repro.kernels.dispatch.use_kernels`.  Results are
        byte-identical across modes; ``"jit"`` runs the stochastic search
        loops as compiled kernels when numba is available.

    Examples
    --------
    >>> result = run_experiment("table2")
    >>> result.experiment_id
    'table2'
    """
    if (
        executor is None and store is None and progress is None
        and backend is None and kernels is None
    ):
        return get_experiment(experiment_id)(scale=scale, seed=seed)
    result, _ = run_experiment_cached(
        experiment_id,
        scale=scale,
        seed=seed,
        executor=executor,
        store=store,
        progress=progress,
        backend=backend,
        kernels=kernels,
    )
    return result


def run_experiment_cached(
    experiment_id: str,
    scale: Optional[ExperimentScale] = None,
    seed: Optional[int] = None,
    executor: "Optional[Executor]" = None,
    store: "Optional[ResultStore]" = None,
    progress: "Optional[ProgressReporter]" = None,
    backend: Optional[str] = None,
    kernels: Optional[str] = None,
) -> "tuple[ExperimentResult, bool]":
    """Engine-aware variant of :func:`run_experiment`.

    Returns ``(result, from_cache)`` so schedulers (e.g.
    :func:`repro.engine.tasks.run_suite`) can report cache hits without
    probing store counters.
    """
    runner = get_experiment(experiment_id)
    # Imported lazily: repro.engine (and the figures package) pull in this
    # module during their own initialisation.
    from repro.core.backend import use_backend
    from repro.engine.executor import use_executor
    from repro.experiments.figures._common import resolve_scale
    from repro.kernels.dispatch import use_kernels

    resolved = resolve_scale(scale, seed)

    if progress is not None:
        progress.experiment_started(experiment_id)

    def compute() -> ExperimentResult:
        with use_executor(executor, progress), use_backend(backend), \
                use_kernels(kernels):
            return runner(scale=resolved, seed=None)

    if store is not None:
        result, from_cache = store.fetch_or_run(experiment_id, resolved, compute)
    else:
        result, from_cache = compute(), False
    if progress is not None:
        progress.experiment_finished(experiment_id, from_cache=from_cache)
    return result, from_cache


def run_scenario(
    spec: "ScenarioSpec",
    scale: Optional[ExperimentScale] = None,
    seed: Optional[int] = None,
    executor: "Optional[Executor]" = None,
    store: "Optional[ResultStore]" = None,
    progress: "Optional[ProgressReporter]" = None,
    backend: Optional[str] = None,
    kernels: Optional[str] = None,
) -> ExperimentResult:
    """Run a declarative :class:`~repro.scenarios.ScenarioSpec` end to end.

    The scenario counterpart of :func:`run_experiment`: same engine options,
    same determinism guarantees, but the experiment is *data* (a spec the
    caller authored or loaded from JSON) instead of a registered id.  With a
    ``store``, results are keyed by (scenario id, scale, canonical spec
    hash), so every equivalent spelling of the spec shares one cache entry.
    """
    # Imported lazily: the scenario layer sits above this module.
    from repro.scenarios.compile import run_scenario as _run_scenario

    return _run_scenario(
        spec,
        scale=scale,
        seed=seed,
        executor=executor,
        store=store,
        progress=progress,
        backend=backend,
        kernels=kernels,
    )


def run_scenario_cached(
    spec: "ScenarioSpec",
    scale: Optional[ExperimentScale] = None,
    seed: Optional[int] = None,
    executor: "Optional[Executor]" = None,
    store: "Optional[ResultStore]" = None,
    progress: "Optional[ProgressReporter]" = None,
    backend: Optional[str] = None,
    kernels: Optional[str] = None,
) -> "tuple[ExperimentResult, bool]":
    """Scenario counterpart of :func:`run_experiment_cached`.

    Returns ``(result, from_cache)`` so callers (e.g. ``repro run --json``)
    can report cache hits.
    """
    from repro.scenarios.compile import run_scenario_cached as _run_scenario_cached

    return _run_scenario_cached(
        spec,
        scale=scale,
        seed=seed,
        executor=executor,
        store=store,
        progress=progress,
        backend=backend,
        kernels=kernels,
    )
