"""Registry of reproducible experiments (figures, tables, ablations)."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.errors import ExperimentError
from repro.experiments.results import ExperimentResult
from repro.experiments.runner import ExperimentScale

__all__ = ["available_experiments", "get_experiment", "run_experiment", "experiment_titles"]

ExperimentRunner = Callable[..., ExperimentResult]


def _load_modules():
    # Imported lazily to keep `import repro.experiments` cheap and to avoid
    # a circular import through figures/_common.
    from repro.experiments.figures import ALL_FIGURE_MODULES

    return ALL_FIGURE_MODULES


def _registry() -> Dict[str, object]:
    modules = _load_modules()
    registry: Dict[str, object] = {}
    for module in modules:
        registry[module.EXPERIMENT_ID] = module
    return registry


def available_experiments() -> List[str]:
    """Return the ids of every registered experiment, in paper order."""
    return list(_registry().keys())


def experiment_titles() -> Dict[str, str]:
    """Return a mapping of experiment id to its human-readable title."""
    return {exp_id: module.TITLE for exp_id, module in _registry().items()}


def get_experiment(experiment_id: str) -> ExperimentRunner:
    """Return the ``run`` callable of the experiment with the given id."""
    registry = _registry()
    if experiment_id not in registry:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(available_experiments())}"
        )
    return registry[experiment_id].run


def run_experiment(
    experiment_id: str,
    scale: Optional[ExperimentScale] = None,
    seed: Optional[int] = None,
) -> ExperimentResult:
    """Run one experiment by id and return its result.

    Examples
    --------
    >>> result = run_experiment("table2")
    >>> result.experiment_id
    'table2'
    """
    runner = get_experiment(experiment_id)
    return runner(scale=scale, seed=seed)
