"""Shared infrastructure for running experiments at different scales.

The paper's simulations use 10⁴–10⁵ node networks with 10 realizations per
data point — minutes to hours of pure-Python work per figure.  Every
experiment therefore accepts an :class:`ExperimentScale` with three presets:

* ``smoke``  — a few hundred nodes, 1 realization; used by the unit tests;
* ``small``  — a few thousand nodes, 2–3 realizations; the default for
  ``pytest benchmarks/`` so the whole suite finishes in minutes while the
  paper's qualitative trends remain visible;
* ``paper``  — the sizes reported in the paper, for full reproduction runs.

:func:`run_realizations` handles the generate-→-measure-→-average loop every
experiment shares.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, TypeVar

import numpy as np

from repro.core.errors import ExperimentError
from repro.core.rng import DEFAULT_SEED, RandomSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.engine.executor import Executor

__all__ = ["ExperimentScale", "run_realizations", "realization_seeds", "average_curves"]

T = TypeVar("T")


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs controlling how big and how averaged an experiment run is.

    Attributes
    ----------
    name:
        Preset name ("smoke", "small", "paper", or "custom").
    nodes:
        Overlay size used by the degree-distribution experiments (Figs. 1–4).
    search_nodes:
        Overlay size used by the search experiments (Figs. 6–12); the paper
        uses 10⁴ for these regardless of the 10⁵ used for Fig. 1.
    substrate_nodes:
        Substrate size for DAPA (the paper uses 2 × 10⁴ = 2 × search_nodes).
    realizations:
        Independent topology realizations averaged per data point.
    queries:
        Query sources per topology for the search experiments.
    max_ttl:
        Largest TTL simulated for NF / RW curves (the paper plots 1..10).
    flooding_max_ttl:
        Largest TTL simulated for FL curves (the paper plots up to ~20-30).
    seed:
        Base seed; realization ``r`` uses ``seed + r``.
    """

    name: str = "small"
    nodes: int = 3000
    search_nodes: int = 1500
    substrate_nodes: int = 3000
    realizations: int = 2
    queries: int = 40
    max_ttl: int = 10
    flooding_max_ttl: int = 15
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.nodes < 10 or self.search_nodes < 10:
            raise ExperimentError("scales below 10 nodes are not meaningful")
        if self.substrate_nodes < self.search_nodes:
            raise ExperimentError("substrate_nodes must be >= search_nodes")
        if self.realizations < 1:
            raise ExperimentError("realizations must be at least 1")
        if self.queries < 1:
            raise ExperimentError("queries must be at least 1")
        if self.max_ttl < 1 or self.flooding_max_ttl < 1:
            raise ExperimentError("TTL limits must be at least 1")

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #
    @classmethod
    def smoke(cls, seed: int = DEFAULT_SEED) -> "ExperimentScale":
        """Tiny preset used by the unit tests (seconds per experiment)."""
        return cls(
            name="smoke",
            nodes=400,
            search_nodes=300,
            substrate_nodes=600,
            realizations=1,
            queries=15,
            max_ttl=6,
            flooding_max_ttl=8,
            seed=seed,
        )

    @classmethod
    def small(cls, seed: int = DEFAULT_SEED) -> "ExperimentScale":
        """Default benchmark preset (minutes for the full suite)."""
        return cls(name="small", seed=seed)

    @classmethod
    def paper(cls, seed: int = DEFAULT_SEED) -> "ExperimentScale":
        """The paper's sizes: 10⁵-node distributions, 10⁴-node searches."""
        return cls(
            name="paper",
            nodes=100_000,
            search_nodes=10_000,
            substrate_nodes=20_000,
            realizations=10,
            queries=200,
            max_ttl=10,
            flooding_max_ttl=20,
            seed=seed,
        )

    @classmethod
    def from_name(cls, name: str, seed: int = DEFAULT_SEED) -> "ExperimentScale":
        """Return the preset with the given name ("smoke", "small", "paper")."""
        presets: Dict[str, Callable[[int], ExperimentScale]] = {
            "smoke": cls.smoke,
            "small": cls.small,
            "paper": cls.paper,
        }
        if name not in presets:
            raise ExperimentError(
                f"unknown scale preset {name!r}; available: {', '.join(sorted(presets))}"
            )
        return presets[name](seed)

    def with_seed(self, seed: int) -> "ExperimentScale":
        """Return a copy of this scale with a different base seed."""
        return replace(self, seed=seed)

    def ttl_grid(self) -> List[int]:
        """TTL values for the NF/RW curves (the paper samples even values 2..10)."""
        return list(range(2, self.max_ttl + 1, 2))

    def flooding_ttl_grid(self) -> List[int]:
        """TTL values for the FL curves."""
        return list(range(1, self.flooding_max_ttl + 1))

    def as_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly representation (stored in every result)."""
        return {
            "name": self.name,
            "nodes": self.nodes,
            "search_nodes": self.search_nodes,
            "substrate_nodes": self.substrate_nodes,
            "realizations": self.realizations,
            "queries": self.queries,
            "max_ttl": self.max_ttl,
            "flooding_max_ttl": self.flooding_max_ttl,
            "seed": self.seed,
        }


def _labelled_seed(base_seed: int, label: str, index: int) -> int:
    """Derive the seed for realization ``index`` of the curve ``label``.

    The (label, index) pair is hashed as a unit, so every realization of
    every curve draws from its own 63-bit stream.  The earlier scheme added
    ``crc32(label) % 10_000`` to ``base_seed + index``, which made two labels
    whose offsets differ by less than ``realizations`` share seeds —
    silently correlating curves that the paper averages as independent.
    SHA-256 is used (rather than :func:`hash`) so seeds are stable across
    interpreter runs and worker processes.
    """
    digest = hashlib.sha256(f"{label}\x1f{index}".encode("utf-8")).digest()
    return (base_seed + int.from_bytes(digest[:8], "big")) % 2**63


def realization_seeds(scale: ExperimentScale, label: str = "") -> List[int]:
    """Return one deterministic seed per realization for this scale.

    A label (typically the curve label) is mixed in so different curves of
    the same experiment do not share topology realizations.  Unlabelled
    callers keep the simple ``seed + index`` ladder; labelled callers get
    collision-free per-(label, realization) streams via :func:`_labelled_seed`.
    """
    if not label:
        return [scale.seed + index for index in range(scale.realizations)]
    return [_labelled_seed(scale.seed, label, index) for index in range(scale.realizations)]


def _realize_one(
    build: Callable[[int], T],
    measure: Callable[[T, int], Sequence[float]],
    seed: int,
    backend: str = "adj",
    kernels: str = "auto",
) -> List[float]:
    """Build and measure a single realization (one engine task).

    When the ``csr`` backend is selected and ``build`` produced a mutable
    :class:`~repro.core.graph.Graph`, the graph is frozen once here —
    before ``measure`` runs its many queries — so the whole measurement
    phase uses the vectorized snapshot.  The kernel mode travels with the
    task the same way: installed ambiently around *both* phases — ``build``
    dispatches to the compiled generator kernels, ``measure`` to the search
    kernels — so the choice survives the hop into a worker process.
    """
    from repro.core.backend import freeze_for_backend
    from repro.core.graph import Graph
    from repro.kernels.dispatch import use_kernels

    with use_kernels(kernels):
        subject = build(seed)
        if isinstance(subject, Graph):
            subject = freeze_for_backend(subject, backend)  # type: ignore[assignment]
        return [float(value) for value in measure(subject, seed)]


def run_realizations(
    scale: ExperimentScale,
    build: Callable[[int], T],
    measure: Callable[[T, int], Sequence[float]],
    label: str = "",
    executor: "Optional[Executor]" = None,
    backend: "Optional[str]" = None,
    kernels: "Optional[str]" = None,
) -> List[float]:
    """Run ``build``/``measure`` once per realization and average the outputs.

    Parameters
    ----------
    scale:
        Controls the number of realizations and the base seed.
    build:
        ``build(seed)`` constructs the object under study (usually a graph).
    measure:
        ``measure(obj, seed)`` returns a vector of numbers (e.g. hits per
        TTL); vectors from all realizations are averaged element-wise and
        must share a length.
    label:
        Mixed into the seeds so distinct curves are independent.
    executor:
        Optional :class:`~repro.engine.executor.Executor` the realization
        tasks are fanned out through.  The default is the ambient executor
        (serial unless a ``--jobs`` context is active), so existing callers
        see unchanged behaviour.  Because each task carries its own explicit
        seed and results come back in submission order, parallel runs are
        numerically identical to serial ones — note that distributing to
        worker processes requires ``build``/``measure`` to be picklable
        (module-level functions); closures degrade gracefully to in-process
        execution.
    backend:
        Graph backend for the measurement phase (``"adj"`` or ``"csr"``);
        the default is the ambient backend installed by
        :func:`repro.core.backend.use_backend`.  With ``"csr"``, graphs
        coming out of ``build`` are frozen once before ``measure`` runs —
        generate mutable, freeze once, search many.  The choice is baked
        into each task, so it survives the hop into worker processes, and
        results are identical either way.
    kernels:
        Kernel mode for the measurement phase (``"auto"``, ``"python"``,
        or ``"jit"``; see :mod:`repro.kernels.dispatch`); the default is
        the ambient mode installed by
        :func:`repro.kernels.dispatch.use_kernels`.  Baked into each task
        like ``backend``; results are identical across modes.

    Returns
    -------
    list of float
        The element-wise mean across realizations.
    """
    # Imported lazily to avoid a cycle: repro.engine.store imports this module.
    from repro.core.backend import active_backend, normalize_backend
    from repro.engine.executor import active_executor, active_progress
    from repro.engine.tasks import Task
    from repro.kernels.dispatch import active_kernels, normalize_kernels

    resolved_backend = (
        active_backend() if backend is None else normalize_backend(backend)
    )
    resolved_kernels = (
        active_kernels() if kernels is None else normalize_kernels(kernels)
    )
    tasks = [
        Task(
            fn=_realize_one,
            args=(build, measure, seed, resolved_backend, resolved_kernels),
            key=f"{label or 'realization'}[{index}]",
        )
        for index, seed in enumerate(realization_seeds(scale, label))
    ]
    runner = executor if executor is not None else active_executor()
    rows = runner.run(tasks, active_progress())
    return average_curves(rows)


def average_curves(rows: Sequence[Sequence[float]]) -> List[float]:
    """Element-wise mean of equal-length numeric rows."""
    if not rows:
        raise ExperimentError("cannot average an empty collection of curves")
    lengths = {len(row) for row in rows}
    if len(lengths) != 1:
        raise ExperimentError("curves must share a length to be averaged")
    return [float(value) for value in np.mean(np.array(rows, dtype=float), axis=0)]
