"""Per-line suppression directives — every suppression must be justified.

Grammar (one directive per source line, as a trailing comment)::

    # repro-lint: disable=RPL101(dict is insertion-ordered; draws pinned)
    # repro-lint: disable=RPL101(reason one), RPL402(reason two)

The parenthesised justification is *required*: the whole point of the
linter is that the draw-order/purity/pickling invariants stop being tribal
knowledge, so an unexplained suppression would recreate exactly the
silent-violation failure mode it guards against.  Malformed directives are
themselves findings (the ``RPL0xx`` meta codes below) and suppress nothing.

Meta codes
----------
``RPL001``
    Unparseable directive (no ``disable=``, or an entry that is not
    ``CODE(justification)``).
``RPL002``
    Suppression without a justification string.
``RPL003``
    Suppression names a rule code the registry does not know.
``RPL004``
    Useless suppression: nothing on that line triggers the named rule.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.staticcheck.model import Finding, SourceModule

__all__ = ["META_CODES", "Suppression", "apply_suppressions"]

#: Meta findings raised by the directive parser itself.  These codes cannot
#: be suppressed (a suppression problem must be fixed, not silenced).
META_CODES = {
    "RPL001": "malformed `# repro-lint:` directive",
    "RPL002": "suppression is missing its justification",
    "RPL003": "suppression names an unknown rule code",
    "RPL004": "useless suppression (rule did not fire on this line)",
}

_MARKER = re.compile(r"#\s*repro-lint:\s*(.*)$")
_ENTRY = re.compile(r"\s*(RPL\d{3})\s*\(")


@dataclass
class Suppression:
    """One parsed ``CODE(justification)`` entry."""

    code: str
    justification: str
    line: int
    used: bool = field(default=False, compare=False)


def _meta_finding(module: SourceModule, code: str, line: int, message: str) -> Finding:
    return Finding(code=code, path=module.display_path, line=line, col=1, message=message)


def _parse_entries(body: str) -> Tuple[List[Tuple[str, str]], Optional[str]]:
    """Split ``RPL101(reason), RPL102(reason)`` into ``(code, reason)`` pairs.

    Justifications may contain commas and balanced parentheses; the scanner
    tracks paren depth instead of splitting naively.  Returns the pairs and
    an error string when the tail fails to parse.
    """
    entries: List[Tuple[str, str]] = []
    rest = body
    while rest.strip():
        match = _ENTRY.match(rest)
        if not match:
            return entries, f"expected CODE(justification), got {rest.strip()!r}"
        code = match.group(1)
        depth = 1
        index = match.end()
        while index < len(rest) and depth:
            if rest[index] == "(":
                depth += 1
            elif rest[index] == ")":
                depth -= 1
            index += 1
        if depth:
            return entries, f"unbalanced parentheses in suppression for {code}"
        reason = rest[match.end() : index - 1].strip()
        entries.append((code, reason))
        rest = rest[index:].lstrip()
        if rest.startswith(","):
            rest = rest[1:]
        elif rest.strip():
            return entries, f"expected ',' between suppressions, got {rest.strip()!r}"
    return entries, None


def _comment_tokens(module: SourceModule) -> List[Tuple[int, str]]:
    """``(line, text)`` of every comment token — docstrings never match.

    Tokenizing (rather than regex-scanning raw lines) is what keeps
    directive *documentation* — like this module's own docstring — from
    being parsed as a directive: a ``# repro-lint:`` inside a string
    literal is a STRING token, not a COMMENT.
    """
    comments: List[Tuple[int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(module.source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        # The file already parsed as AST; tokenize failures here would be
        # pathological — fall back to finding nothing rather than crashing.
        pass
    return comments


def parse_directives(
    module: SourceModule, known_codes: Iterable[str]
) -> Tuple[Dict[int, List[Suppression]], List[Finding]]:
    """Scan ``module`` for directives; return per-line suppressions + meta findings."""
    known = set(known_codes)
    by_line: Dict[int, List[Suppression]] = {}
    findings: List[Finding] = []
    for lineno, text in _comment_tokens(module):
        match = _MARKER.search(text)
        if not match:
            continue
        body = match.group(1).strip()
        if not body.startswith("disable="):
            findings.append(
                _meta_finding(
                    module, "RPL001", lineno,
                    f"{META_CODES['RPL001']}: expected 'disable=...', got {body!r}",
                )
            )
            continue
        entries, error = _parse_entries(body[len("disable=") :])
        if error is not None:
            findings.append(
                _meta_finding(module, "RPL001", lineno, f"{META_CODES['RPL001']}: {error}")
            )
        for code, reason in entries:
            if code in META_CODES:
                findings.append(
                    _meta_finding(
                        module, "RPL001", lineno,
                        f"{META_CODES['RPL001']}: meta code {code} cannot be suppressed",
                    )
                )
                continue
            if code not in known:
                findings.append(
                    _meta_finding(
                        module, "RPL003", lineno, f"{META_CODES['RPL003']}: {code}"
                    )
                )
                continue
            if not reason:
                findings.append(
                    _meta_finding(
                        module, "RPL002", lineno,
                        f"{META_CODES['RPL002']}: {code} needs a written reason, "
                        f"e.g. {code}(why this line is safe)",
                    )
                )
                continue
            by_line.setdefault(lineno, []).append(
                Suppression(code=code, justification=reason, line=lineno)
            )
    return by_line, findings


def apply_suppressions(
    module: SourceModule,
    findings: List[Finding],
    known_codes: Iterable[str],
) -> List[Finding]:
    """Mark findings suppressed by a same-line directive; flag unused ones."""
    by_line, meta = parse_directives(module, known_codes)
    out: List[Finding] = []
    for finding in findings:
        suppression = next(
            (
                entry
                for entry in by_line.get(finding.line, [])
                if entry.code == finding.code
            ),
            None,
        )
        if suppression is not None:
            suppression.used = True
            out.append(finding.suppress(suppression.justification))
        else:
            out.append(finding)
    for entries in by_line.values():
        for entry in entries:
            if not entry.used:
                meta.append(
                    _meta_finding(
                        module, "RPL004", entry.line,
                        f"{META_CODES['RPL004']}: {entry.code}",
                    )
                )
    out.extend(meta)
    return out
