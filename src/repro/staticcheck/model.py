"""Data model shared by every lint rule: findings, parsed modules, scopes.

The linter's unit of work is a :class:`SourceModule` — one parsed Python
file plus the raw source lines the suppression scanner needs.  Rules emit
:class:`Finding` records; the runner decorates them with suppression state
(see :mod:`repro.staticcheck.suppress`) before reporting.

Scope classification lives here because several rule families share it:
the draw-order rules only apply to RNG-consuming modules, the pool-contract
rules only to modules whose classes cross the ``ParallelExecutor`` pickle
boundary, and the kernel files are exempt from the draw-order rules (they
consume the exported MT19937 state array, not a ``RandomSource``).  The
classification is purely path-based (package directory names), so the test
fixture corpus under ``tests/fixtures/lint/`` opts into a scope simply by
mirroring the package layout (``fixtures/lint/search/...``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from pathlib import Path
from typing import List, Optional

__all__ = [
    "Finding",
    "SourceModule",
    "in_rng_scope",
    "in_pool_boundary_scope",
]

#: Directories whose modules consume the shared Mersenne-Twister draw
#: sequence through :class:`repro.core.rng.RandomSource` — the scope of the
#: RPL1xx draw-order rules.
RNG_SCOPE_PARTS = frozenset({"generators", "search", "substrate", "simulation"})

#: Directories whose classes cross the ``ParallelExecutor`` process-pool
#: boundary by pickle (``Task`` arguments, ``RealizationSpec``, scenario
#: specs) — the scope of the RPL3xx pool-contract rules.
POOL_BOUNDARY_PARTS = frozenset({"engine", "scenarios"})

#: Files inside an RNG-scope directory that are nevertheless exempt from
#: the draw-order rules: the kernel tier replays the stream from an
#: exported state array and never touches Python sets or ``random``.
RNG_SCOPE_EXEMPT_PARTS = frozenset({"kernels"})


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``suppressed`` findings carry the justification string of the
    ``# repro-lint: disable=`` directive that silenced them; they still
    appear in the JSON report (auditable), but do not affect the exit code.
    """

    code: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    justification: Optional[str] = None

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of the text report."""
        return f"{self.path}:{self.line}:{self.col}"

    def suppress(self, justification: str) -> "Finding":
        """Return a suppressed copy carrying ``justification``."""
        return replace(self, suppressed=True, justification=justification)


class SourceModule:
    """One parsed source file handed to every applicable rule."""

    __slots__ = ("path", "display_path", "source", "lines", "tree")

    def __init__(self, path: Path, display_path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree = tree

    @classmethod
    def parse(cls, path: Path, display_path: Optional[str] = None) -> "SourceModule":
        """Read and parse ``path`` (raises ``SyntaxError``/``OSError``)."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(path, display_path or str(path), source, tree)

    def parts(self) -> frozenset:
        """The path's directory components plus the file name."""
        return frozenset(self.path.parts)


def in_rng_scope(module: SourceModule) -> bool:
    """True for modules whose code sits on the shared RNG draw path."""
    parts = module.parts()
    if parts & RNG_SCOPE_EXEMPT_PARTS:
        return False
    return bool(parts & RNG_SCOPE_PARTS)


def in_pool_boundary_scope(module: SourceModule) -> bool:
    """True for modules whose classes are pickled into pool workers."""
    parts = module.parts()
    if parts & POOL_BOUNDARY_PARTS:
        return True
    # ExperimentScale and friends ride inside Task args from the runner.
    return "experiments" in parts and module.path.name == "runner.py"
