"""Rule registry: one class per ``RPLnnn`` code, discoverable by family.

Rules self-register at import time (the :mod:`repro.staticcheck.rules`
package imports every rule module), the same pattern as the experiment and
measurement-kind registries.  ``--select``/``--ignore`` match either an
exact code (``RPL101``) or a family prefix (``RPL1``/``RPL2xx``-style
``RPL2``), mirroring how flake8-family tools treat code prefixes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

from repro.staticcheck.model import Finding, SourceModule

__all__ = [
    "Rule",
    "register",
    "all_rules",
    "rule_for_code",
    "known_codes",
    "select_rules",
    "code_matches",
]


class Rule:
    """Base class for one lint rule.

    Attributes
    ----------
    code:
        The ``RPLnnn`` identifier (``RPL1xx`` draw-order, ``RPL2xx`` kernel
        purity, ``RPL3xx`` pool/pickle contracts, ``RPL4xx`` telemetry and
        ambient discipline).
    name:
        Short kebab-case slug used in ``--list-rules``.
    invariant:
        One-line statement of the repo invariant the rule machine-checks.
    """

    code: str = ""
    name: str = ""
    invariant: str = ""

    def applies(self, module: SourceModule) -> bool:
        """Whether this rule examines ``module`` at all (default: yes)."""
        return True

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Yield findings for ``module`` (the tree is already parsed)."""
        raise NotImplementedError

    def finding(self, module: SourceModule, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            code=self.code,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its code."""
    rule = rule_cls()
    if not rule.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by code."""
    _ensure_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def rule_for_code(code: str) -> Optional[Rule]:
    """The rule registered under ``code``, or ``None``."""
    _ensure_loaded()
    return _REGISTRY.get(code)


def known_codes() -> List[str]:
    """All registered codes (sorted)."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def code_matches(code: str, patterns: Iterable[str]) -> bool:
    """True when ``code`` equals or starts with any pattern (``RPL1``…)."""
    return any(code == pattern or code.startswith(pattern) for pattern in patterns)


def select_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Resolve ``--select``/``--ignore`` patterns into a rule list."""
    rules = all_rules()
    if select:
        rules = [rule for rule in rules if code_matches(rule.code, select)]
    if ignore:
        rules = [rule for rule in rules if not code_matches(rule.code, ignore)]
    return rules


def _ensure_loaded() -> None:
    """Import the rule modules exactly once (they register themselves)."""
    import repro.staticcheck.rules  # noqa: F401  (import-for-side-effect)
