"""The lint driver: expand paths, parse files, run rules, apply suppressions.

:func:`lint_paths` is the single entry point shared by the ``repro lint``
CLI and the test-suite.  It returns a :class:`LintReport` whose
``exit_code`` encodes the CI contract:

* ``0`` — no active (unsuppressed) findings;
* ``1`` — at least one active finding;
* ``2`` — a path did not exist or a file could not be read/parsed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

from repro.staticcheck.model import Finding, SourceModule
from repro.staticcheck.registry import known_codes, select_rules
from repro.staticcheck.suppress import apply_suppressions

__all__ = ["LintReport", "lint_paths", "iter_python_files"]

_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hg", ".venv", "node_modules"})


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        """Findings that count against the exit code (not suppressed)."""
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        """Findings silenced by a justified ``repro-lint`` directive."""
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.active else 0


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` in sorted order."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIPPED_DIRS & set(candidate.parts):
                    yield candidate


def _display_path(path: Path) -> str:
    """Project-relative path when possible (stable across machines)."""
    try:
        return os.path.relpath(path)
    except ValueError:  # pragma: no cover - different drive on Windows
        return str(path)


def lint_paths(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with the selected rules."""
    report = LintReport()
    rules = select_rules(select=select, ignore=ignore)
    codes = known_codes()
    for path in paths:
        if not path.exists():
            report.errors.append(f"path does not exist: {path}")
    for path in iter_python_files([p for p in paths if p.exists()]):
        try:
            module = SourceModule.parse(path, display_path=_display_path(path))
        except (OSError, SyntaxError, UnicodeDecodeError) as error:
            report.errors.append(f"cannot lint {path}: {error}")
            continue
        report.files_checked += 1
        raw: List[Finding] = []
        for rule in rules:
            if rule.applies(module):
                raw.extend(rule.check(module))
        findings = apply_suppressions(module, raw, codes)
        if select or ignore:
            from repro.staticcheck.registry import code_matches

            findings = [
                finding
                for finding in findings
                if (not select or code_matches(finding.code, select))
                and (not ignore or not code_matches(finding.code, ignore))
            ]
        findings.sort(key=lambda finding: (finding.line, finding.col, finding.code))
        report.findings.extend(findings)
    return report
