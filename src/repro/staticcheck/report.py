"""Text and JSON reporters for lint results.

The text form is the grep-able ``path:line:col: CODE message`` layout
every editor understands; the JSON form is the machine-readable payload CI
archives (schema-versioned like the trace and bench payloads, and it
includes suppressed findings with their justifications so suppressions
stay auditable).
"""

from __future__ import annotations

from typing import Any, Dict, List, TextIO

from repro.staticcheck.registry import all_rules
from repro.staticcheck.runner import LintReport
from repro.staticcheck.suppress import META_CODES

__all__ = ["LINT_SCHEMA_VERSION", "render_text", "render_json", "render_rules"]

#: Bump when the JSON payload layout changes incompatibly.
LINT_SCHEMA_VERSION = 1


def render_text(report: LintReport, stream: TextIO, show_suppressed: bool = False) -> None:
    """Write the human-readable report to ``stream``."""
    for error in report.errors:
        print(f"error: {error}", file=stream)
    for finding in report.active:
        print(f"{finding.location()}: {finding.code} {finding.message}", file=stream)
    if show_suppressed:
        for finding in report.suppressed:
            print(
                f"{finding.location()}: {finding.code} suppressed "
                f"({finding.justification})",
                file=stream,
            )
    active = len(report.active)
    print(
        f"{active} finding{'s' if active != 1 else ''} "
        f"({len(report.suppressed)} suppressed) "
        f"across {report.files_checked} files",
        file=stream,
    )


def render_json(report: LintReport) -> Dict[str, Any]:
    """The machine-readable payload of one lint run."""
    def entry(finding) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "code": finding.code,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
        }
        if finding.suppressed:
            record["suppressed"] = True
            record["justification"] = finding.justification
        return record

    return {
        "schema": LINT_SCHEMA_VERSION,
        "files_checked": report.files_checked,
        "errors": list(report.errors),
        "findings": [entry(finding) for finding in report.active],
        "suppressed": [entry(finding) for finding in report.suppressed],
        "exit_code": report.exit_code,
    }


def render_rules(stream: TextIO) -> None:
    """Print every registered rule code with its invariant (``--list-rules``)."""
    for rule in all_rules():
        print(f"{rule.code}  {rule.name}", file=stream)
        print(f"        {rule.invariant}", file=stream)
    for code in sorted(META_CODES):
        print(f"{code}  (meta) {META_CODES[code]}", file=stream)
