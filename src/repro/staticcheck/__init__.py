"""``repro.staticcheck`` — the repo's AST invariant checker (``repro lint``).

A stdlib-``ast`` linter for the invariants generic tools cannot see, each
encoding a lesson this codebase already paid for once:

* **RPL1xx draw-order** — RNG-consuming modules never iterate sets (the
  PF set-order and DAPA horizon-walk bugs), justify dict iteration, and
  draw only through :class:`repro.core.rng.RandomSource`;
* **RPL2xx kernel purity** — ``maybe_njit`` bodies stay inside the numba
  subset, so "interpreted fallback passes, compiled tier breaks" cannot
  happen on numba-less CI;
* **RPL3xx pool contracts** — classes crossing the ``ParallelExecutor``
  pickle boundary hold no lambdas/locks/handles (an unpicklable member
  silently serialises a `--jobs 8` run);
* **RPL4xx ambient discipline** — spans open only as context managers,
  ``AmbientStack`` is touched only through its thread-local API.

Suppressions are per-line and *must* carry a justification::

    return list(self.peers.keys())  # repro-lint: disable=RPL102(reason...)

Run ``repro lint src/`` (text) or ``repro lint --json`` (CI payload); see
the README's "Static analysis" section for the full rule catalogue.
"""

from repro.staticcheck.model import Finding, SourceModule
from repro.staticcheck.registry import Rule, all_rules, select_rules
from repro.staticcheck.report import (
    LINT_SCHEMA_VERSION,
    render_json,
    render_rules,
    render_text,
)
from repro.staticcheck.runner import LintReport, lint_paths
from repro.staticcheck.suppress import META_CODES

__all__ = [
    "Finding",
    "SourceModule",
    "META_CODES",
    "Rule",
    "all_rules",
    "select_rules",
    "LintReport",
    "lint_paths",
    "render_text",
    "render_json",
    "render_rules",
    "LINT_SCHEMA_VERSION",
]
