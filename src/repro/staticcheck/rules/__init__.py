"""Rule modules — importing this package registers every RPL rule.

One module per family, mirroring the code blocks:

* :mod:`~repro.staticcheck.rules.draw_order` — ``RPL1xx``;
* :mod:`~repro.staticcheck.rules.kernel_purity` — ``RPL2xx``;
* :mod:`~repro.staticcheck.rules.pool_contracts` — ``RPL3xx``;
* :mod:`~repro.staticcheck.rules.ambient_discipline` — ``RPL4xx``.
"""

from repro.staticcheck.rules import (  # noqa: F401  (import-for-side-effect)
    ambient_discipline,
    draw_order,
    kernel_purity,
    pool_contracts,
)
