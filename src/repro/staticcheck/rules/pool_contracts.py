"""RPL3xx — classes that cross the ``ParallelExecutor`` boundary must pickle.

The engine ships :class:`repro.engine.tasks.Task` objects (function +
arguments) to worker processes; everything a task carries —
``RealizationSpec``, scenario specs, ``ExperimentScale`` — must survive
``pickle.dumps``.  The executor *does* fall back to in-process execution
when a task fails to pickle, which is precisely the danger: an unpicklable
member silently disables parallelism instead of failing loudly, and a
`--jobs 8` run quietly becomes serial.

``RPL301``
    No known-unpicklable members on dataclass carriers in pool-boundary
    modules (``engine/``, ``scenarios/``, ``experiments/runner.py``):
    lambdas as defaults or ``self`` attributes, thread locks/conditions/
    events, open file handles.
``RPL302``
    No ``lambda`` as a ``Task`` callable anywhere: ``Task.fn`` must be a
    module-level function for the task to be distributable.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.staticcheck.model import Finding, SourceModule, in_pool_boundary_scope
from repro.staticcheck.registry import Rule, register

__all__ = ["UnpicklableMember", "LambdaTask"]

#: Constructors whose instances cannot cross a pickle boundary.
_UNPICKLABLE_CONSTRUCTORS = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "open",
        "socket",
    }
)


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_dataclass(class_node: ast.ClassDef) -> bool:
    """True for ``@dataclass`` / ``@dataclass(...)`` decorated classes.

    The rule is scoped to dataclasses deliberately: in this codebase the
    values that cross the pool boundary are all dataclass carriers
    (``Task``, ``RealizationSpec``, ``ProgressEvent``, the spec family),
    while the stateful engine classes (executors, reporters) legitimately
    hold locks and never leave the parent process.
    """
    for decorator in class_node.decorator_list:
        if isinstance(decorator, ast.Call):
            decorator = decorator.func
        if _terminal_name(decorator) == "dataclass":
            return True
    return False


def _unpicklable_reason(value: ast.AST) -> Optional[str]:
    """Why ``value`` cannot be pickled, or ``None`` when it looks fine."""
    if isinstance(value, ast.Lambda):
        return "a lambda"
    if isinstance(value, ast.GeneratorExp):
        return "a generator"
    if isinstance(value, ast.Call):
        name = _terminal_name(value.func)
        if name in _UNPICKLABLE_CONSTRUCTORS:
            return f"a {name}() instance"
    return None


@register
class UnpicklableMember(Rule):
    code = "RPL301"
    name = "pool-unpicklable-member"
    invariant = (
        "dataclass carriers in pool-boundary modules hold no lambdas, "
        "locks, or open handles: an unpicklable member silently downgrades "
        "parallel execution to in-process fallback"
    )

    def applies(self, module: SourceModule) -> bool:
        return in_pool_boundary_scope(module)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            if not _is_dataclass(class_node):
                continue
            yield from self._check_class(module, class_node)

    def _check_class(self, module: SourceModule, class_node: ast.ClassDef) -> Iterator[Finding]:
        for statement in class_node.body:
            if isinstance(statement, (ast.Assign, ast.AnnAssign)):
                value = statement.value
                if value is None:
                    continue
                reason = _unpicklable_reason(value)
                if reason:
                    yield self.finding(
                        module, value,
                        f"class `{class_node.name}` defines {reason} as a "
                        "field default; it cannot cross the worker-pool "
                        "pickle boundary",
                    )
                elif isinstance(value, ast.Call) and _terminal_name(value.func) == "field":
                    yield from self._check_field_call(module, class_node, value)
            elif isinstance(statement, ast.FunctionDef):
                yield from self._check_method(module, class_node, statement)

    def _check_field_call(
        self, module: SourceModule, class_node: ast.ClassDef, call: ast.Call
    ) -> Iterator[Finding]:
        for keyword in call.keywords:
            if keyword.arg == "default":
                reason = _unpicklable_reason(keyword.value)
                if reason:
                    yield self.finding(
                        module, keyword.value,
                        f"class `{class_node.name}` uses {reason} as a "
                        "dataclass field default; instances will not pickle "
                        "into pool workers",
                    )
            elif keyword.arg == "default_factory" and isinstance(keyword.value, ast.Lambda):
                reason = _unpicklable_reason(keyword.value.body)
                if reason:
                    yield self.finding(
                        module, keyword.value,
                        f"class `{class_node.name}` has a default_factory "
                        f"producing {reason}; instances will not pickle "
                        "into pool workers",
                    )

    def _check_method(
        self, module: SourceModule, class_node: ast.ClassDef, method: ast.FunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if value is None:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    reason = _unpicklable_reason(value)
                    if reason:
                        yield self.finding(
                            module, value,
                            f"`self.{target.attr} = ...` in "
                            f"`{class_node.name}.{method.name}` stores "
                            f"{reason}; instances will not pickle into "
                            "pool workers",
                        )


@register
class LambdaTask(Rule):
    code = "RPL302"
    name = "task-lambda-callable"
    invariant = (
        "Task callables are module-level functions: a lambda fn cannot "
        "pickle, so the executor silently runs it in-process instead of "
        "distributing it"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _terminal_name(node.func) != "Task":
                continue
            fn_argument: Optional[ast.AST] = None
            if node.args:
                fn_argument = node.args[0]
            for keyword in node.keywords:
                if keyword.arg == "fn":
                    fn_argument = keyword.value
            if isinstance(fn_argument, ast.Lambda):
                yield self.finding(
                    module, fn_argument,
                    "Task constructed with a lambda callable; use a "
                    "module-level function so the task can be shipped to "
                    "worker processes",
                )
