"""RPL4xx — telemetry spans and ambient stacks stay behind their APIs.

The telemetry subsystem reassembles span *trees* across threads and
process pools; that only works when spans are opened and closed through
the context-manager protocol (``with telemetry.span(...)``) so the ambient
parent stack is balanced even on exceptions.  A bare ``.span(...)`` call
leaks an open span into every subsequently-opened one, silently corrupting
the tree a parallel run is checked against.

Similarly, :class:`repro.core.ambient.AmbientStack` hides a per-thread
stack behind ``push``/``pop``/``top``; reaching into its ``_local`` /
``_items`` internals from outside bypasses the thread isolation that was
the entire point of the class (two threads sharing one list was the bug
that motivated it).

``RPL401``  every ``.span(...)`` call is a ``with``-statement context item;
``RPL402``  no access to ``AmbientStack`` internals (``._local``,
            ``._items``) outside the class itself.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.staticcheck.model import Finding, SourceModule
from repro.staticcheck.registry import Rule, register

__all__ = ["SpanContextManager", "AmbientStackInternals"]


@register
class SpanContextManager(Rule):
    code = "RPL401"
    name = "span-context-manager"
    invariant = (
        "telemetry spans open only via `with ...span(...)`: a bare span "
        "call never closes, corrupting the span tree every later span "
        "attaches under"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        with_items: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_items.add(id(item.context_expr))
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and id(node) not in with_items
            ):
                yield self.finding(
                    module, node,
                    ".span(...) called outside a with-statement; open spans "
                    "only as context managers so the ambient parent stack "
                    "stays balanced",
                )


@register
class AmbientStackInternals(Rule):
    code = "RPL402"
    name = "ambient-stack-internals"
    invariant = (
        "AmbientStack is accessed only through push/pop/top: touching "
        "._local or ._items from outside bypasses the per-thread isolation "
        "the class exists to provide"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in ("_local", "_items")
                and not (isinstance(node.value, ast.Name) and node.value.id == "self")
            ):
                yield self.finding(
                    module, node,
                    f"access to AmbientStack internal `.{node.attr}` from "
                    "outside the class; use push/pop/top",
                )
