"""RPL2xx — ``maybe_njit`` kernels must stay inside the numba subset.

The kernel tier's contract is "same function, two execution modes": with
numba installed :func:`repro.kernels._compat.maybe_njit` compiles the
function in ``nopython`` mode, without it the *same* Python body runs
interpreted.  The failure mode these rules prevent is the asymmetric one —
"interpreted fallback passes the whole test-suite, compiled tier breaks in
production" — which happens exactly when a kernel body drifts outside the
numba-compatible subset (the interpreter happily runs ``try``/f-strings/
dict literals; ``nopython`` compilation rejects or miscompiles them, and
CI jobs without numba never notice).

``RPL201``  no ``try``/``with``/``yield``/``await``/``import``/``del``
            statements inside a kernel body;
``RPL202``  no closures: nested ``def``/``lambda`` capture cell variables
            numba cannot type;
``RPL203``  no ``*args``/``**kwargs``/keyword-only parameters in a kernel
            signature (positional NumPy arrays and scalars only);
``RPL204``  no f-strings and no ``dict``/``set`` literals or
            comprehensions (not available in cached ``nopython`` mode);
``RPL205``  no mutation of global state (``global`` declarations or
            attribute assignment on non-local names) — kernels receive and
            mutate arrays through their arguments only, which is also what
            keeps them trivially picklable to worker processes.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.staticcheck.model import Finding, SourceModule
from repro.staticcheck.registry import Rule, register

__all__ = [
    "KernelStatements",
    "KernelClosures",
    "KernelSignature",
    "KernelLiterals",
    "KernelGlobalMutation",
]

_BANNED_STATEMENTS = (
    ast.Try,
    ast.With,
    ast.AsyncWith,
    ast.AsyncFor,
    ast.Yield,
    ast.YieldFrom,
    ast.Await,
    ast.Import,
    ast.ImportFrom,
    ast.Delete,
)


def _is_maybe_njit(decorator: ast.AST) -> bool:
    if isinstance(decorator, ast.Call):
        decorator = decorator.func
    if isinstance(decorator, ast.Name):
        return decorator.id == "maybe_njit"
    if isinstance(decorator, ast.Attribute):
        return decorator.attr == "maybe_njit"
    return False


def kernel_functions(module: SourceModule) -> List[ast.FunctionDef]:
    """Every function in ``module`` decorated with ``maybe_njit``."""
    return [
        node
        for node in ast.walk(module.tree)
        if isinstance(node, ast.FunctionDef)
        and any(_is_maybe_njit(decorator) for decorator in node.decorator_list)
    ]


def _local_names(fn: ast.FunctionDef) -> Set[str]:
    """Parameter and locally-bound names of ``fn`` (for RPL205)."""
    names: Set[str] = set()
    args = fn.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        names.add(arg.arg)
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_flat_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            names.update(_flat_names(node.target))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names.update(_flat_names(node.target))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                names.update(_flat_names(generator.target))
    return names


def _flat_names(target: ast.AST) -> Set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for element in target.elts:
            names |= _flat_names(element)
        return names
    return set()


class _KernelRule(Rule):
    """Base: iterate the ``maybe_njit`` functions of any module."""

    def kernel_findings(self, module: SourceModule, fn: ast.FunctionDef) -> Iterator[Finding]:
        raise NotImplementedError

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for fn in kernel_functions(module):
            yield from self.kernel_findings(module, fn)


@register
class KernelStatements(_KernelRule):
    code = "RPL201"
    name = "kernel-banned-statements"
    invariant = (
        "maybe_njit bodies contain no try/with/yield/await/import/del: the "
        "interpreted fallback would accept them, nopython compilation would "
        "not — the exact 'fallback passes, compiled tier breaks' trap"
    )

    def kernel_findings(self, module: SourceModule, fn: ast.FunctionDef) -> Iterator[Finding]:
        for node in ast.walk(fn):
            if node is fn:
                continue
            if isinstance(node, _BANNED_STATEMENTS):
                label = type(node).__name__.lower()
                yield self.finding(
                    module, node,
                    f"`{label}` inside maybe_njit kernel `{fn.name}` is "
                    "outside the numba nopython subset",
                )


@register
class KernelClosures(_KernelRule):
    code = "RPL202"
    name = "kernel-closures"
    invariant = (
        "maybe_njit bodies define no nested functions or lambdas: closures "
        "capture cell variables the compiler cannot type"
    )

    def kernel_findings(self, module: SourceModule, fn: ast.FunctionDef) -> Iterator[Finding]:
        for node in ast.walk(fn):
            if node is fn:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                label = "lambda" if isinstance(node, ast.Lambda) else f"def {node.name}"
                yield self.finding(
                    module, node,
                    f"nested `{label}` inside maybe_njit kernel `{fn.name}` "
                    "creates a closure the compiled tier cannot type",
                )


@register
class KernelSignature(_KernelRule):
    code = "RPL203"
    name = "kernel-signature"
    invariant = (
        "maybe_njit signatures are plain positional parameters: *args/"
        "**kwargs/keyword-only parameters break nopython call typing"
    )

    def kernel_findings(self, module: SourceModule, fn: ast.FunctionDef) -> Iterator[Finding]:
        args = fn.args
        if args.vararg is not None:
            yield self.finding(
                module, fn,
                f"maybe_njit kernel `{fn.name}` takes *{args.vararg.arg}",
            )
        if args.kwarg is not None:
            yield self.finding(
                module, fn,
                f"maybe_njit kernel `{fn.name}` takes **{args.kwarg.arg}",
            )
        if args.kwonlyargs:
            names = ", ".join(arg.arg for arg in args.kwonlyargs)
            yield self.finding(
                module, fn,
                f"maybe_njit kernel `{fn.name}` has keyword-only "
                f"parameters ({names})",
            )


@register
class KernelLiterals(_KernelRule):
    code = "RPL204"
    name = "kernel-literals"
    invariant = (
        "maybe_njit bodies contain no f-strings and no dict/set literals "
        "or comprehensions — unavailable in cached nopython mode"
    )

    def kernel_findings(self, module: SourceModule, fn: ast.FunctionDef) -> Iterator[Finding]:
        for node in ast.walk(fn):
            if isinstance(node, ast.JoinedStr):
                yield self.finding(
                    module, node,
                    f"f-string inside maybe_njit kernel `{fn.name}`",
                )
            elif isinstance(node, (ast.Dict, ast.DictComp)):
                yield self.finding(
                    module, node,
                    f"dict literal/comprehension inside maybe_njit kernel "
                    f"`{fn.name}`",
                )
            elif isinstance(node, (ast.Set, ast.SetComp)):
                yield self.finding(
                    module, node,
                    f"set literal/comprehension inside maybe_njit kernel "
                    f"`{fn.name}`",
                )


@register
class KernelGlobalMutation(_KernelRule):
    code = "RPL205"
    name = "kernel-global-mutation"
    invariant = (
        "maybe_njit kernels mutate state only through their array "
        "arguments: no `global`, no attribute assignment on module-level "
        "names (invisible to the compiled twin, unpicklable to workers)"
    )

    def kernel_findings(self, module: SourceModule, fn: ast.FunctionDef) -> Iterator[Finding]:
        locals_ = _local_names(fn)
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                yield self.finding(
                    module, node,
                    f"`global` inside maybe_njit kernel `{fn.name}`",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute):
                        root = target.value
                        while isinstance(root, (ast.Attribute, ast.Subscript)):
                            root = root.value
                        if isinstance(root, ast.Name) and root.id not in locals_:
                            yield self.finding(
                                module, target,
                                f"attribute assignment on global `{root.id}` "
                                f"inside maybe_njit kernel `{fn.name}`",
                            )
