"""RPL1xx — draw-order discipline on RNG-consuming modules.

The whole correctness story of this reproduction is that every execution
path (adj vs CSR backends, python vs jit kernel tiers, serial vs parallel)
consumes the exact CPython Mersenne-Twister sequence *in a defined order*.
Both of the repo's worst historical bugs were silent violations of that
invariant that no generic linter flags:

* probabilistic flooding iterated neighbors in ``set`` order, so the CSR
  backend (edge-insertion order) produced a different draw stream than the
  adjacency backend — fixed by routing all forwarding through the
  defined-order ``iter_neighbors``;
* DAPA's horizon BFS walked a ``set``-shaped frontier, so the compiled
  kernel could not replay the Python tier's stream — fixed by switching the
  walk to ``iter_neighbors`` (deliberately versioning the DAPA stream).

These rules machine-check the lesson.  They apply only to the RNG-consuming
modules (``generators/``, ``search/``, ``substrate/``, ``simulation/``);
the kernel files are exempt (they replay an exported MT19937 state array
and never touch Python sets).

``RPL101``
    No iteration over a ``set``/``frozenset`` (literal, comprehension,
    constructor call, set-returning API such as ``Graph.neighbor_set``, or
    a local consistently bound to one).  Set order is salted per process —
    iterate a defined-order sequence (``iter_neighbors``, ``sorted(...)``).
``RPL102``
    No iteration over a ``dict`` or dict view (``.keys()``/``.values()``/
    ``.items()``) without justification.  Insertion order is deterministic
    per run but *history-dependent*; a justified suppression documents why
    the insertion history itself is reproducible.
``RPL103``
    No ambient randomness: the ``random`` module and ``numpy.random`` are
    banned — every draw must flow through :class:`repro.core.rng.RandomSource`
    so streams stay seedable, spawnable, and kernel-splicable.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.staticcheck.model import Finding, SourceModule, in_rng_scope
from repro.staticcheck.registry import Rule, register

__all__ = ["UnorderedSetIteration", "DictIteration", "AmbientRandomness"]

#: Wrappers that realise their argument's iteration order into a sequence —
#: consuming an unordered collection through these is order-sensitive.
_ORDER_SENSITIVE_WRAPPERS = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})

#: Known set-returning APIs in this codebase (``Graph.neighbor_set``) and
#: the stdlib set algebra methods.
_SET_RETURNING_METHODS = frozenset(
    {"neighbor_set", "union", "intersection", "difference", "symmetric_difference"}
)

_DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _unordered_kind(
    node: ast.AST, bindings: Dict[str, str]
) -> Optional[str]:
    """Classify an expression as ``"set"``, ``"dict"``, ``"dict view"`` or None."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name in ("set", "frozenset"):
            return "set"
        if name == "dict":
            return "dict"
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _SET_RETURNING_METHODS:
                return "set"
            if node.func.attr in _DICT_VIEW_METHODS:
                return "dict view"
    if isinstance(node, ast.Name):
        return bindings.get(node.id)
    return None


def _scope_bindings(scope: ast.AST) -> Dict[str, str]:
    """Names consistently bound to an unordered collection in this scope.

    Conservative: a name qualifies only when *every* assignment to it in
    the scope binds a set-ish/dict-ish expression; any other binding (or a
    loop/arg binding) removes it from tracking.
    """
    bindings: Dict[str, str] = {}
    poisoned: set = set()
    body = scope.body if isinstance(scope, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)) else []
    for node in body:
        for child in ast.walk(node):
            # Don't descend into nested function scopes.
            if child is not node and isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                for sub in ast.walk(child):
                    for target_name in _assigned_names(sub):
                        poisoned.add(target_name)
                continue
            if isinstance(child, (ast.Assign, ast.AnnAssign)):
                value = child.value
                targets = child.targets if isinstance(child, ast.Assign) else [child.target]
                kind = _unordered_kind(value, {}) if value is not None else None
                for target in targets:
                    if isinstance(target, ast.Name):
                        if kind in ("set", "dict"):
                            if target.id in bindings and bindings[target.id] != kind:
                                poisoned.add(target.id)
                            bindings.setdefault(target.id, kind)
                        else:
                            poisoned.add(target.id)
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                for target_name in _target_names(child.target):
                    poisoned.add(target_name)
            elif isinstance(child, ast.AugAssign):
                if isinstance(child.target, ast.Name):
                    poisoned.add(child.target.id)
    for name in poisoned:
        bindings.pop(name, None)
    return bindings


def _assigned_names(node: ast.AST) -> List[str]:
    if isinstance(node, ast.Assign):
        names: List[str] = []
        for target in node.targets:
            names.extend(_target_names(target))
        return names
    if isinstance(node, ast.AnnAssign):
        return _target_names(node.target)
    return []


def _target_names(target: ast.AST) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []


def _iter_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _consumption_sites(
    scope: ast.AST, bindings: Dict[str, str]
) -> Iterator[Tuple[ast.AST, ast.AST, str, str]]:
    """Yield ``(anchor, expr, kind, how)`` for order-sensitive consumptions."""
    own_functions = {
        node
        for node in ast.walk(scope)
        if node is not scope and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }

    def in_nested_function(node: ast.AST) -> bool:
        return any(
            node in set(ast.walk(fn)) for fn in own_functions
        )

    for node in ast.walk(scope):
        if node is not scope and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, (ast.For, ast.AsyncFor)):
            kind = _unordered_kind(node.iter, bindings)
            if kind and not in_nested_function(node):
                yield node, node.iter, kind, "for-loop iteration"
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                kind = _unordered_kind(generator.iter, bindings)
                if kind and not in_nested_function(node):
                    yield node, generator.iter, kind, "comprehension iteration"
        elif isinstance(node, ast.Call):
            name = _call_name(node)
            if name in _ORDER_SENSITIVE_WRAPPERS and node.args:
                kind = _unordered_kind(node.args[0], bindings)
                if kind and not in_nested_function(node):
                    yield node, node.args[0], kind, f"{name}(...) materialisation"


class _DrawOrderRule(Rule):
    """Shared scope gate for the RPL10x family."""

    def applies(self, module: SourceModule) -> bool:
        return in_rng_scope(module)


@register
class UnorderedSetIteration(_DrawOrderRule):
    code = "RPL101"
    name = "set-iteration-order"
    invariant = (
        "RNG-consuming code never iterates a set: set order is undefined, so "
        "any draw made during (or after a list built by) the iteration "
        "diverges across backends — use iter_neighbors or sorted(...)"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for scope in _iter_scopes(module.tree):
            bindings = {
                name: kind
                for name, kind in _scope_bindings(scope).items()
                if kind == "set"
            }
            for anchor, expr, kind, how in _consumption_sites(scope, bindings):
                if kind != "set":
                    continue
                yield self.finding(
                    module, expr,
                    f"{how} over a set has no defined order on a draw path; "
                    "iterate a defined-order sequence (iter_neighbors, "
                    "sorted(...)) instead",
                )


@register
class DictIteration(_DrawOrderRule):
    code = "RPL102"
    name = "dict-iteration-order"
    invariant = (
        "RNG-consuming code iterates dicts/dict views only with a written "
        "justification: insertion order is deterministic but history-"
        "dependent, so the insertion history must itself be reproducible"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for scope in _iter_scopes(module.tree):
            bindings = {
                name: kind
                for name, kind in _scope_bindings(scope).items()
                if kind == "dict"
            }
            for anchor, expr, kind, how in _consumption_sites(scope, bindings):
                if kind not in ("dict", "dict view"):
                    continue
                yield self.finding(
                    module, expr,
                    f"{how} over a {kind} follows insertion order, which is "
                    "history-dependent on a draw path; sort it, or suppress "
                    "with a justification explaining why the insertion "
                    "history is reproducible",
                )


@register
class AmbientRandomness(_DrawOrderRule):
    code = "RPL103"
    name = "ambient-randomness"
    invariant = (
        "all draws flow through RandomSource: the random module and "
        "numpy.random are banned in RNG-consuming modules (unseedable, "
        "unspawnable, invisible to the kernel tier's stream splice)"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            module, node,
                            "import of the ambient `random` module; draw "
                            "through RandomSource instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        module, node,
                        "import from the ambient `random` module; draw "
                        "through RandomSource instead",
                    )
                elif node.module in ("numpy", "numpy.random") and any(
                    alias.name == "random" or node.module == "numpy.random"
                    for alias in node.names
                ):
                    yield self.finding(
                        module, node,
                        "import of numpy.random; use "
                        "RandomSource.numpy_generator() instead",
                    )
            elif isinstance(node, ast.Attribute):
                if (
                    node.attr == "random"
                    and isinstance(node.value, ast.Name)
                    and node.value.id in ("np", "numpy")
                ):
                    yield self.finding(
                        module, node,
                        "numpy.random access; use "
                        "RandomSource.numpy_generator() instead",
                    )
