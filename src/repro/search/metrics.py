"""Search-efficiency curves and the NF↔RW message normalization.

The paper's Figs. 6–12 all plot the *average number of hits* (distinct peers
reached per query) against the query TTL ``τ``, averaged over many randomly
chosen source peers.  This module turns individual
:class:`~repro.search.base.QueryResult` objects into those curves:

* :func:`search_curve` — run ``queries`` independent queries of one algorithm
  on one graph and average the per-TTL hits and messages;
* :func:`normalized_walk_curve` — the paper's RW evaluation: for every τ the
  random walk is granted a number of hops equal to the number of *messages*
  an NF query with that τ incurs, so the two algorithms are compared at equal
  cost;
* :func:`average_search_curve` — average a set of curves (one per topology
  realization) into a single mean curve with spread.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.backend import GraphLike
from repro.core.csr import CSRGraph, batch_flood_curves
from repro.core.errors import SearchError
from repro.core.graph import Graph
from repro.core.rng import RandomSource, ensure_source
from repro.telemetry.collector import active_telemetry
from repro.core.types import NodeId
from repro.kernels.dispatch import kernel_query_ready
from repro.search.base import SearchAlgorithm
from repro.search.flooding import FloodingSearch
from repro.search.normalized_flooding import NormalizedFloodingSearch
from repro.search.probabilistic_flooding import ProbabilisticFloodingSearch
from repro.search.random_walk import RandomWalkSearch

__all__ = [
    "SearchCurve",
    "search_curve",
    "normalized_walk_curve",
    "average_search_curve",
    "select_sources",
]


@dataclass
class SearchCurve:
    """Average hits and messages as a function of TTL.

    Attributes
    ----------
    algorithm:
        Name of the search algorithm.
    ttl_values:
        The TTL values the curve is sampled at (ascending).
    mean_hits:
        ``mean_hits[i]`` is the average number of distinct peers reached with
        ``ttl_values[i]``.
    mean_messages:
        Average number of messages per query at each TTL.
    std_hits:
        Standard deviation of hits across queries (or across realizations,
        for averaged curves).
    queries:
        Number of queries (or curves) averaged.
    metadata:
        Free-form provenance (topology parameters, k_min used, ...).
    """

    algorithm: str
    ttl_values: List[int]
    mean_hits: List[float]
    mean_messages: List[float]
    std_hits: List[float] = field(default_factory=list)
    queries: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    def hits_at(self, ttl: int) -> float:
        """Return the mean hits at TTL ``ttl`` (must be one of ``ttl_values``)."""
        try:
            index = self.ttl_values.index(ttl)
        except ValueError:
            raise SearchError(f"ttl {ttl} is not part of this curve") from None
        return self.mean_hits[index]

    def messages_at(self, ttl: int) -> float:
        """Return the mean messages at TTL ``ttl``."""
        try:
            index = self.ttl_values.index(ttl)
        except ValueError:
            raise SearchError(f"ttl {ttl} is not part of this curve") from None
        return self.mean_messages[index]

    def final_hits(self) -> float:
        """Return the mean hits at the largest TTL of the curve."""
        return self.mean_hits[-1]

    def as_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly representation."""
        return {
            "algorithm": self.algorithm,
            "ttl_values": list(self.ttl_values),
            "mean_hits": list(self.mean_hits),
            "mean_messages": list(self.mean_messages),
            "std_hits": list(self.std_hits),
            "queries": self.queries,
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SearchCurve":
        """Rebuild a curve from :meth:`as_dict` output."""
        return cls(
            algorithm=str(payload["algorithm"]),
            ttl_values=[int(v) for v in payload["ttl_values"]],
            mean_hits=[float(v) for v in payload["mean_hits"]],
            mean_messages=[float(v) for v in payload["mean_messages"]],
            std_hits=[float(v) for v in payload.get("std_hits", [])],
            queries=int(payload.get("queries", 0)),
            metadata=dict(payload.get("metadata", {})),
        )


def select_sources(
    graph: GraphLike, queries: int, rng: "RandomSource | int | None" = None
) -> List[NodeId]:
    """Pick ``queries`` random source peers (with replacement) from ``graph``."""
    source = ensure_source(rng)
    nodes = graph.nodes()
    if not nodes:
        raise SearchError("cannot select sources from an empty graph")
    return [nodes[source.randint(0, len(nodes) - 1)] for _ in range(queries)]


def search_curve(
    graph: GraphLike,
    algorithm: SearchAlgorithm,
    ttl_values: Sequence[int],
    queries: int = 100,
    rng: "RandomSource | int | None" = None,
    sources: Optional[Sequence[NodeId]] = None,
) -> SearchCurve:
    """Average hits/messages of ``algorithm`` over random queries on ``graph``.

    A single simulation per source is run at the maximum TTL; the per-TTL
    prefixes of that run provide the values for all smaller TTLs (which is
    how the algorithms are defined: a τ=4 flood is the first four hops of a
    τ=10 flood).

    Examples
    --------
    >>> from repro.search.flooding import FloodingSearch
    >>> g = Graph.complete(10)
    >>> curve = search_curve(g, FloodingSearch(), [1, 2], queries=5, rng=1)
    >>> curve.mean_hits[0]
    9.0
    """
    if not ttl_values:
        raise SearchError("ttl_values must not be empty")
    ttl_list = sorted(int(value) for value in ttl_values)
    if ttl_list[0] < 0:
        raise SearchError("ttl values must be non-negative")
    max_ttl = ttl_list[-1]

    random_source = ensure_source(rng)
    if sources is None:
        sources = select_sources(graph, queries, random_source.spawn("sources"))
    query_rng = random_source.spawn("queries")

    telemetry = active_telemetry()
    with telemetry.span("search"):
        if type(algorithm) is FloodingSearch and isinstance(graph, CSRGraph):
            # Batched CSR fast path: one vectorized kernel call covers the whole
            # query batch.  Flooding is deterministic (``query_rng`` is never
            # drawn from), so the results — and the RNG stream position — are
            # identical to the per-query loop below.
            rows = []
            for source_node in sources:
                # Same validation (and the same SearchError) the generic path
                # gets from algorithm.run() — backends must match on the error
                # path too.
                algorithm._validate(graph, source_node, max_ttl)
                rows.append(graph._row_of(source_node))
            batch_hits, batch_messages = batch_flood_curves(graph, rows, max_ttl)
            base_hits = 1 if algorithm.count_source_as_hit else 0
            columns = np.array(ttl_list)
            # Force C order: the reduction order of mean/std must match the
            # row-major matrices of the generic path bit-for-bit.
            hits_matrix = (batch_hits[:, columns] + base_hits).astype(float, order="C")
            messages_matrix = batch_messages[:, columns].astype(float, order="C")
        elif (
            isinstance(graph, CSRGraph)
            and len(sources) > 0
            and type(algorithm) in (
                NormalizedFloodingSearch,
                ProbabilisticFloodingSearch,
                RandomWalkSearch,
            )
            and kernel_query_ready(query_rng)
        ):
            # Batched kernel-tier fast path (throughput mode): the whole query
            # batch runs back-to-back inside one compiled call, consuming
            # ``query_rng``'s stream in query order — draw-identical to the
            # per-query loop below, without its per-call overhead.
            batch_hits, batch_messages = _stochastic_batch_curves(
                graph, algorithm, sources, max_ttl, query_rng
            )
            columns = np.array(ttl_list)
            hits_matrix = batch_hits[:, columns].astype(float, order="C")
            messages_matrix = batch_messages[:, columns].astype(float, order="C")
        else:
            hits_matrix = np.zeros((len(sources), len(ttl_list)))
            messages_matrix = np.zeros((len(sources), len(ttl_list)))
            for row, source_node in enumerate(sources):
                result = algorithm.run(graph, source_node, max_ttl, rng=query_rng)
                for column, ttl in enumerate(ttl_list):
                    hits_matrix[row, column] = result.hits_at(ttl)
                    messages_matrix[row, column] = result.messages_at(ttl)

    if telemetry.enabled:
        telemetry.count("search.queries", len(sources))
        telemetry.count(
            f"search.queries.{algorithm.algorithm_name}", len(sources)
        )
        # Total messages across the batch at the largest TTL measured.
        telemetry.count(
            "search.messages.total", float(messages_matrix[:, -1].sum())
        )
    return SearchCurve(
        algorithm=algorithm.algorithm_name,
        ttl_values=ttl_list,
        mean_hits=[float(v) for v in hits_matrix.mean(axis=0)],
        mean_messages=[float(v) for v in messages_matrix.mean(axis=0)],
        std_hits=[float(v) for v in hits_matrix.std(axis=0)],
        queries=len(sources),
        metadata={"graph_nodes": graph.number_of_nodes},
    )


def _stochastic_batch_curves(
    graph: CSRGraph,
    algorithm: SearchAlgorithm,
    sources: Sequence[NodeId],
    max_ttl: int,
    query_rng: RandomSource,
) -> "tuple[np.ndarray, np.ndarray]":
    """Kernel-tier curves for a whole NF/PF/RW query batch.

    Sources are validated up front (same :class:`SearchError` the generic
    path raises from ``algorithm.run``); the batch kernels then advance
    ``query_rng``'s stream exactly as the per-query loop would have.
    """
    from repro.kernels.search import nf_curve_batch, pf_curve_batch, rw_curve_batch

    for source_node in sources:
        algorithm._validate(graph, source_node, max_ttl)
    if type(algorithm) is NormalizedFloodingSearch:
        branching = algorithm.k_min
        if branching is None:
            branching = max(1, graph.min_degree())
        return nf_curve_batch(
            graph, sources, max_ttl, query_rng, branching,
            algorithm.count_source_as_hit,
        )
    if type(algorithm) is ProbabilisticFloodingSearch:
        return pf_curve_batch(
            graph, sources, max_ttl, query_rng, algorithm.forward_probability,
            algorithm.count_source_as_hit,
        )
    return rw_curve_batch(
        graph, sources, [max_ttl] * len(sources), query_rng, algorithm.walkers,
        algorithm.allow_backtracking, algorithm.count_source_as_hit,
    )


def normalized_walk_curve(
    graph: GraphLike,
    ttl_values: Sequence[int],
    k_min: Optional[int] = None,
    queries: int = 100,
    rng: "RandomSource | int | None" = None,
    walkers: int = 1,
    sources: Optional[Sequence[NodeId]] = None,
) -> SearchCurve:
    """RW hits-vs-τ curve with the paper's NF message-count normalization.

    For every TTL value τ, an NF query is simulated to measure how many
    messages it sends; the random walk is then allowed exactly that many
    hops, and its hit count is reported against τ.  This reproduces the
    methodology of Figs. 11–12 ("we equated τ of RW searches to the number of
    messages incurred by the NF searches in the same scenario").

    Examples
    --------
    >>> g = Graph.complete(20)
    >>> curve = normalized_walk_curve(g, [2, 4], k_min=2, queries=5, rng=3)
    >>> curve.algorithm
    'rw'
    >>> len(curve.mean_hits)
    2
    """
    if not ttl_values:
        raise SearchError("ttl_values must not be empty")
    ttl_list = sorted(int(value) for value in ttl_values)
    max_ttl = ttl_list[-1]

    random_source = ensure_source(rng)
    if sources is None:
        sources = select_sources(graph, queries, random_source.spawn("sources"))
    nf_rng = random_source.spawn("nf")
    rw_rng = random_source.spawn("rw")

    nf_search = NormalizedFloodingSearch(k_min=k_min)
    rw_search = RandomWalkSearch(walkers=walkers)

    telemetry = active_telemetry()
    with telemetry.span("search"):
        if (
            isinstance(graph, CSRGraph)
            and len(sources) > 0
            and kernel_query_ready(nf_rng)
            and kernel_query_ready(rw_rng)
        ):
            # Batched kernel-tier fast path: all NF budget measurements run in
            # one compiled call on ``nf_rng``, then all (per-query-budgeted)
            # walks in one call on ``rw_rng``.  Each stream is consumed in the
            # same query order as the interleaved reference loop, so results
            # and both stream positions are identical.
            from repro.kernels.search import nf_curve_batch, rw_curve_batch

            for source_node in sources:
                nf_search._validate(graph, source_node, max_ttl)
            branching = k_min if k_min is not None else max(1, graph.min_degree())
            _nf_hits, nf_messages = nf_curve_batch(
                graph, sources, max_ttl, nf_rng, branching, False
            )
            budgets = np.maximum(nf_messages[:, np.array(ttl_list)], 1)
            walk_ttls = budgets.max(axis=1)
            walk_hits, walk_messages = rw_curve_batch(
                graph, sources, walk_ttls, rw_rng, walkers, False, False
            )
            rows = np.arange(len(sources))[:, np.newaxis]
            hits_matrix = walk_hits[rows, budgets].astype(float, order="C")
            messages_matrix = walk_messages[rows, budgets].astype(float, order="C")
        else:
            hits_matrix = np.zeros((len(sources), len(ttl_list)))
            messages_matrix = np.zeros((len(sources), len(ttl_list)))
            for row, source_node in enumerate(sources):
                nf_result = nf_search.run(graph, source_node, max_ttl, rng=nf_rng)
                budgets = [max(1, nf_result.messages_at(ttl)) for ttl in ttl_list]
                walk_result = rw_search.run(graph, source_node, max(budgets), rng=rw_rng)
                for column, budget in enumerate(budgets):
                    hits_matrix[row, column] = walk_result.hits_at(budget)
                    messages_matrix[row, column] = walk_result.messages_at(budget)

    if telemetry.enabled:
        telemetry.count("search.queries", len(sources))
        telemetry.count("search.queries.rw", len(sources))
        telemetry.count(
            "search.messages.total", float(messages_matrix[:, -1].sum())
        )
    return SearchCurve(
        algorithm="rw",
        ttl_values=ttl_list,
        mean_hits=[float(v) for v in hits_matrix.mean(axis=0)],
        mean_messages=[float(v) for v in messages_matrix.mean(axis=0)],
        std_hits=[float(v) for v in hits_matrix.std(axis=0)],
        queries=len(sources),
        metadata={
            "graph_nodes": graph.number_of_nodes,
            "normalization": "nf_messages",
            "k_min": k_min,
            "walkers": walkers,
        },
    )


def average_search_curve(curves: Sequence[SearchCurve]) -> SearchCurve:
    """Average several curves (e.g. one per topology realization) into one.

    All curves must share the same algorithm name and TTL grid.

    Examples
    --------
    >>> a = SearchCurve("fl", [1, 2], [1.0, 2.0], [1.0, 3.0], queries=10)
    >>> b = SearchCurve("fl", [1, 2], [3.0, 4.0], [2.0, 5.0], queries=10)
    >>> avg = average_search_curve([a, b])
    >>> avg.mean_hits
    [2.0, 3.0]
    """
    if not curves:
        raise SearchError("cannot average an empty list of curves")
    first = curves[0]
    for curve in curves[1:]:
        if curve.algorithm != first.algorithm:
            raise SearchError("cannot average curves of different algorithms")
        if curve.ttl_values != first.ttl_values:
            raise SearchError("cannot average curves with different TTL grids")
    hits = np.array([curve.mean_hits for curve in curves])
    messages = np.array([curve.mean_messages for curve in curves])
    return SearchCurve(
        algorithm=first.algorithm,
        ttl_values=list(first.ttl_values),
        mean_hits=[float(v) for v in hits.mean(axis=0)],
        mean_messages=[float(v) for v in messages.mean(axis=0)],
        std_hits=[float(v) for v in hits.std(axis=0)],
        queries=sum(curve.queries for curve in curves),
        metadata={"realizations": len(curves), **dict(first.metadata)},
    )
