"""Probabilistic flooding search (extension; paper §II-A pointer).

Among the unstructured-search literature the paper surveys are
"probabilistic flooding techniques" (Kumar et al., Gkantsidis et al.): every
node forwards the query to each neighbor independently with probability
``p`` instead of to all of them.  ``p = 1`` is plain flooding; lowering ``p``
trades coverage for messages, sitting between FL and NF/RW on the paper's
cost spectrum.  The implementation mirrors :class:`FloodingSearch`
(duplicate suppression, per-TTL curves) and registers itself as ``"pf"`` so
the harness and CLI can sweep it alongside the paper's three algorithms.

Forwarding coins are drawn per neighbor in the *defined* neighbor order
(edge insertion order, via :meth:`~repro.core.graph.Graph.iter_neighbors`)
rather than set order, so a seeded query is byte-identical on the mutable
``adj`` backend and the frozen ``csr`` backend.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.core.csr import CSRGraph
from repro.core.errors import SearchError
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.core.types import NodeId
from repro.kernels.dispatch import kernel_query_ready
from repro.search.base import QueryResult, SearchAlgorithm

__all__ = ["ProbabilisticFloodingSearch", "probabilistic_flood"]


class ProbabilisticFloodingSearch(SearchAlgorithm):
    """TTL-bounded flooding where each forward happens with probability ``p``.

    Parameters
    ----------
    forward_probability:
        Per-neighbor forwarding probability ``p`` in ``(0, 1]``.
    count_source_as_hit:
        Whether the source counts as a hit (default ``False``).

    Examples
    --------
    >>> g = Graph.complete(6)
    >>> full = ProbabilisticFloodingSearch(1.0).run(g, 0, 1, rng=1)
    >>> full.hits
    5
    """

    algorithm_name = "pf"

    def __init__(
        self, forward_probability: float = 0.5, count_source_as_hit: bool = False
    ) -> None:
        if not 0.0 < forward_probability <= 1.0:
            raise SearchError("forward_probability must be in (0, 1]")
        self.forward_probability = forward_probability
        self.count_source_as_hit = count_source_as_hit

    def run(
        self,
        graph: Graph,
        source: NodeId,
        ttl: int,
        rng: "RandomSource | int | None" = None,
        target: Optional[NodeId] = None,
    ) -> QueryResult:
        self._validate(graph, source, ttl)
        random_source = self._resolve_rng(rng)
        probability = self.forward_probability

        if isinstance(graph, CSRGraph) and kernel_query_ready(random_source):
            # Kernel tier: same coins in the same neighbor order.
            from repro.kernels.search import pf_query

            hits, messages, visited, found_at = pf_query(
                graph, source, ttl, random_source, probability,
                self.count_source_as_hit, target,
            )
            return QueryResult(
                algorithm=self.algorithm_name,
                source=source,
                ttl=ttl,
                hits_per_ttl=hits,
                messages_per_ttl=messages,
                visited=visited,
                target=target,
                found_at=found_at,
            )

        base_hits = 1 if self.count_source_as_hit else 0
        hits_per_ttl: List[int] = [base_hits]
        messages_per_ttl: List[int] = [0]
        visited = {source}
        frontier: deque = deque([(source, None)])
        found_at: Optional[int] = 0 if target == source else None

        cumulative_hits = base_hits
        cumulative_messages = 0

        for hop in range(1, ttl + 1):
            next_frontier: deque = deque()
            while frontier:
                node, previous = frontier.popleft()
                # Iterate in the defined neighbor order (edge insertion
                # order), NOT set order: each neighbor consumes one
                # forwarding coin, so the iteration order is part of the
                # seeded behaviour and must be identical on the mutable and
                # the frozen CSR backend.
                for neighbor in graph.iter_neighbors(node):
                    if neighbor == previous:
                        continue
                    if probability < 1.0 and random_source.random() >= probability:
                        continue
                    cumulative_messages += 1
                    if neighbor in visited:
                        continue
                    visited.add(neighbor)
                    cumulative_hits += 1
                    if target is not None and neighbor == target and found_at is None:
                        found_at = hop
                    next_frontier.append((neighbor, node))
            frontier = next_frontier
            hits_per_ttl.append(cumulative_hits)
            messages_per_ttl.append(cumulative_messages)
            if not frontier:
                for _ in range(hop + 1, ttl + 1):
                    hits_per_ttl.append(cumulative_hits)
                    messages_per_ttl.append(cumulative_messages)
                break

        while len(hits_per_ttl) < ttl + 1:
            hits_per_ttl.append(cumulative_hits)
            messages_per_ttl.append(cumulative_messages)

        return QueryResult(
            algorithm=self.algorithm_name,
            source=source,
            ttl=ttl,
            hits_per_ttl=hits_per_ttl,
            messages_per_ttl=messages_per_ttl,
            visited=visited,
            target=target,
            found_at=found_at,
        )


def probabilistic_flood(
    graph: Graph,
    source: NodeId,
    ttl: int,
    forward_probability: float = 0.5,
    rng: "RandomSource | int | None" = None,
    count_source_as_hit: bool = False,
    target: Optional[NodeId] = None,
) -> QueryResult:
    """Run one probabilistic-flooding query and return its result.

    Examples
    --------
    >>> g = Graph.complete(10)
    >>> probabilistic_flood(g, 0, 2, forward_probability=1.0, rng=1).hits
    9
    """
    search = ProbabilisticFloodingSearch(
        forward_probability=forward_probability, count_source_as_hit=count_source_as_hit
    )
    return search.run(graph, source, ttl, rng=rng, target=target)
