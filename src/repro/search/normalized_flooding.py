"""Normalized flooding search (NF, paper §V-A2, after Gkantsidis et al.).

Flooding explodes at hubs: a single high-degree node multiplies the message
count by its degree.  Normalized flooding caps the branching factor at the
*minimum degree* of the network, ``k_min``:

* a node whose degree equals ``k_min`` forwards the query to **all** of its
  neighbors except the one it received it from;
* a node with a larger degree forwards to ``k_min`` **randomly chosen**
  neighbors, again excluding the previous hop;
* the source initiates the query by sending it to ``k_min`` random neighbors
  (or all of them if it has fewer).

Nodes forward a given query at most once (duplicate suppression); duplicate
deliveries still count as messages.  The paper runs NF with ``k_min`` equal
to the construction parameter ``m`` even when deletions (CM) or short
horizons (DAPA) leave a few nodes below ``m``; the ``k_min`` parameter here
defaults to the graph's true minimum degree but can be pinned to ``m`` to
match that choice.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.core.csr import CSRGraph
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.core.types import NodeId
from repro.kernels.dispatch import kernel_query_ready
from repro.search.base import QueryResult, SearchAlgorithm
from repro.telemetry.collector import active_telemetry

__all__ = ["NormalizedFloodingSearch", "normalized_flood"]


class NormalizedFloodingSearch(SearchAlgorithm):
    """TTL-bounded normalized flooding with branching factor ``k_min``.

    Parameters
    ----------
    k_min:
        Branching factor.  ``None`` (default) uses the minimum degree of the
        graph being searched, computed per query; the paper pins it to the
        construction parameter ``m``.
    count_source_as_hit:
        Whether the source counts as a hit (default ``False``).

    Examples
    --------
    >>> g = Graph.complete(6)
    >>> result = NormalizedFloodingSearch(k_min=2).run(g, source=0, ttl=1, rng=1)
    >>> result.hits_per_ttl[1]
    2
    """

    algorithm_name = "nf"

    def __init__(
        self, k_min: Optional[int] = None, count_source_as_hit: bool = False
    ) -> None:
        if k_min is not None and k_min < 1:
            raise ValueError("k_min must be at least 1")
        self.k_min = k_min
        self.count_source_as_hit = count_source_as_hit

    def run(
        self,
        graph: Graph,
        source: NodeId,
        ttl: int,
        rng: "RandomSource | int | None" = None,
        target: Optional[NodeId] = None,
    ) -> QueryResult:
        self._validate(graph, source, ttl)
        random_source = self._resolve_rng(rng)

        branching = self.k_min
        if branching is None:
            branching = max(1, graph.min_degree())

        if isinstance(graph, CSRGraph) and kernel_query_ready(random_source):
            # Kernel tier: same draws, same results, stream spliced back.
            from repro.kernels.search import nf_query

            hits, messages, visited, found_at = nf_query(
                graph, source, ttl, random_source, branching,
                self.count_source_as_hit, target,
            )
            return QueryResult(
                algorithm=self.algorithm_name,
                source=source,
                ttl=ttl,
                hits_per_ttl=hits,
                messages_per_ttl=messages,
                visited=visited,
                target=target,
                found_at=found_at,
            )

        base_hits = 1 if self.count_source_as_hit else 0
        hits_per_ttl: List[int] = [base_hits]
        messages_per_ttl: List[int] = [0]

        visited = {source}
        forwarded = {source}
        frontier: deque = deque()
        found_at: Optional[int] = 0 if target == source else None

        cumulative_hits = base_hits
        cumulative_messages = 0
        telemetry = active_telemetry()

        # Hop 1: the source sends to `branching` random neighbors (or all of
        # them when it has fewer than `branching`).
        if ttl >= 1:
            recipients = self._select_recipients(
                graph, source, previous=None, branching=branching, rng=random_source
            )
            for neighbor in recipients:
                cumulative_messages += 1
                if neighbor not in visited:
                    visited.add(neighbor)
                    cumulative_hits += 1
                    if target is not None and neighbor == target and found_at is None:
                        found_at = 1
                    frontier.append((neighbor, source))
            hits_per_ttl.append(cumulative_hits)
            messages_per_ttl.append(cumulative_messages)
            if telemetry.enabled:
                telemetry.observe("search.frontier", len(frontier))

        for hop in range(2, ttl + 1):
            next_frontier: deque = deque()
            while frontier:
                node, previous = frontier.popleft()
                if node in forwarded:
                    continue
                forwarded.add(node)
                recipients = self._select_recipients(
                    graph, node, previous=previous, branching=branching, rng=random_source
                )
                for neighbor in recipients:
                    cumulative_messages += 1
                    if neighbor in visited:
                        continue
                    visited.add(neighbor)
                    cumulative_hits += 1
                    if target is not None and neighbor == target and found_at is None:
                        found_at = hop
                    next_frontier.append((neighbor, node))
            frontier = next_frontier
            hits_per_ttl.append(cumulative_hits)
            messages_per_ttl.append(cumulative_messages)
            if telemetry.enabled:
                telemetry.observe("search.frontier", len(frontier))
            if not frontier:
                for _ in range(hop + 1, ttl + 1):
                    hits_per_ttl.append(cumulative_hits)
                    messages_per_ttl.append(cumulative_messages)
                break

        # Pad if ttl == 0 requested larger arrays than hops produced.
        while len(hits_per_ttl) < ttl + 1:
            hits_per_ttl.append(cumulative_hits)
            messages_per_ttl.append(cumulative_messages)

        return QueryResult(
            algorithm=self.algorithm_name,
            source=source,
            ttl=ttl,
            hits_per_ttl=hits_per_ttl,
            messages_per_ttl=messages_per_ttl,
            visited=visited,
            target=target,
            found_at=found_at,
        )

    # ------------------------------------------------------------------ #
    # Forwarding rule
    # ------------------------------------------------------------------ #
    @staticmethod
    def _select_recipients(
        graph: Graph,
        node: NodeId,
        previous: Optional[NodeId],
        branching: int,
        rng: RandomSource,
    ) -> List[NodeId]:
        """Apply the NF forwarding rule at ``node``.

        Degree-``k_min`` nodes (and any node with no more than ``branching``
        candidates after excluding the previous hop) forward to every
        candidate; higher-degree nodes forward to ``branching`` random
        candidates.

        The candidate order is the defined neighbor order shared by both
        graph backends (:meth:`~repro.core.graph.Graph.iter_neighbors`), so
        ``rng.sample`` draws identically on a mutable and a frozen graph.
        The source (``previous is None``) forwards over the shared internal
        list without copying; every other node must build the
        previous-excluded candidate list anyway.
        """
        neighbors = graph.iter_neighbors(node)
        if previous is None:
            candidates = neighbors
        else:
            candidates = [neighbor for neighbor in neighbors if neighbor != previous]
        if len(candidates) <= branching:
            return candidates
        return rng.sample(candidates, branching)


def normalized_flood(
    graph: Graph,
    source: NodeId,
    ttl: int,
    k_min: Optional[int] = None,
    rng: "RandomSource | int | None" = None,
    count_source_as_hit: bool = False,
    target: Optional[NodeId] = None,
) -> QueryResult:
    """Run one normalized-flooding query and return its result.

    Examples
    --------
    >>> g = Graph.complete(5)
    >>> normalized_flood(g, 0, 2, k_min=1, rng=3).hits >= 1
    True
    """
    search = NormalizedFloodingSearch(
        k_min=k_min, count_source_as_hit=count_source_as_hit
    )
    return search.run(graph, source, ttl, rng=rng, target=target)
