"""Registry mapping algorithm names to search classes.

Mirrors :mod:`repro.generators.registry` for the search side: the experiment
harness and the CLI refer to algorithms by the short names the paper uses
("fl", "nf", "rw").
"""

from __future__ import annotations

from typing import Any, Dict, List, Type

from repro.core.errors import ConfigurationError
from repro.search.base import SearchAlgorithm
from repro.search.flooding import FloodingSearch
from repro.search.normalized_flooding import NormalizedFloodingSearch
from repro.search.probabilistic_flooding import ProbabilisticFloodingSearch
from repro.search.random_walk import RandomWalkSearch

__all__ = [
    "SEARCH_ALGORITHMS",
    "available_search_algorithms",
    "create_search_algorithm",
    "register_search_algorithm",
]

SEARCH_ALGORITHMS: Dict[str, Type[SearchAlgorithm]] = {
    "fl": FloodingSearch,
    "flooding": FloodingSearch,
    "nf": NormalizedFloodingSearch,
    "normalized_flooding": NormalizedFloodingSearch,
    "rw": RandomWalkSearch,
    "random_walk": RandomWalkSearch,
    "pf": ProbabilisticFloodingSearch,
    "probabilistic_flooding": ProbabilisticFloodingSearch,
}


def available_search_algorithms() -> List[str]:
    """Return the sorted list of registered algorithm names (including aliases)."""
    return sorted(SEARCH_ALGORITHMS)


def register_search_algorithm(name: str, cls: Type[SearchAlgorithm]) -> None:
    """Register a new search algorithm class under ``name``."""
    key = name.lower()
    if key in SEARCH_ALGORITHMS:
        raise ConfigurationError(f"search algorithm {name!r} is already registered")
    if not issubclass(cls, SearchAlgorithm):
        raise ConfigurationError("search classes must subclass SearchAlgorithm")
    SEARCH_ALGORITHMS[key] = cls


def create_search_algorithm(name: str, **parameters: Any) -> SearchAlgorithm:
    """Instantiate the search algorithm registered under ``name``.

    Examples
    --------
    >>> create_search_algorithm("nf", k_min=2).algorithm_name
    'nf'
    """
    key = name.lower()
    if key not in SEARCH_ALGORITHMS:
        raise ConfigurationError(
            f"unknown search algorithm {name!r}; "
            f"available: {', '.join(available_search_algorithms())}"
        )
    return SEARCH_ALGORITHMS[key](**parameters)
