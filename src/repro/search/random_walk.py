"""Random-walk search (RW, paper §V-A3).

The query is handed from node to node: each holder forwards it to one
uniformly random neighbor, excluding the neighbor it came from (a
non-backtracking step), until the target is found or ``τ`` hops have been
taken.  A walk that reaches a dead end (its only neighbor is the previous
hop) terminates early.

Multiple parallel walkers — the "multiple RWs" the paper repeatedly mentions
as the practical variant — are supported via the ``walkers`` parameter; hits
are the distinct nodes visited by *any* walker and messages are the total
hops taken by all of them.

The paper compares RW against NF at equal message cost: "we equated τ of RW
searches to the number of messages incurred by the NF searches in the same
scenario."  That normalization lives in
:func:`repro.search.metrics.normalized_walk_curve`, which drives this module.

Both graph backends are supported with identical seeded behaviour: every
step draws one integer over the same candidate count and maps it onto the
same (insertion-ordered) neighbor list, whether the graph is a mutable
:class:`~repro.core.graph.Graph` or a frozen
:class:`~repro.core.csr.CSRGraph`.  For throughput-mode simulations that do
not need stream-identity, :func:`repro.core.csr.batch_random_walks` advances
many walkers per vectorized step.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.csr import CSRGraph
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.core.types import NodeId
from repro.kernels.dispatch import kernel_query_ready
from repro.search.base import QueryResult, SearchAlgorithm

__all__ = ["RandomWalkSearch", "random_walk"]


class RandomWalkSearch(SearchAlgorithm):
    """TTL-bounded (non-backtracking) random-walk search.

    Parameters
    ----------
    walkers:
        Number of parallel walkers launched by the source (default 1).
    count_source_as_hit:
        Whether the source counts as a hit (default ``False``).
    allow_backtracking:
        If ``True`` the walker may return to the node it came from; the paper
        excludes the previous hop, which is the default here.

    Examples
    --------
    >>> g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    >>> result = RandomWalkSearch().run(g, source=0, ttl=3, rng=1)
    >>> result.hits
    3
    """

    algorithm_name = "rw"

    def __init__(
        self,
        walkers: int = 1,
        count_source_as_hit: bool = False,
        allow_backtracking: bool = False,
    ) -> None:
        if walkers < 1:
            raise ValueError("walkers must be at least 1")
        self.walkers = walkers
        self.count_source_as_hit = count_source_as_hit
        self.allow_backtracking = allow_backtracking

    def run(
        self,
        graph: Graph,
        source: NodeId,
        ttl: int,
        rng: "RandomSource | int | None" = None,
        target: Optional[NodeId] = None,
    ) -> QueryResult:
        self._validate(graph, source, ttl)
        random_source = self._resolve_rng(rng)

        if isinstance(graph, CSRGraph) and kernel_query_ready(random_source):
            # Kernel tier: one _randbelow per step, walker-index order.
            from repro.kernels.search import rw_query

            hits, messages, visited, found_at = rw_query(
                graph, source, ttl, random_source, self.walkers,
                self.allow_backtracking, self.count_source_as_hit, target,
            )
            return QueryResult(
                algorithm=self.algorithm_name,
                source=source,
                ttl=ttl,
                hits_per_ttl=hits,
                messages_per_ttl=messages,
                visited=visited,
                target=target,
                found_at=found_at,
            )

        base_hits = 1 if self.count_source_as_hit else 0
        visited = {source}
        hits_per_ttl: List[int] = [base_hits]
        messages_per_ttl: List[int] = [0]
        found_at: Optional[int] = 0 if target == source else None

        cumulative_hits = base_hits
        cumulative_messages = 0

        # Walker state: (current node, previous node, alive flag).
        walker_positions: List[NodeId] = [source] * self.walkers
        walker_previous: List[Optional[NodeId]] = [None] * self.walkers
        walker_alive: List[bool] = [True] * self.walkers

        for hop in range(1, ttl + 1):
            for index in range(self.walkers):
                if not walker_alive[index]:
                    continue
                current = walker_positions[index]
                previous = walker_previous[index]
                # The candidate set is the neighbor list minus the previous
                # hop.  Instead of materialising that filtered list every
                # step, draw an index into it and map the index back onto
                # the shared neighbor list (skipping the previous hop's
                # position) — same draw, same neighbor, no allocation.
                neighbors = graph.iter_neighbors(current)
                exclude_position = -1
                if not self.allow_backtracking and previous is not None:
                    try:
                        exclude_position = neighbors.index(previous)
                    except ValueError:  # pragma: no cover - previous is adjacent
                        exclude_position = -1
                candidate_count = len(neighbors) - (1 if exclude_position >= 0 else 0)
                if candidate_count == 0:
                    walker_alive[index] = False
                    continue
                choice = random_source.randint(0, candidate_count - 1)
                if 0 <= exclude_position <= choice:
                    choice += 1
                next_node = neighbors[choice]
                cumulative_messages += 1
                walker_previous[index] = current
                walker_positions[index] = next_node
                if next_node not in visited:
                    visited.add(next_node)
                    cumulative_hits += 1
                    if target is not None and next_node == target and found_at is None:
                        found_at = hop
            hits_per_ttl.append(cumulative_hits)
            messages_per_ttl.append(cumulative_messages)
            if not any(walker_alive):
                for _ in range(hop + 1, ttl + 1):
                    hits_per_ttl.append(cumulative_hits)
                    messages_per_ttl.append(cumulative_messages)
                break

        while len(hits_per_ttl) < ttl + 1:
            hits_per_ttl.append(cumulative_hits)
            messages_per_ttl.append(cumulative_messages)

        return QueryResult(
            algorithm=self.algorithm_name,
            source=source,
            ttl=ttl,
            hits_per_ttl=hits_per_ttl,
            messages_per_ttl=messages_per_ttl,
            visited=visited,
            target=target,
            found_at=found_at,
        )


def random_walk(
    graph: Graph,
    source: NodeId,
    ttl: int,
    walkers: int = 1,
    rng: "RandomSource | int | None" = None,
    count_source_as_hit: bool = False,
    target: Optional[NodeId] = None,
    allow_backtracking: bool = False,
) -> QueryResult:
    """Run one random-walk query and return its result.

    Examples
    --------
    >>> g = Graph.complete(10)
    >>> random_walk(g, 0, 5, rng=7).messages
    5
    """
    search = RandomWalkSearch(
        walkers=walkers,
        count_source_as_hit=count_source_as_hit,
        allow_backtracking=allow_backtracking,
    )
    return search.run(graph, source, ttl, rng=rng, target=target)
