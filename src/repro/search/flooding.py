"""Flooding search (FL, paper §V-A1).

The source sends the query to all of its neighbors; every node that receives
the query for the first time forwards it to all of *its* neighbors except the
one it came from; the process stops after ``τ`` hops.  Nodes forward a given
query at most once (standard Gnutella duplicate suppression via message
identifiers), but duplicate deliveries still count as messages — that is
exactly the messaging overhead the paper calls unscalable.

Because FL deterministically performs "a complete sweep of all the nodes
within a τ hop distance from the source", its hits-vs-τ curve is simply the
cumulative BFS ball size around the source, which is how it is computed here
(one BFS gives the entire curve).  On a frozen :class:`~repro.core.csr.CSRGraph`
the BFS runs through the vectorized :func:`~repro.core.csr.flood_curve`
kernel — a handful of NumPy frontier operations per hop instead of a Python
per-edge loop — and produces identical results (pinned by
``tests/test_backend_equivalence.py``).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.core.csr import CSRGraph, flood_curve
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.core.types import NodeId
from repro.search.base import QueryResult, SearchAlgorithm
from repro.telemetry.collector import active_telemetry

__all__ = ["FloodingSearch", "flood"]


class FloodingSearch(SearchAlgorithm):
    """TTL-bounded flooding (broadcast) search.

    Parameters
    ----------
    count_source_as_hit:
        Whether the source node itself is included in the hit counts.  The
        paper counts peers discovered by the query, so the default is
        ``False``.

    Examples
    --------
    >>> g = Graph.from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 4)])
    >>> result = FloodingSearch().run(g, source=0, ttl=2)
    >>> result.hits_per_ttl
    [0, 2, 4]
    """

    algorithm_name = "fl"

    def __init__(self, count_source_as_hit: bool = False) -> None:
        self.count_source_as_hit = count_source_as_hit

    def run(
        self,
        graph: Graph,
        source: NodeId,
        ttl: int,
        rng: "RandomSource | int | None" = None,
        target: Optional[NodeId] = None,
    ) -> QueryResult:
        self._validate(graph, source, ttl)
        if isinstance(graph, CSRGraph):
            return self._run_csr(graph, source, ttl, target)

        base_hits = 1 if self.count_source_as_hit else 0
        hits_per_ttl: List[int] = [base_hits]
        messages_per_ttl: List[int] = [0]

        visited = {source}
        # Each frontier entry is (node, previous_hop); the previous hop is
        # excluded from forwarding, as in the paper's description.
        frontier: deque = deque([(source, None)])
        found_at: Optional[int] = 0 if target == source else None

        cumulative_hits = base_hits
        cumulative_messages = 0
        telemetry = active_telemetry()

        for hop in range(1, ttl + 1):
            next_frontier: deque = deque()
            while frontier:
                node, previous = frontier.popleft()
                for neighbor in graph.iter_neighbors(node):
                    if neighbor == previous:
                        continue
                    cumulative_messages += 1
                    if neighbor in visited:
                        continue
                    visited.add(neighbor)
                    cumulative_hits += 1
                    if target is not None and neighbor == target and found_at is None:
                        found_at = hop
                    next_frontier.append((neighbor, node))
            frontier = next_frontier
            if telemetry.enabled:
                telemetry.observe("search.frontier", len(frontier))
            hits_per_ttl.append(cumulative_hits)
            messages_per_ttl.append(cumulative_messages)
            if not frontier:
                # The flood has covered its connected component; the curve is
                # flat from here on, so fill the remaining TTL slots.
                for _ in range(hop + 1, ttl + 1):
                    hits_per_ttl.append(cumulative_hits)
                    messages_per_ttl.append(cumulative_messages)
                break

        return QueryResult(
            algorithm=self.algorithm_name,
            source=source,
            ttl=ttl,
            hits_per_ttl=hits_per_ttl,
            messages_per_ttl=messages_per_ttl,
            visited=visited,
            target=target,
            found_at=found_at,
        )

    # ------------------------------------------------------------------ #
    # CSR fast path
    # ------------------------------------------------------------------ #
    def _run_csr(
        self, graph: CSRGraph, source: NodeId, ttl: int, target: Optional[NodeId]
    ) -> QueryResult:
        """Whole flooding curve from the vectorized BFS kernel."""
        base_hits = 1 if self.count_source_as_hit else 0
        levels, hits, messages = flood_curve(graph, graph._row_of(source), ttl)

        telemetry = active_telemetry()
        if telemetry.enabled:
            # The kernel returns cumulative new-node counts per hop; their
            # deltas are exactly the per-hop BFS frontier sizes.
            previous = 0
            for cumulative in hits:
                telemetry.observe("search.frontier", int(cumulative) - previous)
                previous = int(cumulative)

        hits_per_ttl = [base_hits] + [base_hits + int(h) for h in hits]
        messages_per_ttl = [0] + [int(m) for m in messages]

        reached_rows = (levels >= 0).nonzero()[0]
        if graph._ids is None:
            visited = set(reached_rows.tolist())
        else:
            visited = set(graph._ids[reached_rows].tolist())

        found_at: Optional[int] = None
        if target is not None and graph.has_node(target):
            target_level = int(levels[graph._row_of(target)])
            if target_level >= 0:
                found_at = target_level

        return QueryResult(
            algorithm=self.algorithm_name,
            source=source,
            ttl=ttl,
            hits_per_ttl=hits_per_ttl,
            messages_per_ttl=messages_per_ttl,
            visited=visited,
            target=target,
            found_at=found_at,
        )


def flood(
    graph: Graph,
    source: NodeId,
    ttl: int,
    count_source_as_hit: bool = False,
    target: Optional[NodeId] = None,
) -> QueryResult:
    """Run one flooding query and return its :class:`~repro.search.base.QueryResult`.

    Examples
    --------
    >>> g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    >>> flood(g, 0, 3).hits
    3
    """
    return FloodingSearch(count_source_as_hit=count_source_as_hit).run(
        graph, source, ttl, target=target
    )
