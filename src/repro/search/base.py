"""Common types and interface for the search algorithms.

Every algorithm answers the same question the paper's simulations ask: given
an overlay graph, a source peer, and a time-to-live ``τ``, how many distinct
peers does one query reach and how many messages does it cost?  The
:class:`QueryResult` captures those two quantities *per TTL value* so a
single simulation run yields the whole hits-vs-τ curve (the paper plots hits
for τ = 1..20 or 1..10; recomputing the search from scratch for every τ would
waste orders of magnitude of work).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.backend import GraphLike
from repro.core.errors import SearchError
from repro.core.rng import RandomSource, ensure_source
from repro.core.types import NodeId

__all__ = ["QueryResult", "SearchAlgorithm"]


@dataclass
class QueryResult:
    """Outcome of a single query from one source node.

    Attributes
    ----------
    algorithm:
        Name of the search algorithm that produced the result.
    source:
        The querying peer.
    ttl:
        The maximum TTL simulated (the curves cover ``1..ttl``).
    hits_per_ttl:
        ``hits_per_ttl[t]`` is the number of distinct peers reached within
        ``t`` hops, for ``t = 0..ttl`` (index 0 is 0 or 1 depending on whether
        the source counts as a hit).
    messages_per_ttl:
        ``messages_per_ttl[t]`` is the cumulative number of messages sent up
        to and including hop ``t``.
    visited:
        The set of peers reached within the full TTL (including the source).
    target:
        Optional destination peer; when set, ``found_at`` records the hop at
        which it was first reached (or ``None`` if never reached).
    found_at:
        Hop count at which ``target`` was reached, if any.
    """

    algorithm: str
    source: NodeId
    ttl: int
    hits_per_ttl: List[int]
    messages_per_ttl: List[int]
    visited: set = field(default_factory=set)
    target: Optional[NodeId] = None
    found_at: Optional[int] = None

    @property
    def hits(self) -> int:
        """Distinct peers reached within the full TTL."""
        return self.hits_per_ttl[-1]

    @property
    def messages(self) -> int:
        """Total messages sent within the full TTL."""
        return self.messages_per_ttl[-1]

    @property
    def success(self) -> bool:
        """Whether the target (if any) was located."""
        return self.target is not None and self.found_at is not None

    def hits_at(self, ttl: int) -> int:
        """Distinct peers reached within ``ttl`` hops."""
        if ttl < 0:
            raise SearchError("ttl must be non-negative")
        index = min(ttl, len(self.hits_per_ttl) - 1)
        return self.hits_per_ttl[index]

    def messages_at(self, ttl: int) -> int:
        """Messages sent within ``ttl`` hops."""
        if ttl < 0:
            raise SearchError("ttl must be non-negative")
        index = min(ttl, len(self.messages_per_ttl) - 1)
        return self.messages_per_ttl[index]


class SearchAlgorithm(abc.ABC):
    """Abstract base class for TTL-bounded decentralised search algorithms."""

    #: Short machine-readable name ("fl", "nf", "rw"); subclasses override.
    algorithm_name: str = "abstract"

    @abc.abstractmethod
    def run(
        self,
        graph: GraphLike,
        source: NodeId,
        ttl: int,
        rng: "RandomSource | int | None" = None,
        target: Optional[NodeId] = None,
    ) -> QueryResult:
        """Simulate one query from ``source`` with time-to-live ``ttl``."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate(graph: GraphLike, source: NodeId, ttl: int) -> None:
        if ttl < 0:
            raise SearchError("ttl must be non-negative")
        if not graph.has_node(source):
            raise SearchError(f"source node {source!r} is not in the graph")

    @staticmethod
    def _resolve_rng(rng: "RandomSource | int | None") -> RandomSource:
        return ensure_source(rng)

    def run_many(
        self,
        graph: GraphLike,
        sources: Sequence[NodeId],
        ttl: int,
        rng: "RandomSource | int | None" = None,
        target: Optional[NodeId] = None,
    ) -> List[QueryResult]:
        """Run one query per source node and return the individual results."""
        source_rng = self._resolve_rng(rng)
        return [
            self.run(graph, source, ttl, rng=source_rng, target=target)
            for source in sources
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
