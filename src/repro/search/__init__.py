"""Decentralised search algorithms over overlay topologies.

The paper evaluates three message-passing search strategies (§V-A):

* **Flooding (FL)** — :mod:`repro.search.flooding`: every node forwards the
  query to all neighbors (except the one it came from); the upper bound on
  coverage per TTL and the least scalable in messages.
* **Normalized flooding (NF)** — :mod:`repro.search.normalized_flooding`:
  nodes forward to at most ``k_min`` random neighbors, taming the message
  explosion at hubs.
* **Random walk (RW)** — :mod:`repro.search.random_walk`: the query moves to
  one random neighbor per step; minimal messaging, serial delivery.

All three are TTL-bounded, fully decentralised, and measured by the paper's
two metrics: *number of hits* (distinct nodes reached per query) and
*messaging complexity* (messages per query).  :mod:`repro.search.metrics`
builds the hits-vs-τ curves of Figs. 6–12, including the NF-message
normalization the paper applies to RW.
"""

from repro.search.base import QueryResult, SearchAlgorithm
from repro.search.flooding import FloodingSearch, flood
from repro.search.metrics import (
    SearchCurve,
    average_search_curve,
    normalized_walk_curve,
    search_curve,
)
from repro.search.normalized_flooding import NormalizedFloodingSearch, normalized_flood
from repro.search.probabilistic_flooding import (
    ProbabilisticFloodingSearch,
    probabilistic_flood,
)
from repro.search.random_walk import RandomWalkSearch, random_walk
from repro.search.registry import available_search_algorithms, create_search_algorithm

__all__ = [
    "FloodingSearch",
    "NormalizedFloodingSearch",
    "ProbabilisticFloodingSearch",
    "QueryResult",
    "RandomWalkSearch",
    "SearchAlgorithm",
    "SearchCurve",
    "available_search_algorithms",
    "average_search_curve",
    "create_search_algorithm",
    "flood",
    "normalized_flood",
    "normalized_walk_curve",
    "probabilistic_flood",
    "random_walk",
    "search_curve",
]
