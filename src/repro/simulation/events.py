"""Minimal discrete-event engine.

The simulator schedules three kinds of events — message deliveries, peer
joins, and peer departures — on a single global clock.  The engine is a
plain priority queue keyed by ``(time, sequence)``; the sequence number makes
ordering deterministic when events share a timestamp, which keeps seeded
simulations exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.core.errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulation time at which the event fires.
    sequence:
        Tie-breaker assigned by the queue; earlier-scheduled events fire
        first among equal timestamps.
    action:
        Zero-argument callable executed when the event fires.
    label:
        Optional human-readable tag used in traces.
    cancelled:
        Cancelled events are skipped when popped.
    """

    time: float
    sequence: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it."""
        self.cancelled = True


class EventQueue:
    """A deterministic discrete-event queue.

    Examples
    --------
    >>> queue = EventQueue()
    >>> fired = []
    >>> _ = queue.schedule(2.0, lambda: fired.append("late"))
    >>> _ = queue.schedule(1.0, lambda: fired.append("early"))
    >>> queue.run()
    2
    >>> fired
    ['early', 'late']
    >>> queue.now
    2.0
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time (time of the last fired event)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still scheduled (including cancelled ones)."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def __len__(self) -> int:
        return len(self._heap)

    # ------------------------------------------------------------------ #
    # Scheduling and execution
    # ------------------------------------------------------------------ #
    def schedule(
        self, time: float, action: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``action`` to run at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time} before the current time {self._now}"
            )
        event = Event(time=time, sequence=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(
        self, delay: float, action: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.schedule(self._now + delay, action, label=label)

    def step(self) -> Optional[Event]:
        """Execute the next non-cancelled event; return it (or ``None`` if empty)."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            self._processed += 1
            return event
        return None

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the number of events executed by this call.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            next_event = self._heap[0]
            if next_event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and next_event.time > until:
                break
            if self.step() is not None:
                executed += 1
        if until is not None and self._now < until:
            # No more events before the horizon: the clock advances to it.
            self._now = until
        return executed
