"""Discrete-event simulation of a Gnutella-like unstructured P2P network.

The topology generators and search algorithms operate on static graph
snapshots — exactly what the paper's evaluation does.  This subpackage adds
the dynamic system those snapshots abstract: peers with bounded neighbor
tables, a message-passing protocol (ping/pong discovery, query/query-hit
search), an event-driven engine with per-link latency, and a churn process
(peers joining and leaving over time), which the paper lists as future work.

Layering:

* :mod:`repro.simulation.messages` — the protocol messages;
* :mod:`repro.simulation.peer` — a peer: neighbor table with a hard cutoff,
  shared content, duplicate suppression;
* :mod:`repro.simulation.events` — the discrete-event engine;
* :mod:`repro.simulation.network` — the overlay: peers + message delivery +
  join/leave, with pluggable join strategies mirroring PA / HAPA / DAPA;
* :mod:`repro.simulation.protocol` — query execution (FL / NF / RW) over the
  live overlay and hit/message accounting;
* :mod:`repro.simulation.churn` — join/leave workloads and topology tracking;
* :mod:`repro.simulation.workload` — content catalogs and Zipf query streams.
"""

from repro.simulation.churn import ChurnConfig, ChurnProcess, ChurnReport
from repro.simulation.events import Event, EventQueue
from repro.simulation.messages import Message, Ping, Pong, Query, QueryHit
from repro.simulation.network import JoinStrategy, P2PNetwork
from repro.simulation.peer import NeighborTable, Peer
from repro.simulation.protocol import GnutellaProtocol, QueryStats
from repro.simulation.workload import ContentCatalog, QueryWorkload

__all__ = [
    "ChurnConfig",
    "ChurnProcess",
    "ChurnReport",
    "ContentCatalog",
    "Event",
    "EventQueue",
    "GnutellaProtocol",
    "JoinStrategy",
    "Message",
    "NeighborTable",
    "P2PNetwork",
    "Peer",
    "Ping",
    "Pong",
    "Query",
    "QueryHit",
    "QueryStats",
    "QueryWorkload",
]
