"""Protocol messages of the simulated unstructured P2P network.

The message vocabulary follows the Gnutella 0.4 protocol the paper's
motivation is built around:

* :class:`Ping` / :class:`Pong` — neighbor discovery: a peer learns about
  other peers (and their degrees, which the HAPA-style join rule needs) by
  pinging its neighborhood;
* :class:`Query` / :class:`QueryHit` — content search: a query is forwarded
  according to the configured search policy (flooding, normalized flooding,
  or random walk) and every peer holding a matching item answers with a hit.

Every message carries a globally unique ``message_id`` so peers can suppress
duplicates, a ``ttl`` that is decremented at every forwarding step, and a
``hops`` counter used for accounting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from repro.core.errors import SimulationError
from repro.core.types import NodeId

__all__ = ["Message", "Ping", "Pong", "Query", "QueryHit", "next_message_id"]

_MESSAGE_COUNTER = itertools.count(1)


def next_message_id() -> int:
    """Return a process-wide unique message identifier."""
    return next(_MESSAGE_COUNTER)


@dataclass(frozen=True)
class Message:
    """Base class for all protocol messages.

    Attributes
    ----------
    message_id:
        Globally unique identifier used for duplicate suppression.
    origin:
        The peer that created the message.
    ttl:
        Remaining time-to-live; a message with ``ttl == 0`` is not forwarded
        any further.
    hops:
        Number of overlay hops travelled so far.
    """

    message_id: int
    origin: NodeId
    ttl: int
    hops: int = 0

    def __post_init__(self) -> None:
        if self.ttl < 0:
            raise SimulationError("ttl must be non-negative")
        if self.hops < 0:
            raise SimulationError("hops must be non-negative")

    def forwarded(self) -> "Message":
        """Return a copy with ``ttl`` decremented and ``hops`` incremented."""
        if self.ttl <= 0:
            raise SimulationError("cannot forward a message whose ttl is exhausted")
        return replace(self, ttl=self.ttl - 1, hops=self.hops + 1)

    @property
    def expired(self) -> bool:
        """``True`` when the message must not be forwarded further."""
        return self.ttl <= 0


@dataclass(frozen=True)
class Ping(Message):
    """Neighbor-discovery probe flooded a small number of hops."""


@dataclass(frozen=True)
class Pong(Message):
    """Answer to a :class:`Ping`.

    Attributes
    ----------
    responder:
        The peer answering the ping.
    responder_degree:
        The responder's current overlay degree — the piece of state a
        degree-proportional (PA-style) join rule needs.
    """

    responder: NodeId = -1
    responder_degree: int = 0


@dataclass(frozen=True)
class Query(Message):
    """Content search request.

    Attributes
    ----------
    keyword:
        The item identifier being searched for.
    """

    keyword: str = ""


@dataclass(frozen=True)
class QueryHit(Message):
    """Answer to a :class:`Query` from a peer holding the item.

    Attributes
    ----------
    responder:
        The peer that holds the requested item.
    keyword:
        The matched item identifier.
    query_id:
        ``message_id`` of the query being answered.
    """

    responder: NodeId = -1
    keyword: str = ""
    query_id: int = -1
