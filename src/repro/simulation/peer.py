"""Peers and their bounded neighbor tables.

The hard cutoff the paper studies is, operationally, a bound on the size of
each peer's neighbor table: "peers are not willing to maintain high
degrees/loads as they may not want to store large number of entries for
construction of the overlay topology."  :class:`NeighborTable` enforces that
bound and :class:`Peer` adds the per-peer protocol state: shared content,
seen-message cache, and counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.core.errors import SimulationError
from repro.core.rng import RandomSource
from repro.core.types import NodeId

__all__ = ["NeighborTable", "Peer"]


class NeighborTable:
    """A peer's neighbor list with an optional hard capacity.

    Examples
    --------
    >>> table = NeighborTable(capacity=2)
    >>> table.add(1)
    True
    >>> table.add(2)
    True
    >>> table.add(3)
    False
    >>> table.is_full
    True
    >>> sorted(table)
    [1, 2]
    """

    __slots__ = ("_capacity", "_neighbors")

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError("neighbor table capacity must be at least 1")
        self._capacity = capacity
        self._neighbors: Set[NodeId] = set()

    # ------------------------------------------------------------------ #
    # Capacity
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> Optional[int]:
        """Maximum number of entries, or ``None`` for unbounded."""
        return self._capacity

    @property
    def is_full(self) -> bool:
        """``True`` when no further neighbor can be added."""
        return self._capacity is not None and len(self._neighbors) >= self._capacity

    @property
    def free_slots(self) -> Optional[int]:
        """Number of remaining slots (``None`` when unbounded)."""
        if self._capacity is None:
            return None
        return max(0, self._capacity - len(self._neighbors))

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, peer_id: NodeId) -> bool:
        """Add ``peer_id``; return ``False`` if full or already present."""
        if peer_id in self._neighbors:
            return False
        if self.is_full:
            return False
        self._neighbors.add(peer_id)
        return True

    def remove(self, peer_id: NodeId) -> bool:
        """Remove ``peer_id``; return ``False`` if it was not a neighbor."""
        if peer_id not in self._neighbors:
            return False
        self._neighbors.discard(peer_id)
        return True

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __contains__(self, peer_id: object) -> bool:
        return peer_id in self._neighbors

    def __iter__(self):
        return iter(sorted(self._neighbors))

    def __len__(self) -> int:
        return len(self._neighbors)

    def as_list(self) -> List[NodeId]:
        """Return the neighbor ids as a sorted list."""
        return sorted(self._neighbors)

    def random_neighbor(self, rng: RandomSource) -> Optional[NodeId]:
        """Return a uniformly random neighbor (or ``None`` if empty)."""
        if not self._neighbors:
            return None
        ordered = sorted(self._neighbors)
        return ordered[rng.randint(0, len(ordered) - 1)]


@dataclass
class Peer:
    """A participant of the simulated unstructured P2P network.

    Attributes
    ----------
    peer_id:
        Unique identifier (shared with the overlay graph node id).
    neighbor_table:
        Bounded neighbor list; its capacity is the peer's hard cutoff.
    shared_items:
        Keywords of the content items this peer shares.
    seen_messages:
        Message ids already handled, for duplicate suppression.
    messages_received / messages_forwarded / queries_answered:
        Protocol counters used by the messaging-complexity analysis.
    online:
        ``False`` after the peer leaves the network (churn).
    joined_at / left_at:
        Simulation timestamps maintained by the churn process.
    """

    peer_id: NodeId
    neighbor_table: NeighborTable = field(default_factory=NeighborTable)
    shared_items: Set[str] = field(default_factory=set)
    seen_messages: Set[int] = field(default_factory=set)
    messages_received: int = 0
    messages_forwarded: int = 0
    queries_answered: int = 0
    online: bool = True
    joined_at: float = 0.0
    left_at: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Neighbors
    # ------------------------------------------------------------------ #
    @property
    def degree(self) -> int:
        """Current number of overlay neighbors."""
        return len(self.neighbor_table)

    @property
    def hard_cutoff(self) -> Optional[int]:
        """This peer's neighbor-table capacity."""
        return self.neighbor_table.capacity

    def neighbors(self) -> List[NodeId]:
        """Return the sorted neighbor list."""
        return self.neighbor_table.as_list()

    # ------------------------------------------------------------------ #
    # Content
    # ------------------------------------------------------------------ #
    def share(self, keyword: str) -> None:
        """Start sharing an item."""
        self.shared_items.add(keyword)

    def unshare(self, keyword: str) -> None:
        """Stop sharing an item (no error if it was not shared)."""
        self.shared_items.discard(keyword)

    def has_item(self, keyword: str) -> bool:
        """Return ``True`` if this peer shares ``keyword``."""
        return keyword in self.shared_items

    # ------------------------------------------------------------------ #
    # Message bookkeeping
    # ------------------------------------------------------------------ #
    def mark_seen(self, message_id: int) -> bool:
        """Record a message id; return ``False`` if it was already seen."""
        if message_id in self.seen_messages:
            return False
        self.seen_messages.add(message_id)
        return True

    def reset_counters(self) -> None:
        """Zero the protocol counters (used between measurement windows)."""
        self.messages_received = 0
        self.messages_forwarded = 0
        self.queries_answered = 0

    def snapshot(self) -> Dict[str, object]:
        """Return a JSON-friendly snapshot of the peer's state."""
        return {
            "peer_id": self.peer_id,
            "degree": self.degree,
            "hard_cutoff": self.hard_cutoff,
            "shared_items": len(self.shared_items),
            "messages_received": self.messages_received,
            "messages_forwarded": self.messages_forwarded,
            "queries_answered": self.queries_answered,
            "online": self.online,
        }
