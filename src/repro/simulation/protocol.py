"""Gnutella-like query protocol over the live overlay.

:class:`GnutellaProtocol` executes content searches on a
:class:`~repro.simulation.network.P2PNetwork` through its event queue, using
one of the three forwarding policies the paper evaluates:

* ``"fl"`` — flooding: forward to every neighbor except the previous hop;
* ``"nf"`` — normalized flooding: forward to at most ``k_min`` random
  neighbors (all of them at degree-``k_min`` peers);
* ``"rw"`` — random walk: forward to one random neighbor (optionally several
  parallel walkers at the source).

Every peer that shares the requested keyword answers with a
:class:`~repro.simulation.messages.QueryHit` routed back to the source (the
simulation delivers hits directly to the origin, as Gnutella does over the
reverse path / a direct connection; the reverse-path traffic is accounted in
``QueryStats.hit_messages``).

The protocol produces :class:`QueryStats` that mirror the paper's metrics —
peers reached, messages used — plus content-level metrics (items found, time
to first hit) that the example applications use.

Batched queries
---------------
:meth:`GnutellaProtocol.query_batch` runs many queries over a *frozen*
snapshot of the overlay using synchronous FIFO semantics instead of the
event heap: deliveries are processed in send order over the snapshot's CSR
``indptr``/``indices`` rows (insertion order, *not* the live peers' sorted
neighbor tables), and ``first_hit_time`` reports the hop count of the first
provider delivery rather than a latency timestamp.  The batch is therefore
*not* draw-for-draw comparable to the event-driven :meth:`~GnutellaProtocol.query`
(whose every ``send`` draws a latency sample), but it is byte-identical
between its own two tiers — the pure-Python
:func:`batch_query_reference` below and the compiled kernel in
:mod:`repro.kernels.simulation` — and it leaves per-peer counters untouched.
The overlay must stay static for the duration of the batch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.errors import SimulationError
from repro.core.rng import RandomSource, ensure_source
from repro.core.types import NodeId
from repro.simulation.messages import Query, QueryHit, next_message_id
from repro.simulation.network import P2PNetwork

__all__ = ["GnutellaProtocol", "QueryStats", "batch_query_reference"]

_POLICIES = ("fl", "nf", "rw")


@dataclass
class QueryStats:
    """Outcome of one simulated query.

    Attributes
    ----------
    query_id:
        Message id of the query.
    source:
        The querying peer.
    keyword:
        The requested item.
    policy:
        Forwarding policy used ("fl", "nf", or "rw").
    ttl:
        Initial time-to-live.
    peers_reached:
        Distinct peers (excluding the source) that received the query.
    query_messages:
        Number of query forwards sent.
    hit_messages:
        Number of query-hit responses sent back to the source.
    providers:
        Peers that answered with a hit.
    first_hit_time:
        Simulation time of the first hit delivery (``None`` if no hit).
    completed_at:
        Simulation time when the query stopped propagating.
    """

    query_id: int
    source: NodeId
    keyword: str
    policy: str
    ttl: int
    peers_reached: int = 0
    query_messages: int = 0
    hit_messages: int = 0
    providers: Set[NodeId] = field(default_factory=set)
    first_hit_time: Optional[float] = None
    completed_at: float = 0.0

    @property
    def success(self) -> bool:
        """``True`` when at least one provider answered."""
        return bool(self.providers)

    @property
    def total_messages(self) -> int:
        """Query forwards plus hit responses."""
        return self.query_messages + self.hit_messages

    def as_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly summary."""
        return {
            "query_id": self.query_id,
            "source": self.source,
            "keyword": self.keyword,
            "policy": self.policy,
            "ttl": self.ttl,
            "peers_reached": self.peers_reached,
            "query_messages": self.query_messages,
            "hit_messages": self.hit_messages,
            "providers": sorted(self.providers),
            "success": self.success,
            "first_hit_time": self.first_hit_time,
        }


def batch_query_reference(
    frozen,
    source_rows: Sequence[int],
    ttl: int,
    policy: str,
    branching: int,
    walkers: int,
    provider_mask: np.ndarray,
    rng: RandomSource,
) -> Tuple[List[int], List[int], List[int], List[int], List[List[int]]]:
    """Pure-Python batched queries over a frozen overlay's CSR rows.

    This is the reference body for the compiled kernel in
    :mod:`repro.kernels.simulation`: same FIFO delivery order, same draws,
    same results.  Everything is in *row* space — ``source_rows`` and the
    returned provider lists index rows of ``frozen``.  Returns
    ``(peers_reached, query_messages, hit_messages, first_hit_hop,
    providers)`` per query, with ``first_hit_hop == -1`` when no provider
    answered.
    """
    indptr = frozen._indptr
    indices = frozen._indices
    reached_out: List[int] = []
    query_messages_out: List[int] = []
    hit_messages_out: List[int] = []
    first_hit_out: List[int] = []
    providers_out: List[List[int]] = []
    for source in source_rows:
        source = int(source)
        seen = {source}
        reached = 0
        query_messages = 0
        hit_messages = 0
        first_hit = -1
        providers: List[int] = []
        queue: "deque[Tuple[int, int, int]]" = deque()

        neighbors = [int(row) for row in indices[indptr[source] : indptr[source + 1]]]
        if neighbors:
            if policy == "fl":
                recipients = neighbors
            elif policy == "nf":
                if len(neighbors) <= branching:
                    recipients = neighbors
                else:
                    recipients = rng.sample(neighbors, branching)
            else:  # random walk: min(walkers, degree) independent walkers
                recipients = [
                    neighbors[rng.randint(0, len(neighbors) - 1)]
                    for _ in range(min(walkers, len(neighbors)))
                ]
            for recipient in recipients:
                queue.append((recipient, source, ttl))
                query_messages += 1

        while queue:
            node, previous, message_ttl = queue.popleft()
            first_time = node not in seen
            if first_time:
                seen.add(node)
                reached += 1
                if provider_mask[node]:
                    hit_messages += 1
                    providers.append(node)
                    if first_hit < 0:
                        first_hit = ttl - message_ttl + 1
            if not first_time:
                continue
            if message_ttl - 1 < 1:
                continue
            neighbors = [
                int(row)
                for row in indices[indptr[node] : indptr[node + 1]]
                if int(row) != previous
            ]
            if not neighbors:
                continue
            if policy == "fl":
                recipients = neighbors
            elif policy == "nf":
                if len(neighbors) <= branching:
                    recipients = neighbors
                else:
                    recipients = rng.sample(neighbors, branching)
            else:
                recipients = [neighbors[rng.randint(0, len(neighbors) - 1)]]
            for recipient in recipients:
                queue.append((recipient, node, message_ttl - 1))
                query_messages += 1

        reached_out.append(reached)
        query_messages_out.append(query_messages)
        hit_messages_out.append(hit_messages)
        first_hit_out.append(first_hit)
        providers_out.append(providers)
    return reached_out, query_messages_out, hit_messages_out, first_hit_out, providers_out


class GnutellaProtocol:
    """Query execution engine bound to one :class:`P2PNetwork`.

    Parameters
    ----------
    network:
        The live overlay to search.
    policy:
        Default forwarding policy ("fl", "nf", or "rw").
    k_min:
        Branching factor for normalized flooding; defaults to the minimum
        degree of the overlay at query time.
    walkers:
        Number of parallel walkers for random-walk queries.
    rng:
        Random source or seed for the probabilistic forwarding decisions.

    Examples
    --------
    >>> network = P2PNetwork(hard_cutoff=6, stubs=2, rng=3)
    >>> ids = [network.join() for _ in range(20)]
    >>> network.peer(ids[-1]).share("song.mp3")
    >>> protocol = GnutellaProtocol(network, policy="fl", rng=3)
    >>> stats = protocol.query(ids[0], "song.mp3", ttl=6)
    >>> stats.peers_reached > 0
    True
    """

    def __init__(
        self,
        network: P2PNetwork,
        policy: str = "fl",
        k_min: Optional[int] = None,
        walkers: int = 1,
        rng: "RandomSource | int | None" = None,
    ) -> None:
        if policy not in _POLICIES:
            raise SimulationError(
                f"unknown forwarding policy {policy!r}; expected one of {_POLICIES}"
            )
        if walkers < 1:
            raise SimulationError("walkers must be at least 1")
        self.network = network
        self.policy = policy
        self.k_min = k_min
        self.walkers = walkers
        self.rng = ensure_source(rng)
        self._active: Dict[int, QueryStats] = {}
        network.set_message_handler(self._handle_message)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def query(
        self,
        source: NodeId,
        keyword: str,
        ttl: int = 5,
        policy: Optional[str] = None,
        run: bool = True,
    ) -> QueryStats:
        """Issue a query from ``source`` and (by default) run it to completion."""
        if ttl < 1:
            raise SimulationError("ttl must be at least 1")
        active_policy = policy or self.policy
        if active_policy not in _POLICIES:
            raise SimulationError(f"unknown forwarding policy {active_policy!r}")
        source_peer = self.network.peer(source)

        message = Query(
            message_id=next_message_id(),
            origin=source,
            ttl=ttl,
            keyword=keyword,
        )
        stats = QueryStats(
            query_id=message.message_id,
            source=source,
            keyword=keyword,
            policy=active_policy,
            ttl=ttl,
        )
        self._active[message.message_id] = stats
        source_peer.mark_seen(message.message_id)

        recipients = self._initial_recipients(source, active_policy)
        for recipient in recipients:
            stats.query_messages += 1
            source_peer.messages_forwarded += 1
            self.network.send(source, recipient, message)

        if run:
            self.network.run()
            stats.completed_at = self.network.now
        return stats

    def query_batch(
        self,
        sources: Sequence[NodeId],
        keyword: str,
        ttl: int = 5,
        policy: Optional[str] = None,
    ) -> List[QueryStats]:
        """Run many queries over a frozen snapshot of the overlay.

        Unlike :meth:`query`, the batch path does not go through the event
        queue: the overlay is frozen once into CSR arrays and every query is
        drained synchronously in FIFO send order over those rows (see the
        module docstring for the exact semantics and how they differ from
        the event-driven path).  ``first_hit_time`` on the returned stats is
        the *hop count* of the first provider delivery, not a simulation
        timestamp, and per-peer counters (``messages_forwarded``,
        ``queries_answered``) are not updated.  When compiled kernels are
        active the whole batch runs inside
        :func:`repro.kernels.simulation.gnutella_query_batch` with no
        Python per-message work; the interpreted tier produces
        byte-identical results through :func:`batch_query_reference`.
        """
        if ttl < 1:
            raise SimulationError("ttl must be at least 1")
        active_policy = policy or self.policy
        if active_policy not in _POLICIES:
            raise SimulationError(f"unknown forwarding policy {active_policy!r}")
        for source in sources:
            self.network.peer(source)  # validates membership

        frozen = self.network.graph.freeze()
        rows = [frozen._row_of(source) for source in sources]
        provider_mask = np.zeros(self.network.graph.number_of_nodes, dtype=np.bool_)
        for node, peer in self.network.peers.items():  # repro-lint: disable=RPL102(order-insensitive: fills a boolean mask keyed by CSR row, no draws consumed)
            if peer.has_item(keyword):
                provider_mask[frozen._row_of(node)] = True
        branching = self._branching()

        from repro.kernels.dispatch import kernel_simulation_ready

        if kernel_simulation_ready(self.rng):
            from repro.kernels.simulation import gnutella_query_batch

            results = gnutella_query_batch(
                frozen, rows, ttl, active_policy, branching, self.walkers,
                provider_mask, self.rng,
            )
        else:
            results = batch_query_reference(
                frozen, rows, ttl, active_policy, branching, self.walkers,
                provider_mask, self.rng,
            )
        reached, query_messages, hit_messages, first_hits, providers = results

        stats_list: List[QueryStats] = []
        for index, source in enumerate(sources):
            stats = QueryStats(
                query_id=next_message_id(),
                source=source,
                keyword=keyword,
                policy=active_policy,
                ttl=ttl,
                peers_reached=reached[index],
                query_messages=query_messages[index],
                hit_messages=hit_messages[index],
                providers={frozen._id_of(row) for row in providers[index]},
                first_hit_time=(
                    float(first_hits[index]) if first_hits[index] >= 0 else None
                ),
            )
            self._active[stats.query_id] = stats
            stats_list.append(stats)
        return stats_list

    def stats_for(self, query_id: int) -> QueryStats:
        """Return the statistics collected for ``query_id``."""
        try:
            return self._active[query_id]
        except KeyError:
            raise SimulationError(f"unknown query id {query_id}") from None

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def _handle_message(
        self, network: P2PNetwork, sender: NodeId, recipient: NodeId, message
    ) -> None:
        if isinstance(message, QueryHit):
            self._handle_hit(recipient, message)
            return
        if isinstance(message, Query):
            self._handle_query(sender, recipient, message)

    def _handle_hit(self, recipient: NodeId, hit: QueryHit) -> None:
        stats = self._active.get(hit.query_id)
        if stats is None or recipient != stats.source:
            return
        stats.providers.add(hit.responder)
        if stats.first_hit_time is None:
            stats.first_hit_time = self.network.now

    def _handle_query(self, sender: NodeId, recipient: NodeId, query: Query) -> None:
        stats = self._active.get(query.message_id)
        peer = self.network.peers.get(recipient)
        if peer is None:
            return
        first_time = peer.mark_seen(query.message_id)
        if stats is not None and first_time:
            stats.peers_reached += 1

        # Answer if the peer shares the item (only on the first delivery, so
        # duplicate floods do not trigger duplicate hits).
        if first_time and peer.has_item(query.keyword):
            peer.queries_answered += 1
            hit = QueryHit(
                message_id=next_message_id(),
                origin=recipient,
                ttl=query.hops + 1,
                responder=recipient,
                keyword=query.keyword,
                query_id=query.message_id,
            )
            if stats is not None:
                stats.hit_messages += 1
            self.network.send(recipient, stats.source if stats else query.origin, hit)

        if not first_time or query.expired:
            return
        forwarded = query.forwarded()
        if forwarded.expired:
            # The ttl reached zero on this hop: the message was delivered but
            # the recipient does not propagate it further.
            return
        policy = stats.policy if stats is not None else self.policy
        recipients = self._forward_recipients(recipient, sender, policy)
        for target in recipients:
            if stats is not None:
                stats.query_messages += 1
            peer.messages_forwarded += 1
            self.network.send(recipient, target, forwarded)

    # ------------------------------------------------------------------ #
    # Forwarding rules
    # ------------------------------------------------------------------ #
    def _branching(self) -> int:
        if self.k_min is not None:
            return self.k_min
        graph = self.network.graph
        return max(1, graph.min_degree()) if graph.number_of_nodes else 1

    def _initial_recipients(self, source: NodeId, policy: str) -> List[NodeId]:
        neighbors = self.network.peer(source).neighbors()
        if not neighbors:
            return []
        if policy == "fl":
            return neighbors
        if policy == "nf":
            branching = self._branching()
            if len(neighbors) <= branching:
                return neighbors
            return self.rng.sample(neighbors, branching)
        # random walk: launch `walkers` walkers
        return [
            neighbors[self.rng.randint(0, len(neighbors) - 1)]
            for _ in range(min(self.walkers, max(1, len(neighbors))))
        ]

    def _forward_recipients(
        self, holder: NodeId, previous: NodeId, policy: str
    ) -> List[NodeId]:
        neighbors = [
            peer for peer in self.network.peer(holder).neighbors() if peer != previous
        ]
        if not neighbors:
            return []
        if policy == "fl":
            return neighbors
        if policy == "nf":
            branching = self._branching()
            if len(neighbors) <= branching:
                return neighbors
            return self.rng.sample(neighbors, branching)
        return [neighbors[self.rng.randint(0, len(neighbors) - 1)]]
