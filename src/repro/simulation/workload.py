"""Content catalogs and query workloads for the P2P simulation.

The paper's search metrics are content-agnostic (hits = peers reached), but
the example applications and the protocol-level tests need actual items to
search for.  This module provides the standard unstructured-P2P workload
model used throughout the literature the paper cites (Lv et al., Cohen &
Shenker): a catalog of items whose popularity follows a Zipf distribution,
replicated across peers either uniformly or proportionally to popularity,
and a query stream that requests items with the same Zipf popularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ConfigurationError, SimulationError
from repro.core.rng import RandomSource, ensure_source
from repro.core.types import NodeId

__all__ = ["ContentCatalog", "QueryWorkload", "zipf_probabilities"]


def zipf_probabilities(number_of_items: int, skew: float) -> np.ndarray:
    """Return Zipf popularity probabilities for ranks ``1..number_of_items``.

    ``p(rank) ∝ rank^{-skew}``; ``skew = 0`` is uniform popularity.

    Examples
    --------
    >>> p = zipf_probabilities(4, 1.0)
    >>> bool(p[0] > p[-1])
    True
    >>> float(round(p.sum(), 12))
    1.0
    """
    if number_of_items < 1:
        raise ConfigurationError("number_of_items must be at least 1")
    if skew < 0:
        raise ConfigurationError("skew must be non-negative")
    ranks = np.arange(1, number_of_items + 1, dtype=float)
    weights = ranks**-skew
    return weights / weights.sum()


class ContentCatalog:
    """A set of content items with Zipf popularity, replicated across peers.

    Parameters
    ----------
    number_of_items:
        Catalog size.
    skew:
        Zipf exponent of item popularity (1.0 is the classic web/P2P value).
    replication:
        ``"uniform"`` — every item gets the same number of replicas;
        ``"proportional"`` — replicas proportional to popularity (the
        strategy unstructured networks converge to via caching).
    replicas_per_item:
        Average number of replicas per item.

    Examples
    --------
    >>> catalog = ContentCatalog(number_of_items=20, skew=1.0,
    ...                          replicas_per_item=3)
    >>> placement = catalog.place(list(range(50)), rng=1)
    >>> sum(len(items) for items in placement.values()) == 60
    True
    """

    def __init__(
        self,
        number_of_items: int = 100,
        skew: float = 1.0,
        replication: str = "uniform",
        replicas_per_item: int = 5,
    ) -> None:
        if replication not in ("uniform", "proportional"):
            raise ConfigurationError("replication must be 'uniform' or 'proportional'")
        if replicas_per_item < 1:
            raise ConfigurationError("replicas_per_item must be at least 1")
        self.number_of_items = number_of_items
        self.skew = skew
        self.replication = replication
        self.replicas_per_item = replicas_per_item
        self.popularity = zipf_probabilities(number_of_items, skew)

    def item_name(self, rank: int) -> str:
        """Return the keyword for popularity rank ``rank`` (1-based)."""
        if not 1 <= rank <= self.number_of_items:
            raise ConfigurationError(
                f"rank must be in [1, {self.number_of_items}], got {rank}"
            )
        return f"item-{rank:05d}"

    def items(self) -> List[str]:
        """Return every item keyword in popularity order."""
        return [self.item_name(rank) for rank in range(1, self.number_of_items + 1)]

    def replica_counts(self) -> List[int]:
        """Return the number of replicas planned for each item (by rank)."""
        total_replicas = self.number_of_items * self.replicas_per_item
        if self.replication == "uniform":
            return [self.replicas_per_item] * self.number_of_items
        raw = self.popularity * total_replicas
        counts = np.maximum(1, np.round(raw)).astype(int)
        return [int(count) for count in counts]

    def place(
        self, peer_ids: Sequence[NodeId], rng: "RandomSource | int | None" = None
    ) -> Dict[NodeId, List[str]]:
        """Assign item replicas to peers; return ``peer -> list of keywords``.

        Each replica goes to a uniformly random peer; a peer may hold several
        items but never two replicas of the same item.
        """
        if not peer_ids:
            raise SimulationError("cannot place content on an empty peer set")
        source = ensure_source(rng)
        placement: Dict[NodeId, List[str]] = {peer: [] for peer in peer_ids}
        for rank, count in enumerate(self.replica_counts(), start=1):
            keyword = self.item_name(rank)
            count = min(count, len(peer_ids))
            holders = source.sample(list(peer_ids), count)
            for holder in holders:
                placement[holder].append(keyword)
        return placement


@dataclass
class QueryWorkload:
    """A stream of (time, source peer, keyword) query events.

    Queries arrive as a Poisson process with rate ``query_rate``; sources are
    uniform over the supplied peers; keywords follow the catalog's Zipf
    popularity.

    Examples
    --------
    >>> catalog = ContentCatalog(number_of_items=10, skew=0.8)
    >>> workload = QueryWorkload(catalog, query_rate=2.0, duration=5.0, seed=4)
    >>> events = workload.generate(list(range(30)))
    >>> all(0 <= t <= 5.0 for t, _, _ in events)
    True
    """

    catalog: ContentCatalog
    query_rate: float = 1.0
    duration: float = 10.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.query_rate <= 0:
            raise ConfigurationError("query_rate must be positive")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")

    def generate(
        self, peer_ids: Sequence[NodeId]
    ) -> List[Tuple[float, NodeId, str]]:
        """Materialise the full query stream as a sorted list of events."""
        return list(self.iter_events(peer_ids))

    def iter_events(
        self, peer_ids: Sequence[NodeId]
    ) -> Iterator[Tuple[float, NodeId, str]]:
        """Yield query events ``(time, source, keyword)`` in time order."""
        if not peer_ids:
            raise SimulationError("cannot generate queries for an empty peer set")
        rng = ensure_source(self.seed)
        generator = rng.numpy_generator()
        ranks = np.arange(1, self.catalog.number_of_items + 1)
        time = 0.0
        while True:
            time += rng.expovariate(self.query_rate)
            if time > self.duration:
                return
            source = peer_ids[rng.randint(0, len(peer_ids) - 1)]
            rank = int(generator.choice(ranks, p=self.catalog.popularity))
            yield (time, source, self.catalog.item_name(rank))
