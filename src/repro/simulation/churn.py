"""Peer churn: joins and departures over time (the paper's future work).

The paper closes with: "Future work will include study of join/leave
scenarios for the overlay topologies while attempting to maintain the
scale-freeness of the overall topology."  :class:`ChurnProcess` implements
that study: peers arrive as a Poisson process and stay for exponentially
distributed sessions, joining through one of the
:class:`~repro.simulation.network.JoinStrategy` rules (with hard cutoffs
enforced throughout) and leaving with simple neighbor rewiring.  The process
samples the overlay periodically and reports how the degree distribution,
connectivity, and maximum degree evolve — i.e. whether scale-freeness and
the cutoff survive dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.components import giant_component_fraction
from repro.analysis.powerlaw import fit_power_law
from repro.core.errors import AnalysisError, ConfigurationError
from repro.core.rng import ensure_source
from repro.simulation.network import JoinStrategy, P2PNetwork

__all__ = ["ChurnConfig", "ChurnReport", "ChurnSample", "ChurnProcess"]


@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of a churn simulation.

    Attributes
    ----------
    initial_peers:
        Number of peers bootstrapped before churn starts.
    duration:
        Simulated time to run churn for.
    arrival_rate:
        Poisson arrival rate of new peers (peers per unit time).
    mean_session_length:
        Mean online time of a peer; ``None`` disables departures (pure
        growth).
    hard_cutoff:
        Neighbor-table capacity applied to every peer (``None`` unbounded).
    stubs:
        Links each joining peer attempts to create.
    join_strategy:
        Join rule used for every arrival.
    sample_interval:
        Time between topology snapshots.
    rewire_on_leave:
        Whether a departing peer's neighbors are reconnected pairwise.
    seed:
        Optional RNG seed.
    """

    initial_peers: int = 50
    duration: float = 100.0
    arrival_rate: float = 1.0
    mean_session_length: Optional[float] = 50.0
    hard_cutoff: Optional[int] = None
    stubs: int = 2
    join_strategy: JoinStrategy = JoinStrategy.PREFERENTIAL
    sample_interval: float = 10.0
    rewire_on_leave: bool = True
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.initial_peers < 2:
            raise ConfigurationError("initial_peers must be at least 2")
        if self.duration <= 0:
            raise ConfigurationError("duration must be positive")
        if self.arrival_rate < 0:
            raise ConfigurationError("arrival_rate must be non-negative")
        if self.mean_session_length is not None and self.mean_session_length <= 0:
            raise ConfigurationError("mean_session_length must be positive")
        if self.stubs < 1:
            raise ConfigurationError("stubs must be at least 1")
        if self.hard_cutoff is not None and self.hard_cutoff < self.stubs:
            raise ConfigurationError("hard_cutoff must be >= stubs")
        if self.sample_interval <= 0:
            raise ConfigurationError("sample_interval must be positive")


@dataclass
class ChurnSample:
    """One topology snapshot taken during churn."""

    time: float
    peers: int
    edges: int
    mean_degree: float
    max_degree: int
    min_degree: int
    giant_component_fraction: float
    fitted_exponent: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly representation."""
        return {
            "time": self.time,
            "peers": self.peers,
            "edges": self.edges,
            "mean_degree": self.mean_degree,
            "max_degree": self.max_degree,
            "min_degree": self.min_degree,
            "giant_component_fraction": self.giant_component_fraction,
            "fitted_exponent": self.fitted_exponent,
        }


@dataclass
class ChurnReport:
    """Full outcome of a churn simulation.

    Attributes
    ----------
    samples:
        Periodic topology snapshots, in time order.
    joins / leaves:
        Total number of arrivals and departures processed.
    final_peers:
        Number of peers online when the simulation ended.
    cutoff_violations:
        Number of times any peer's degree exceeded its hard cutoff (always 0
        unless the invariant is broken — asserted by the tests).
    """

    samples: List[ChurnSample] = field(default_factory=list)
    joins: int = 0
    leaves: int = 0
    final_peers: int = 0
    cutoff_violations: int = 0

    def max_degree_over_time(self) -> List[int]:
        """Return the sequence of maximum degrees across samples."""
        return [sample.max_degree for sample in self.samples]

    def as_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly representation."""
        return {
            "samples": [sample.as_dict() for sample in self.samples],
            "joins": self.joins,
            "leaves": self.leaves,
            "final_peers": self.final_peers,
            "cutoff_violations": self.cutoff_violations,
        }


class ChurnProcess:
    """Drive joins and leaves on a :class:`P2PNetwork` and record the topology.

    Examples
    --------
    >>> config = ChurnConfig(initial_peers=20, duration=20.0, arrival_rate=2.0,
    ...                      mean_session_length=30.0, hard_cutoff=8, stubs=2,
    ...                      sample_interval=5.0, seed=11)
    >>> report = ChurnProcess(config).run()
    >>> report.joins > 0
    True
    >>> report.cutoff_violations
    0
    """

    def __init__(self, config: ChurnConfig, network: Optional[P2PNetwork] = None) -> None:
        self.config = config
        self.rng = ensure_source(config.seed)
        self.network = network or P2PNetwork(
            hard_cutoff=config.hard_cutoff,
            stubs=config.stubs,
            join_strategy=config.join_strategy,
            rng=self.rng.spawn("network"),
        )
        self.report = ChurnReport()

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def run(self) -> ChurnReport:
        """Run the configured churn scenario and return the report."""
        config = self.config
        network = self.network

        for _ in range(config.initial_peers):
            network.join()

        self._schedule_next_arrival()
        for peer_id in network.online_peers():
            self._schedule_departure(peer_id)
        self._schedule_sample(config.sample_interval)

        network.run(until=config.duration)

        self._take_sample(config.duration)
        self.report.final_peers = network.peer_count
        return self.report

    # ------------------------------------------------------------------ #
    # Event factories
    # ------------------------------------------------------------------ #
    def _schedule_next_arrival(self) -> None:
        if self.config.arrival_rate <= 0:
            return
        delay = self.rng.expovariate(self.config.arrival_rate)
        self.network.events.schedule_in(delay, self._on_arrival, label="join")

    def _on_arrival(self) -> None:
        if self.network.now <= self.config.duration:
            peer_id = self.network.join()
            self.report.joins += 1
            self._schedule_departure(peer_id)
        self._schedule_next_arrival()

    def _schedule_departure(self, peer_id: int) -> None:
        if self.config.mean_session_length is None:
            return
        delay = self.rng.expovariate(1.0 / self.config.mean_session_length)
        self.network.events.schedule_in(
            delay, lambda: self._on_departure(peer_id), label="leave"
        )

    def _on_departure(self, peer_id: int) -> None:
        if not self.network.has_peer(peer_id):
            return
        if self.network.peer_count <= 2:
            return  # keep a minimal overlay alive
        self.network.leave(peer_id, rewire=self.config.rewire_on_leave)
        self.report.leaves += 1

    def _schedule_sample(self, at_time: float) -> None:
        if at_time > self.config.duration:
            return
        self.network.events.schedule(at_time, lambda: self._on_sample(at_time), label="sample")

    def _on_sample(self, at_time: float) -> None:
        self._take_sample(at_time)
        self._schedule_sample(at_time + self.config.sample_interval)

    # ------------------------------------------------------------------ #
    # Measurement
    # ------------------------------------------------------------------ #
    def _take_sample(self, time: float) -> None:
        graph = self.network.graph
        if graph.number_of_nodes == 0:
            return
        exponent: Optional[float] = None
        degrees = graph.degree_sequence()
        if len(set(degrees)) >= 3 and graph.number_of_nodes >= 50:
            try:
                exponent = fit_power_law(
                    degrees, k_min=max(1, self.config.stubs), exclude_cutoff_spike=True
                ).exponent
            except AnalysisError:
                exponent = None
        violations = 0
        cutoff = self.config.hard_cutoff
        if cutoff is not None:
            violations = sum(1 for degree in degrees if degree > cutoff)
        self.report.cutoff_violations += violations
        self.report.samples.append(
            ChurnSample(
                time=time,
                peers=graph.number_of_nodes,
                edges=graph.number_of_edges,
                mean_degree=graph.mean_degree(),
                max_degree=graph.max_degree(),
                min_degree=graph.min_degree(),
                giant_component_fraction=giant_component_fraction(graph),
                fitted_exponent=exponent,
            )
        )
