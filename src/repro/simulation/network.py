"""The live overlay network: peers, links, message delivery, join and leave.

:class:`P2PNetwork` is the dynamic counterpart of the static graphs produced
by :mod:`repro.generators`.  It keeps a :class:`~repro.core.graph.Graph` and
the per-peer :class:`~repro.simulation.peer.Peer` state in sync, delivers
messages through a :class:`~repro.simulation.events.EventQueue` with
configurable link latency, and implements peer *join* using the same three
families of rules the paper studies for topology construction:

* ``"random"`` — connect to uniformly random online peers (the baseline);
* ``"preferential"`` — degree-proportional choice over all online peers,
  i.e. the PA rule (requires global degree knowledge, as Table II notes);
* ``"hop_and_attempt"`` — the HAPA rule: start from a random bootstrap peer
  and hop along overlay links, attempting preferentially at every step;
* ``"discover"`` — the DAPA rule: discover candidate peers within a bounded
  horizon of an attachment point and attach preferentially among them (fully
  local).

Every join respects the hard cutoffs of both end points, so the overlay's
maximum degree never exceeds the configured bound — even under churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import SimulationError
from repro.core.graph import Graph
from repro.core.rng import RandomSource, ensure_source
from repro.core.types import NodeId
from repro.simulation.events import EventQueue
from repro.simulation.messages import Message
from repro.simulation.peer import NeighborTable, Peer
from repro.substrate.horizon import bfs_horizon

__all__ = ["JoinStrategy", "LatencyModel", "P2PNetwork"]


class JoinStrategy(str, Enum):
    """Peer-join rules supported by :meth:`P2PNetwork.join`."""

    RANDOM = "random"
    PREFERENTIAL = "preferential"
    HOP_AND_ATTEMPT = "hop_and_attempt"
    DISCOVER = "discover"


@dataclass(frozen=True)
class LatencyModel:
    """Per-hop message latency: uniform in ``[minimum, maximum]``.

    The default (10–50 ms) is a generic wide-area overlay latency; the exact
    values only matter for the event-ordering of the protocol simulation, not
    for any of the paper's metrics.
    """

    minimum: float = 0.010
    maximum: float = 0.050

    def sample(self, rng: RandomSource) -> float:
        """Draw one latency value."""
        if self.maximum <= self.minimum:
            return self.minimum
        return rng.uniform(self.minimum, self.maximum)


MessageHandler = Callable[["P2PNetwork", NodeId, NodeId, Message], None]


class P2PNetwork:
    """A dynamic unstructured P2P overlay with bounded-degree peers.

    Parameters
    ----------
    hard_cutoff:
        Default neighbor-table capacity applied to peers that do not specify
        their own (``None`` for unbounded tables).
    stubs:
        Default number of links a joining peer tries to establish.
    join_strategy:
        Default join rule (see :class:`JoinStrategy`).
    horizon:
        Hop horizon used by the ``"discover"`` join rule.
    latency:
        Link-latency model for message delivery.
    rng:
        Random source or seed.

    Examples
    --------
    >>> net = P2PNetwork(hard_cutoff=4, stubs=2, rng=1)
    >>> ids = [net.join() for _ in range(10)]
    >>> net.peer_count
    10
    >>> net.overlay_graph().max_degree() <= 4
    True
    """

    def __init__(
        self,
        hard_cutoff: Optional[int] = None,
        stubs: int = 2,
        join_strategy: "JoinStrategy | str" = JoinStrategy.PREFERENTIAL,
        horizon: int = 2,
        latency: Optional[LatencyModel] = None,
        rng: "RandomSource | int | None" = None,
    ) -> None:
        if stubs < 1:
            raise SimulationError("stubs must be at least 1")
        if hard_cutoff is not None and hard_cutoff < stubs:
            raise SimulationError("hard_cutoff must be >= stubs")
        if horizon < 1:
            raise SimulationError("horizon must be at least 1")
        self.default_hard_cutoff = hard_cutoff
        self.default_stubs = stubs
        self.default_join_strategy = JoinStrategy(join_strategy)
        self.horizon = horizon
        self.latency = latency or LatencyModel()
        self.rng = ensure_source(rng)
        self.events = EventQueue()
        self.peers: Dict[NodeId, Peer] = {}
        self._graph = Graph()
        self._next_peer_id = 0
        self._message_handler: Optional[MessageHandler] = None
        self.messages_delivered = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def peer_count(self) -> int:
        """Number of online peers."""
        return len(self.peers)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.events.now

    def peer(self, peer_id: NodeId) -> Peer:
        """Return the :class:`Peer` with ``peer_id`` (it must be online)."""
        try:
            return self.peers[peer_id]
        except KeyError:
            raise SimulationError(f"peer {peer_id} is not online") from None

    def has_peer(self, peer_id: NodeId) -> bool:
        """Return ``True`` when ``peer_id`` is currently online."""
        return peer_id in self.peers

    def online_peers(self) -> List[NodeId]:
        """Return the ids of all online peers.

        The order is the peers' join order (dict insertion order), which is
        a pure function of the seeded event history — every draw made over
        this list is therefore reproducible.  Do not "fix" this to
        ``sorted(...)``: that would version every pinned simulation draw
        sequence.
        """
        return list(self.peers.keys())  # repro-lint: disable=RPL102(join-order iteration is a pure function of the seeded event history; sorting would version every pinned simulation draw stream)

    def overlay_graph(self) -> Graph:
        """Return a copy of the current overlay graph (online peers only)."""
        return self._graph.copy()

    @property
    def graph(self) -> Graph:
        """The live overlay graph (do not mutate directly; use connect/disconnect)."""
        return self._graph

    def degree(self, peer_id: NodeId) -> int:
        """Return the overlay degree of an online peer."""
        return self.peer(peer_id).degree

    # ------------------------------------------------------------------ #
    # Link management
    # ------------------------------------------------------------------ #
    def connect(self, u: NodeId, v: NodeId) -> bool:
        """Create the overlay link ``(u, v)`` if both neighbor tables allow it."""
        if u == v:
            return False
        peer_u, peer_v = self.peer(u), self.peer(v)
        if v in peer_u.neighbor_table or u in peer_v.neighbor_table:
            return False
        if peer_u.neighbor_table.is_full or peer_v.neighbor_table.is_full:
            return False
        peer_u.neighbor_table.add(v)
        peer_v.neighbor_table.add(u)
        self._graph.add_edge(u, v)
        return True

    def disconnect(self, u: NodeId, v: NodeId) -> bool:
        """Remove the overlay link ``(u, v)`` if it exists."""
        if not self._graph.has_edge(u, v):
            return False
        self.peer(u).neighbor_table.remove(v)
        self.peer(v).neighbor_table.remove(u)
        self._graph.remove_edge(u, v)
        return True

    # ------------------------------------------------------------------ #
    # Join
    # ------------------------------------------------------------------ #
    def join(
        self,
        peer_id: Optional[NodeId] = None,
        hard_cutoff: Optional[int] = "default",  # type: ignore[assignment]
        stubs: Optional[int] = None,
        strategy: "JoinStrategy | str | None" = None,
        shared_items: Optional[Sequence[str]] = None,
    ) -> NodeId:
        """Add a peer to the network and connect it using the join rule.

        Returns the new peer's id.  The first peer of an empty network joins
        without links; subsequent peers obtain up to ``stubs`` links, subject
        to the hard cutoffs of the chosen targets.
        """
        if peer_id is None:
            peer_id = self._next_peer_id
        if peer_id in self.peers:
            raise SimulationError(f"peer {peer_id} is already online")
        self._next_peer_id = max(self._next_peer_id, peer_id) + 1

        if hard_cutoff == "default":
            hard_cutoff = self.default_hard_cutoff
        capacity = hard_cutoff
        table = NeighborTable(capacity=capacity)
        peer = Peer(peer_id=peer_id, neighbor_table=table, joined_at=self.now)
        if shared_items:
            for item in shared_items:
                peer.share(item)

        existing = self.online_peers()
        self.peers[peer_id] = peer
        self._graph.add_node(peer_id)

        if not existing:
            return peer_id

        stub_count = stubs if stubs is not None else self.default_stubs
        join_rule = JoinStrategy(strategy) if strategy is not None else self.default_join_strategy
        targets = self._select_targets(peer_id, existing, stub_count, join_rule)
        for target in targets:
            self.connect(peer_id, target)
        return peer_id

    def _select_targets(
        self,
        new_peer: NodeId,
        existing: Sequence[NodeId],
        stubs: int,
        strategy: JoinStrategy,
    ) -> List[NodeId]:
        eligible = [
            peer_id
            for peer_id in existing
            if not self.peers[peer_id].neighbor_table.is_full
        ]
        if not eligible:
            return []
        wanted = min(stubs, len(eligible))

        if strategy is JoinStrategy.RANDOM:
            return self.rng.sample(eligible, wanted)
        if strategy is JoinStrategy.PREFERENTIAL:
            return self._preferential_targets(eligible, wanted)
        if strategy is JoinStrategy.HOP_AND_ATTEMPT:
            return self._hop_and_attempt_targets(eligible, wanted)
        return self._discover_targets(eligible, wanted)

    def _preferential_targets(self, eligible: Sequence[NodeId], wanted: int) -> List[NodeId]:
        chosen: List[NodeId] = []
        pool = list(eligible)
        for _ in range(wanted):
            if not pool:
                break
            weights = [max(1, self.peers[p].degree) for p in pool]
            index = self.rng.weighted_index(weights)
            chosen.append(pool.pop(index))
        return chosen

    def _hop_and_attempt_targets(
        self, eligible: Sequence[NodeId], wanted: int
    ) -> List[NodeId]:
        chosen: List[NodeId] = []
        total_degree = max(1, self._graph.total_degree)
        current = eligible[self.rng.randint(0, len(eligible) - 1)]
        attempts_budget = 200 * max(1, wanted)
        while len(chosen) < wanted and attempts_budget > 0:
            attempts_budget -= 1
            peer = self.peers.get(current)
            if (
                peer is not None
                and current not in chosen
                and not peer.neighbor_table.is_full
                and self.rng.random() < max(1, peer.degree) / total_degree
            ):
                chosen.append(current)
            next_hop = self._graph.random_neighbor(current, self.rng)
            if next_hop is None:
                current = eligible[self.rng.randint(0, len(eligible) - 1)]
            else:
                current = next_hop
        if len(chosen) < wanted:
            remainder = [p for p in eligible if p not in chosen]
            chosen.extend(self.rng.sample(remainder, wanted - len(chosen)))
        return chosen[:wanted]

    def _discover_targets(self, eligible: Sequence[NodeId], wanted: int) -> List[NodeId]:
        entry_point = eligible[self.rng.randint(0, len(eligible) - 1)]
        horizon_peers = bfs_horizon(
            self._graph, entry_point, self.horizon, eligible=set(eligible)
        )
        candidates = [entry_point] + [p for p in horizon_peers if p != entry_point]
        candidates = [
            p for p in candidates if not self.peers[p].neighbor_table.is_full
        ]
        if len(candidates) <= wanted:
            return candidates
        chosen: List[NodeId] = []
        pool = list(candidates)
        for _ in range(wanted):
            weights = [max(1, self.peers[p].degree) for p in pool]
            index = self.rng.weighted_index(weights)
            chosen.append(pool.pop(index))
        return chosen

    # ------------------------------------------------------------------ #
    # Leave
    # ------------------------------------------------------------------ #
    def leave(self, peer_id: NodeId, rewire: bool = True) -> List[Tuple[NodeId, NodeId]]:
        """Remove an online peer.

        With ``rewire=True`` (default) the departing peer's neighbors are
        reconnected pairwise (subject to their cutoffs) so the overlay does
        not fragment — the simple maintenance rule the paper's future-work
        section asks for.  Returns the list of replacement links created.
        """
        peer = self.peer(peer_id)
        neighbors = peer.neighbors()
        for neighbor in neighbors:
            self.disconnect(peer_id, neighbor)
        self._graph.remove_node(peer_id)
        peer.online = False
        peer.left_at = self.now
        del self.peers[peer_id]

        created: List[Tuple[NodeId, NodeId]] = []
        if rewire and len(neighbors) >= 2:
            shuffled = self.rng.shuffled(neighbors)
            for first, second in zip(shuffled[::2], shuffled[1::2]):
                if self.connect(first, second):
                    created.append((first, second))
        return created

    # ------------------------------------------------------------------ #
    # Messaging
    # ------------------------------------------------------------------ #
    def set_message_handler(self, handler: MessageHandler) -> None:
        """Register the callable invoked whenever a message is delivered."""
        self._message_handler = handler

    def send(self, sender: NodeId, recipient: NodeId, message: Message) -> None:
        """Schedule delivery of ``message`` from ``sender`` to ``recipient``."""
        if recipient not in self.peers:
            return  # the recipient left before delivery; the message is lost
        delay = self.latency.sample(self.rng)
        self.events.schedule_in(
            delay,
            lambda: self._deliver(sender, recipient, message),
            label=f"deliver:{type(message).__name__}",
        )

    def _deliver(self, sender: NodeId, recipient: NodeId, message: Message) -> None:
        peer = self.peers.get(recipient)
        if peer is None:
            return
        peer.messages_received += 1
        self.messages_delivered += 1
        if self._message_handler is not None:
            self._message_handler(self, sender, recipient, message)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the event queue (see :meth:`EventQueue.run`)."""
        return self.events.run(until=until, max_events=max_events)

    # ------------------------------------------------------------------ #
    # Bulk construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        hard_cutoff: Optional[int] = None,
        rng: "RandomSource | int | None" = None,
        **kwargs: object,
    ) -> "P2PNetwork":
        """Wrap an already-generated overlay graph into a live network.

        The neighbor tables are sized to ``hard_cutoff`` (or to each node's
        current degree when that degree already exceeds the cutoff, so the
        imported topology is preserved verbatim).
        """
        network = cls(hard_cutoff=hard_cutoff, rng=rng, **kwargs)
        for node in graph.nodes():
            capacity = hard_cutoff
            if capacity is not None:
                capacity = max(capacity, graph.degree(node))
            network.peers[node] = Peer(
                peer_id=node, neighbor_table=NeighborTable(capacity=capacity)
            )
            network._graph.add_node(node)
            network._next_peer_id = max(network._next_peer_id, node + 1)
        for u, v in graph.edges():
            network.peers[u].neighbor_table.add(v)
            network.peers[v].neighbor_table.add(u)
            network._graph.add_edge(u, v)
        return network
