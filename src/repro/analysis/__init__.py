"""Topological analysis of overlay networks.

These routines compute the quantities the paper reports for every generated
topology:

* degree distributions ``P(k)`` and their log-binned / CCDF forms
  (:mod:`repro.analysis.degree_distribution`, Figs. 1–4);
* power-law exponent estimates γ, by discrete maximum likelihood and by
  log–log least squares (:mod:`repro.analysis.powerlaw`, Figs. 1c and 4g);
* natural-cutoff estimators (:mod:`repro.analysis.cutoff`, Eqs. 2, 4, 5);
* shortest-path / diameter statistics (:mod:`repro.analysis.paths`, Table I);
* connected-component structure (:mod:`repro.analysis.components`);
* robustness to random failures and targeted attacks
  (:mod:`repro.analysis.robustness`, the "robust yet fragile" property cited
  in §III).
"""

from repro.analysis.assortativity import degree_assortativity
from repro.analysis.clustering import average_clustering, local_clustering, transitivity
from repro.analysis.components import (
    connected_components,
    giant_component,
    giant_component_fraction,
    is_connected,
)
from repro.analysis.cutoff import (
    empirical_cutoff,
    natural_cutoff_aiello,
    natural_cutoff_dorogovtsev,
    natural_cutoff_pa,
)
from repro.analysis.degree_distribution import (
    ccdf,
    degree_distribution,
    degree_histogram,
    log_binned_distribution,
)
from repro.analysis.paths import (
    average_shortest_path_length,
    diameter,
    path_length_statistics,
)
from repro.analysis.powerlaw import (
    PowerLawFit,
    fit_power_law,
    fit_power_law_mle,
    fit_power_law_regression,
)
from repro.analysis.robustness import RemovalResult, attack_robustness, failure_robustness

__all__ = [
    "PowerLawFit",
    "RemovalResult",
    "attack_robustness",
    "average_clustering",
    "average_shortest_path_length",
    "ccdf",
    "connected_components",
    "degree_assortativity",
    "degree_distribution",
    "degree_histogram",
    "diameter",
    "empirical_cutoff",
    "failure_robustness",
    "fit_power_law",
    "fit_power_law_mle",
    "fit_power_law_regression",
    "giant_component",
    "giant_component_fraction",
    "is_connected",
    "local_clustering",
    "log_binned_distribution",
    "natural_cutoff_aiello",
    "natural_cutoff_dorogovtsev",
    "natural_cutoff_pa",
    "path_length_statistics",
    "transitivity",
]
