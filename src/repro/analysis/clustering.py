"""Clustering coefficients of overlay graphs.

The paper notes that the PA model with ``m = 1`` produces "a scale-free tree
without clustering (loops)", and clustering is one of the standard
topological characteristics alongside the degree distribution and the
diameter.  These helpers compute the local clustering coefficient of a node
(the fraction of its neighbor pairs that are themselves connected), the
network average, and the global transitivity (triangle density), so the
examples and ablations can quantify how the construction mechanism and the
hard cutoff shape local link redundancy.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.errors import AnalysisError
from repro.core.graph import Graph
from repro.core.rng import RandomSource, ensure_source
from repro.core.types import NodeId

__all__ = [
    "local_clustering",
    "average_clustering",
    "transitivity",
]


def local_clustering(graph: Graph, node: NodeId) -> float:
    """Return the local clustering coefficient of ``node``.

    Nodes of degree 0 or 1 have no neighbor pairs; their coefficient is 0 by
    convention.

    Examples
    --------
    >>> triangle_plus_tail = Graph.from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
    >>> local_clustering(triangle_plus_tail, 0)
    1.0
    >>> local_clustering(triangle_plus_tail, 2)
    0.3333333333333333
    >>> local_clustering(triangle_plus_tail, 3)
    0.0
    """
    neighbors = graph.neighbors(node)
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    links_between_neighbors = 0
    for index, first in enumerate(neighbors):
        first_neighbors = graph.neighbor_set(first)
        for second in neighbors[index + 1 :]:
            if second in first_neighbors:
                links_between_neighbors += 1
    possible = degree * (degree - 1) / 2
    return links_between_neighbors / possible


def average_clustering(
    graph: Graph,
    sample_size: Optional[int] = None,
    rng: "RandomSource | int | None" = None,
) -> float:
    """Return the mean local clustering coefficient over (a sample of) nodes.

    Examples
    --------
    >>> average_clustering(Graph.complete(5))
    1.0
    >>> from repro.generators.pa import generate_pa
    >>> average_clustering(generate_pa(200, stubs=1, seed=1))   # a tree
    0.0
    """
    nodes = graph.nodes()
    if not nodes:
        raise AnalysisError("the graph has no nodes")
    if sample_size is not None and sample_size < len(nodes):
        if sample_size < 1:
            raise AnalysisError("sample_size must be at least 1")
        nodes = ensure_source(rng).sample(nodes, sample_size)
    total = sum(local_clustering(graph, node) for node in nodes)
    return total / len(nodes)


def transitivity(graph: Graph) -> float:
    """Return the global transitivity: ``3 × triangles / connected triples``.

    Examples
    --------
    >>> transitivity(Graph.complete(4))
    1.0
    >>> transitivity(Graph.from_edges(3, [(0, 1), (1, 2)]))
    0.0
    """
    if graph.number_of_nodes == 0:
        raise AnalysisError("the graph has no nodes")
    closed_triples = 0
    triples = 0
    for node in graph.nodes():
        neighbors = graph.neighbors(node)
        degree = len(neighbors)
        if degree < 2:
            continue
        triples += degree * (degree - 1) / 2
        for index, first in enumerate(neighbors):
            first_neighbors = graph.neighbor_set(first)
            for second in neighbors[index + 1 :]:
                if second in first_neighbors:
                    closed_triples += 1
    if triples == 0:
        return 0.0
    return closed_triples / triples
