"""Shortest-path statistics: average path length and diameter (paper Table I).

The paper relates search efficiency to the diameter / average shortest path
of the overlay: small-world networks scale as ``ln N``, scale-free networks
with 2 < γ < 3 as ``ln ln N`` ("ultra-small"), γ = 3 with m ≥ 2 as
``ln N / ln ln N``, and the γ = 3 tree (m = 1) as ``ln N``.  Exact all-pairs
BFS is O(N·E); for the network sizes of the paper that is affordable for the
average path length but wasteful when only a trend is needed, so a sampled
variant (BFS from a random subset of sources) is provided and used by the
Table I bench.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.analysis.components import giant_component
from repro.core.errors import AnalysisError
from repro.core.graph import Graph
from repro.core.rng import RandomSource, ensure_source
from repro.core.types import NodeId
from repro.substrate.horizon import bfs_distances

__all__ = [
    "PathLengthStatistics",
    "average_shortest_path_length",
    "diameter",
    "path_length_statistics",
]


@dataclass(frozen=True)
class PathLengthStatistics:
    """Summary of shortest-path lengths within the giant component.

    Attributes
    ----------
    average:
        Mean shortest-path length over sampled source–destination pairs.
    diameter:
        Largest shortest-path length observed (the *eccentricity maximum*
        over sampled sources; exact when sampling covers every node).
    sources_sampled:
        Number of BFS sources used.
    nodes_in_component:
        Size of the giant component the statistics refer to.
    exact:
        ``True`` when every node of the component served as a BFS source.
    """

    average: float
    diameter: int
    sources_sampled: int
    nodes_in_component: int
    exact: bool

    def as_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly representation."""
        return {
            "average": self.average,
            "diameter": self.diameter,
            "sources_sampled": self.sources_sampled,
            "nodes_in_component": self.nodes_in_component,
            "exact": self.exact,
        }


def path_length_statistics(
    graph: Graph,
    sample_size: Optional[int] = None,
    rng: "RandomSource | int | None" = None,
    restrict_to_giant_component: bool = True,
) -> PathLengthStatistics:
    """Compute average shortest-path length and diameter (possibly sampled).

    Parameters
    ----------
    graph:
        The graph to analyse.
    sample_size:
        Number of BFS source nodes.  ``None`` uses every node (exact).
    rng:
        Random source or seed for source sampling.
    restrict_to_giant_component:
        Distances are only defined within a component; by default the
        statistics are computed on the giant component (the paper's graphs
        are connected except CM/DAPA with ``m = 1``).

    Examples
    --------
    >>> stats = path_length_statistics(Graph.complete(5))
    >>> stats.average
    1.0
    >>> stats.diameter
    1
    """
    if graph.number_of_nodes == 0:
        raise AnalysisError("the graph has no nodes")

    if restrict_to_giant_component:
        component = giant_component(graph)
        if len(component) < graph.number_of_nodes:
            graph = graph.subgraph(component)
    nodes = graph.nodes()
    if len(nodes) < 2:
        return PathLengthStatistics(
            average=0.0,
            diameter=0,
            sources_sampled=len(nodes),
            nodes_in_component=len(nodes),
            exact=True,
        )

    source = ensure_source(rng)
    if sample_size is None or sample_size >= len(nodes):
        sources: Sequence[NodeId] = nodes
        exact = True
    else:
        if sample_size < 1:
            raise AnalysisError("sample_size must be at least 1")
        sources = source.sample(nodes, sample_size)
        exact = False

    total_distance = 0
    total_pairs = 0
    observed_diameter = 0
    for origin in sources:
        distances = bfs_distances(graph, origin)
        for destination, distance in distances.items():
            if destination == origin:
                continue
            total_distance += distance
            total_pairs += 1
            if distance > observed_diameter:
                observed_diameter = distance

    average = total_distance / total_pairs if total_pairs else 0.0
    return PathLengthStatistics(
        average=average,
        diameter=observed_diameter,
        sources_sampled=len(sources),
        nodes_in_component=len(nodes),
        exact=exact,
    )


def average_shortest_path_length(
    graph: Graph,
    sample_size: Optional[int] = None,
    rng: "RandomSource | int | None" = None,
) -> float:
    """Return the (possibly sampled) average shortest-path length.

    Examples
    --------
    >>> average_shortest_path_length(Graph.complete(6))
    1.0
    """
    return path_length_statistics(graph, sample_size=sample_size, rng=rng).average


def diameter(
    graph: Graph,
    sample_size: Optional[int] = None,
    rng: "RandomSource | int | None" = None,
) -> int:
    """Return the (possibly sampled) diameter of the giant component.

    Examples
    --------
    >>> g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    >>> diameter(g)
    3
    """
    return path_length_statistics(graph, sample_size=sample_size, rng=rng).diameter


def expected_diameter_class(exponent: float, stubs: int) -> str:
    """Return the paper's Table I diameter class for (γ, m).

    Returns one of ``"lnlnN"``, ``"lnN/lnlnN"``, or ``"lnN"``.

    Examples
    --------
    >>> expected_diameter_class(2.5, 1)
    'lnlnN'
    >>> expected_diameter_class(3.0, 2)
    'lnN/lnlnN'
    >>> expected_diameter_class(3.0, 1)
    'lnN'
    >>> expected_diameter_class(3.5, 2)
    'lnN'
    """
    if exponent <= 1.0 or stubs < 1:
        raise AnalysisError("exponent must exceed 1 and stubs must be >= 1")
    if 2.0 < exponent < 3.0:
        return "lnlnN"
    if math.isclose(exponent, 3.0, abs_tol=1e-9):
        return "lnN/lnlnN" if stubs >= 2 else "lnN"
    return "lnN"
