"""Power-law exponent estimation for degree distributions.

The paper's Figs. 1(c) and 4(g) report how the fitted exponent γ of the
degree distribution changes with the hard cutoff.  Two complementary
estimators are provided:

* :func:`fit_power_law_mle` — the discrete maximum-likelihood estimator
  (Clauset–Shalizi–Newman), solved numerically on the truncated support
  ``[k_min, k_max]``.  Robust, no binning decisions, and the one the
  experiment harness uses by default.
* :func:`fit_power_law_regression` — ordinary least squares of ``log P(k)``
  against ``log k``, the estimator the physics literature of the paper's era
  (and the paper's own figures, which quote slopes of dashed guide lines)
  typically used.  Sensitive to the noisy tail; offered for comparison and
  for reproducing the paper's fitting convention.

Both return a :class:`PowerLawFit` carrying the exponent, the fit range, and
a goodness-of-fit measure (Kolmogorov–Smirnov distance for the MLE,
R² for the regression).

When a hard cutoff is in force the spike of nodes at ``k = kc`` is *not*
part of the power-law body; :func:`fit_power_law` therefore accepts
``exclude_cutoff_spike=True`` (the default used by the Fig. 1(c)/4(g)
harnesses) which trims the largest degree value from the fit range when it
holds an anomalously large probability mass, mirroring the paper's statement
that the exponents are measured "when the jump on the hard cutoffs is taken
into account".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.analysis._util import degrees_from
from repro.analysis.degree_distribution import degree_distribution, degree_histogram
from repro.core.errors import AnalysisError
from repro.core.graph import Graph

__all__ = [
    "PowerLawFit",
    "fit_power_law",
    "fit_power_law_mle",
    "fit_power_law_regression",
]

GraphOrDegrees = Union[Graph, Sequence[int]]


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a power-law fit to a degree distribution.

    Attributes
    ----------
    exponent:
        The estimated exponent γ (positive; ``P(k) ∝ k^{-γ}``).
    k_min:
        Smallest degree included in the fit.
    k_max:
        Largest degree included in the fit.
    method:
        ``"mle"`` or ``"regression"``.
    goodness:
        Kolmogorov–Smirnov distance (``mle``, smaller is better) or R²
        (``regression``, closer to 1 is better).
    sample_size:
        Number of nodes whose degrees fell inside the fit range.
    """

    exponent: float
    k_min: int
    k_max: int
    method: str
    goodness: float
    sample_size: int

    def as_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly representation."""
        return {
            "exponent": self.exponent,
            "k_min": self.k_min,
            "k_max": self.k_max,
            "method": self.method,
            "goodness": self.goodness,
            "sample_size": self.sample_size,
        }


def _fit_range_degrees(
    degrees: Sequence[int],
    k_min: int,
    k_max: Optional[int],
) -> np.ndarray:
    values = np.array([d for d in degrees if d >= k_min], dtype=float)
    if k_max is not None:
        values = values[values <= k_max]
    if values.size < 2:
        raise AnalysisError(
            "not enough degrees in the fit range to estimate an exponent"
        )
    return values


def fit_power_law_mle(
    source: GraphOrDegrees,
    k_min: int = 1,
    k_max: Optional[int] = None,
) -> PowerLawFit:
    """Discrete maximum-likelihood power-law fit on ``[k_min, k_max]``.

    The exponent maximises the truncated zeta likelihood
    ``L(γ) = -γ Σ ln k_i - n ln Z(γ)`` with ``Z(γ) = Σ_{k=k_min}^{k_max} k^{-γ}``,
    solved by golden-section search over γ ∈ (1.05, 6).

    Examples
    --------
    >>> rng = np.random.default_rng(0)
    >>> sample = (rng.pareto(1.5, size=5000) + 1).astype(int) + 1
    >>> fit = fit_power_law_mle(list(sample), k_min=2)
    >>> 2.0 < fit.exponent < 3.2
    True
    """
    degrees = degrees_from(source)
    values = _fit_range_degrees(degrees, k_min, k_max)
    upper = int(values.max()) if k_max is None else k_max
    support = np.arange(k_min, upper + 1, dtype=float)
    log_sum = float(np.log(values).sum())
    n = values.size

    def negative_log_likelihood(gamma: float) -> float:
        normalisation = float(np.power(support, -gamma).sum())
        return gamma * log_sum + n * math.log(normalisation)

    low, high = 1.05, 6.0
    golden = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = low, high
    c = b - golden * (b - a)
    d = a + golden * (b - a)
    fc, fd = negative_log_likelihood(c), negative_log_likelihood(d)
    for _ in range(200):
        if abs(b - a) < 1e-7:
            break
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - golden * (b - a)
            fc = negative_log_likelihood(c)
        else:
            a, c, fc = c, d, fd
            d = a + golden * (b - a)
            fd = negative_log_likelihood(d)
    gamma = (a + b) / 2.0

    # Goodness of fit: KS distance between empirical and model CDFs.
    model_pmf = np.power(support, -gamma)
    model_pmf /= model_pmf.sum()
    model_cdf = np.cumsum(model_pmf)
    histogram = degree_histogram([int(v) for v in values])
    empirical_counts = np.array(
        [histogram.get(int(k), 0) for k in support], dtype=float
    )
    empirical_cdf = np.cumsum(empirical_counts) / empirical_counts.sum()
    ks_distance = float(np.max(np.abs(empirical_cdf - model_cdf)))

    return PowerLawFit(
        exponent=float(gamma),
        k_min=k_min,
        k_max=upper,
        method="mle",
        goodness=ks_distance,
        sample_size=int(n),
    )


def fit_power_law_regression(
    source: GraphOrDegrees,
    k_min: int = 1,
    k_max: Optional[int] = None,
) -> PowerLawFit:
    """Least-squares fit of ``log10 P(k)`` against ``log10 k``.

    Examples
    --------
    >>> degrees = [k for k in range(1, 50) for _ in range(max(1, int(10000 * k**-2.5)))]
    >>> fit = fit_power_law_regression(degrees, k_min=1)
    >>> 2.0 < fit.exponent < 3.0
    True
    """
    degrees = degrees_from(source)
    distribution = degree_distribution(degrees)
    upper = k_max if k_max is not None else max(distribution)
    points = [
        (k, p)
        for k, p in distribution.items()
        if k_min <= k <= upper and k > 0 and p > 0
    ]
    if len(points) < 2:
        raise AnalysisError("need at least two distinct degrees to fit a power law")
    log_k = np.log10([k for k, _ in points])
    log_p = np.log10([p for _, p in points])
    slope, intercept = np.polyfit(log_k, log_p, 1)
    predicted = slope * log_k + intercept
    residual = log_p - predicted
    total = log_p - log_p.mean()
    denominator = float(np.dot(total, total))
    r_squared = 1.0 - float(np.dot(residual, residual)) / denominator if denominator else 1.0
    sample_size = sum(
        1 for degree in degrees if k_min <= degree <= upper and degree > 0
    )
    return PowerLawFit(
        exponent=float(-slope),
        k_min=k_min,
        k_max=int(upper),
        method="regression",
        goodness=r_squared,
        sample_size=sample_size,
    )


def fit_power_law(
    source: GraphOrDegrees,
    k_min: int = 1,
    k_max: Optional[int] = None,
    method: str = "mle",
    exclude_cutoff_spike: bool = False,
    spike_threshold: float = 2.0,
) -> PowerLawFit:
    """Fit a power law, optionally trimming a hard-cutoff spike first.

    Parameters
    ----------
    source:
        Graph or degree sequence.
    k_min, k_max:
        Fit range (inclusive).
    method:
        ``"mle"`` (default) or ``"regression"``.
    exclude_cutoff_spike:
        When ``True``, if the maximum degree in range holds more probability
        mass than ``spike_threshold`` times what the surrounding trend
        predicts, the fit range is shrunk to exclude it.  This is the
        treatment used for topologies generated with a hard cutoff, where the
        accumulation of saturated nodes at ``k = kc`` would otherwise bias γ.
    spike_threshold:
        Sensitivity of spike detection (ratio of observed to extrapolated
        probability at the largest degree).

    Examples
    --------
    >>> degrees = [1] * 500 + [2] * 120 + [3] * 55 + [4] * 30 + [10] * 80
    >>> with_spike = fit_power_law(degrees, method="regression")
    >>> trimmed = fit_power_law(degrees, method="regression",
    ...                         exclude_cutoff_spike=True)
    >>> trimmed.k_max < with_spike.k_max
    True
    """
    if method not in ("mle", "regression"):
        raise AnalysisError(f"unknown fit method {method!r}")
    degrees = degrees_from(source)
    effective_k_max = k_max

    if exclude_cutoff_spike:
        distribution = degree_distribution(degrees)
        in_range = sorted(
            k
            for k in distribution
            if k >= k_min and (k_max is None or k <= k_max) and k > 0
        )
        if len(in_range) >= 3:
            largest = in_range[-1]
            body = in_range[:-1]
            log_k = np.log10(body)
            log_p = np.log10([distribution[k] for k in body])
            slope, intercept = np.polyfit(log_k, log_p, 1)
            predicted_at_largest = 10 ** (slope * math.log10(largest) + intercept)
            nodes_at_largest = distribution[largest] * len(degrees)
            # A genuine hard-cutoff spike holds many nodes; a single straggler
            # in the natural tail does not and should stay in the fit.
            if (
                nodes_at_largest >= 5
                and distribution[largest] > spike_threshold * predicted_at_largest
            ):
                effective_k_max = body[-1]

    if method == "mle":
        return fit_power_law_mle(degrees, k_min=k_min, k_max=effective_k_max)
    return fit_power_law_regression(degrees, k_min=k_min, k_max=effective_k_max)
