"""Natural-cutoff estimators (paper §III-A, Eqs. 1–5).

A finite scale-free network cannot contain arbitrarily large hubs: the
*natural cutoff* is the largest degree one expects to observe in a network of
``N`` nodes.  The paper quotes three related estimates:

* Aiello–Chung–Lu (Eq. 2): ``k_nc ~ N^{1/γ}`` — the degree whose expected
  number of occupants is one;
* Dorogovtsev–Mendes (Eq. 4): ``k_nc ~ m N^{1/(γ-1)}`` — the degree above
  which one expects at most one node (the definition the paper adopts);
* PA special case (Eq. 5): ``k_nc ~ m √N`` for γ = 3.

A *hard* cutoff is only meaningful when it is smaller than the natural
cutoff, so these estimators are used by the experiment harness to sanity-
check every cutoff sweep and by the ``benchmarks/test_natural_cutoff.py``
bench that verifies the scaling empirically.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.analysis._util import degrees_from
from repro.core.errors import AnalysisError
from repro.core.graph import Graph
from repro.generators.degree_sequence import aiello_natural_cutoff, natural_cutoff

__all__ = [
    "natural_cutoff_aiello",
    "natural_cutoff_dorogovtsev",
    "natural_cutoff_pa",
    "empirical_cutoff",
]


def natural_cutoff_aiello(number_of_nodes: int, exponent: float) -> float:
    """Aiello et al. natural cutoff ``N^{1/γ}`` (paper Eq. 2).

    Examples
    --------
    >>> round(natural_cutoff_aiello(1000, 3.0))
    10
    """
    return aiello_natural_cutoff(number_of_nodes, exponent)


def natural_cutoff_dorogovtsev(
    number_of_nodes: int, exponent: float, min_degree: int = 1
) -> float:
    """Dorogovtsev et al. natural cutoff ``m N^{1/(γ-1)}`` (paper Eq. 4).

    Examples
    --------
    >>> round(natural_cutoff_dorogovtsev(10000, 3.0, min_degree=1))
    100
    """
    return natural_cutoff(number_of_nodes, exponent, min_degree)


def natural_cutoff_pa(number_of_nodes: int, min_degree: int = 1) -> float:
    """Natural cutoff of a PA (γ = 3) network, ``m √N`` (paper Eq. 5).

    Examples
    --------
    >>> natural_cutoff_pa(10000, min_degree=2)
    200.0
    """
    return natural_cutoff(number_of_nodes, 3.0, min_degree)


def empirical_cutoff(source: Union[Graph, Sequence[int]]) -> int:
    """Return the maximum observed degree of a graph or degree sequence.

    Examples
    --------
    >>> empirical_cutoff([1, 5, 3])
    5
    """
    degrees = degrees_from(source)
    if not degrees:
        raise AnalysisError("cannot compute the cutoff of an empty graph")
    return max(degrees)
