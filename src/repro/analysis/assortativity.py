"""Degree assortativity (degree–degree correlations).

The configuration model is introduced by the paper as a generator of
*uncorrelated* random networks, whereas growth models such as PA develop
degree–degree correlations (older hubs attach to younger low-degree nodes,
giving mild disassortativity).  The degree assortativity coefficient — the
Pearson correlation of the degrees at the two ends of an edge (Newman 2002)
— quantifies this and lets the test-suite verify the "uncorrelated" claim
for CM and the effect of hard cutoffs on the correlations of PA networks.
"""

from __future__ import annotations

from repro.core.errors import AnalysisError
from repro.core.graph import Graph

__all__ = ["degree_assortativity"]


def degree_assortativity(graph: Graph) -> float:
    """Return the degree assortativity coefficient ``r`` in ``[-1, 1]``.

    ``r > 0``: high-degree nodes attach to high-degree nodes (assortative);
    ``r < 0``: hubs attach to leaves (disassortative); ``r ≈ 0``:
    uncorrelated.  Computed with Newman's edge-based Pearson formula using
    *remaining* degrees.

    Raises :class:`~repro.core.errors.AnalysisError` when the graph has no
    edges or when every edge endpoint has the same degree (the correlation is
    undefined); callers that sweep over many topologies should catch it.

    Examples
    --------
    >>> star = Graph.from_edges(5, [(0, i) for i in range(1, 5)])
    >>> degree_assortativity(star)
    -1.0
    """
    edges = graph.edges()
    if not edges:
        raise AnalysisError("assortativity is undefined for an edgeless graph")

    # Remaining degrees (degree - 1) at both ends of every edge, counted in
    # both directions as in Newman's formulation.
    sum_product = 0.0
    sum_first = 0.0
    sum_squares = 0.0
    count = 0
    for u, v in edges:
        for a, b in ((u, v), (v, u)):
            degree_a = graph.degree(a) - 1
            degree_b = graph.degree(b) - 1
            sum_product += degree_a * degree_b
            sum_first += degree_a
            sum_squares += degree_a * degree_a
            count += 1

    mean = sum_first / count
    variance = sum_squares / count - mean * mean
    covariance = sum_product / count - mean * mean
    if variance <= 1e-15:
        raise AnalysisError(
            "assortativity is undefined when all edge endpoints share one degree"
        )
    return covariance / variance
