"""Degree distributions: P(k), CCDF, and logarithmic binning.

The paper's Figs. 1–4 plot the empirical degree distribution ``P(k)`` of each
generated topology on log–log axes.  Besides the raw histogram this module
provides the complementary cumulative distribution (CCDF) and logarithmically
binned densities, both of which are the standard ways to smooth the noisy
tail of a finite-size power law before fitting or plotting.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.analysis._util import degrees_from
from repro.core.errors import AnalysisError
from repro.core.graph import Graph

__all__ = [
    "degree_histogram",
    "degree_distribution",
    "ccdf",
    "log_binned_distribution",
    "degree_fraction_at",
]

GraphOrDegrees = Union[Graph, Sequence[int]]


def degree_histogram(source: GraphOrDegrees) -> Dict[int, int]:
    """Return a mapping ``degree -> number of nodes with that degree``.

    Accepts either a :class:`~repro.core.graph.Graph` or a raw degree
    sequence.

    Examples
    --------
    >>> degree_histogram([1, 1, 2, 3, 3, 3])
    {1: 2, 2: 1, 3: 3}
    """
    degrees = degrees_from(source)
    histogram: Dict[int, int] = {}
    for degree in degrees:
        histogram[degree] = histogram.get(degree, 0) + 1
    return dict(sorted(histogram.items()))


def degree_distribution(source: GraphOrDegrees) -> Dict[int, float]:
    """Return the empirical probability mass function ``P(k)``.

    Examples
    --------
    >>> degree_distribution([1, 1, 2, 2])
    {1: 0.5, 2: 0.5}
    """
    degrees = degrees_from(source)
    if not degrees:
        raise AnalysisError("cannot compute a degree distribution of an empty graph")
    total = float(len(degrees))
    return {k: count / total for k, count in degree_histogram(degrees).items()}


def degree_fraction_at(source: GraphOrDegrees, degree: int) -> float:
    """Return the fraction of nodes whose degree equals ``degree``.

    Used to quantify the "accumulation of nodes with degree equal to hard
    cutoff" the paper observes in Fig. 1(b).
    """
    distribution = degree_distribution(source)
    return distribution.get(degree, 0.0)


def ccdf(source: GraphOrDegrees) -> List[Tuple[int, float]]:
    """Return the complementary CDF ``P(K >= k)`` as ``(k, probability)`` pairs.

    Examples
    --------
    >>> ccdf([1, 2, 2, 4])
    [(1, 1.0), (2, 0.75), (4, 0.25)]
    """
    degrees = degrees_from(source)
    if not degrees:
        raise AnalysisError("cannot compute a CCDF of an empty graph")
    histogram = degree_histogram(degrees)
    total = float(len(degrees))
    points: List[Tuple[int, float]] = []
    remaining = float(len(degrees))
    for degree, count in histogram.items():
        points.append((degree, remaining / total))
        remaining -= count
    return points


def log_binned_distribution(
    source: GraphOrDegrees, bins_per_decade: int = 10
) -> List[Tuple[float, float]]:
    """Return ``P(k)`` averaged over logarithmically spaced bins.

    Each returned pair is ``(bin_center, probability_density)`` where the
    density is the fraction of nodes in the bin divided by the bin width, so
    a pure power law appears as a straight line on log-log axes without the
    noisy "fringe" of the raw tail.

    Parameters
    ----------
    source:
        Graph or degree sequence.
    bins_per_decade:
        Number of bins per factor-of-ten in degree.

    Examples
    --------
    >>> points = log_binned_distribution([1, 1, 2, 3, 10, 50], bins_per_decade=5)
    >>> all(width > 0 for _, width in points)
    True
    """
    if bins_per_decade < 1:
        raise AnalysisError("bins_per_decade must be at least 1")
    degrees = [d for d in degrees_from(source) if d > 0]
    if not degrees:
        raise AnalysisError("no positive degrees to bin")
    total = float(len(degrees_from(source)))
    k_min, k_max = min(degrees), max(degrees)
    if k_min == k_max:
        return [(float(k_min), 1.0)]

    log_min = math.log10(k_min)
    log_max = math.log10(k_max)
    bin_count = max(1, int(math.ceil((log_max - log_min) * bins_per_decade)))
    edges = np.logspace(log_min, log_max, bin_count + 1)
    # Guard against floating point placing k_max outside the last edge.
    edges[-1] = k_max + 1e-9

    counts, _ = np.histogram(degrees, bins=edges)
    points: List[Tuple[float, float]] = []
    for index, count in enumerate(counts):
        if count == 0:
            continue
        low, high = edges[index], edges[index + 1]
        width = high - low
        center = math.sqrt(low * high)
        density = (count / total) / width
        points.append((float(center), float(density)))
    return points
