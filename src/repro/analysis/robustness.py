"""Robustness of overlays to random failures and targeted attacks.

Section III of the paper motivates hard cutoffs partly by the
"robust yet fragile" nature of scale-free networks: they tolerate random
node failures well (the hubs are unlikely to be hit) but shatter when the
hubs are removed deliberately.  Limiting the maximum degree removes the
super hubs and should therefore *reduce* the gap between failure and attack
tolerance — an ablation the benchmark suite quantifies.

Two removal processes are simulated:

* :func:`failure_robustness` — remove nodes uniformly at random;
* :func:`attack_robustness` — remove nodes in decreasing order of degree
  (recomputed after each removal by default, i.e. an adaptive attack).

Both return the giant-component fraction as a function of the fraction of
nodes removed, the standard percolation-style robustness curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.components import giant_component_fraction
from repro.core.errors import AnalysisError
from repro.core.graph import Graph
from repro.core.rng import RandomSource, ensure_source

__all__ = ["RemovalResult", "failure_robustness", "attack_robustness"]


@dataclass
class RemovalResult:
    """Giant-component fraction as nodes are progressively removed.

    Attributes
    ----------
    strategy:
        ``"failure"`` (random removal) or ``"attack"`` (highest degree first).
    removed_fractions:
        Fractions of the original node count removed at each sample point.
    giant_component_fractions:
        Fraction of the original node count that remains in the largest
        component at each sample point.
    metadata:
        Provenance (original size, adaptive flag, ...).
    """

    strategy: str
    removed_fractions: List[float]
    giant_component_fractions: List[float]
    metadata: Dict[str, object] = field(default_factory=dict)

    def fraction_at(self, removed_fraction: float) -> float:
        """Return the giant-component fraction at the closest sampled point."""
        if not self.removed_fractions:
            raise AnalysisError("the removal result is empty")
        best_index = min(
            range(len(self.removed_fractions)),
            key=lambda i: abs(self.removed_fractions[i] - removed_fraction),
        )
        return self.giant_component_fractions[best_index]

    def critical_fraction(self, threshold: float = 0.05) -> float:
        """Return the removed fraction at which the giant component first drops
        below ``threshold`` of the original size (1.0 if it never does)."""
        for removed, remaining in zip(
            self.removed_fractions, self.giant_component_fractions
        ):
            if remaining < threshold:
                return removed
        return 1.0


def _removal_curve(
    graph: Graph,
    removal_order: Sequence[int],
    strategy: str,
    steps: int,
    adaptive: bool,
    rng: Optional[RandomSource],
) -> RemovalResult:
    original_size = graph.number_of_nodes
    if original_size == 0:
        raise AnalysisError("the graph has no nodes")
    working = graph.copy()

    removed_fractions = [0.0]
    giant_fractions = [
        giant_component_fraction(working) * working.number_of_nodes / original_size
    ]

    total_to_remove = min(len(removal_order), original_size - 1)
    checkpoints = max(1, steps)
    removals_per_checkpoint = max(1, total_to_remove // checkpoints)

    removed = 0
    order = list(removal_order)
    index = 0
    while removed < total_to_remove:
        batch_target = min(removed + removals_per_checkpoint, total_to_remove)
        while removed < batch_target:
            if adaptive and strategy == "attack":
                # Recompute the current highest-degree node.
                node = max(working.nodes(), key=working.degree)
            else:
                node = order[index]
                index += 1
                if not working.has_node(node):
                    continue
            working.remove_node(node)
            removed += 1
        removed_fractions.append(removed / original_size)
        if working.number_of_nodes == 0:
            giant_fractions.append(0.0)
        else:
            giant_fractions.append(
                giant_component_fraction(working)
                * working.number_of_nodes
                / original_size
            )

    return RemovalResult(
        strategy=strategy,
        removed_fractions=removed_fractions,
        giant_component_fractions=giant_fractions,
        metadata={
            "original_size": original_size,
            "adaptive": adaptive,
            "steps": steps,
        },
    )


def failure_robustness(
    graph: Graph,
    max_removed_fraction: float = 0.5,
    steps: int = 10,
    rng: "RandomSource | int | None" = None,
) -> RemovalResult:
    """Robustness curve under uniformly random node removal.

    Examples
    --------
    >>> from repro.generators.pa import generate_pa
    >>> g = generate_pa(200, stubs=2, seed=1)
    >>> curve = failure_robustness(g, max_removed_fraction=0.3, steps=3, rng=2)
    >>> curve.strategy
    'failure'
    >>> curve.giant_component_fractions[0]
    1.0
    """
    if not 0.0 < max_removed_fraction <= 1.0:
        raise AnalysisError("max_removed_fraction must be in (0, 1]")
    source = ensure_source(rng)
    nodes = source.shuffled(graph.nodes())
    to_remove = int(max_removed_fraction * graph.number_of_nodes)
    return _removal_curve(
        graph,
        nodes[:to_remove],
        strategy="failure",
        steps=steps,
        adaptive=False,
        rng=source,
    )


def attack_robustness(
    graph: Graph,
    max_removed_fraction: float = 0.5,
    steps: int = 10,
    adaptive: bool = True,
    rng: "RandomSource | int | None" = None,
) -> RemovalResult:
    """Robustness curve under a targeted (highest-degree-first) attack.

    With ``adaptive=True`` (default) the highest-degree node of the *current*
    graph is removed at every step; with ``adaptive=False`` the order is
    fixed by the original degrees.

    Examples
    --------
    >>> from repro.generators.pa import generate_pa
    >>> g = generate_pa(200, stubs=2, seed=1)
    >>> curve = attack_robustness(g, max_removed_fraction=0.2, steps=4)
    >>> curve.strategy
    'attack'
    """
    if not 0.0 < max_removed_fraction <= 1.0:
        raise AnalysisError("max_removed_fraction must be in (0, 1]")
    ordered = sorted(graph.nodes(), key=graph.degree, reverse=True)
    to_remove = int(max_removed_fraction * graph.number_of_nodes)
    return _removal_curve(
        graph,
        ordered[:to_remove],
        strategy="attack",
        steps=steps,
        adaptive=adaptive,
        rng=None,
    )
