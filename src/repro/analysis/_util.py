"""Internal helpers shared by the analysis modules."""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.core.errors import AnalysisError
from repro.core.graph import Graph

__all__ = ["degrees_from"]


def degrees_from(source: Union[Graph, Sequence[int]]) -> List[int]:
    """Normalise a graph or raw degree sequence into a list of degrees."""
    if isinstance(source, Graph):
        return source.degree_sequence()
    degrees = list(source)
    if any((not isinstance(degree, (int,)) or degree < 0) for degree in degrees):
        # Allow numpy integers too.
        coerced: List[int] = []
        for degree in degrees:
            try:
                value = int(degree)
            except (TypeError, ValueError):
                raise AnalysisError(f"invalid degree value: {degree!r}") from None
            if value < 0:
                raise AnalysisError("degrees must be non-negative")
            coerced.append(value)
        return coerced
    return degrees
