"""Connected-component structure of overlay graphs.

Connectivity drives two of the paper's observations: configuration-model
graphs with ``m = 1`` are disconnected, so flooding saturates below the
system size (Fig. 7), and for DAPA with ``m = 1`` a hard cutoff can *improve*
search because it redistributes links away from hubs and increases
connectedness (Fig. 8a).  These helpers expose the component structure the
experiment harness uses to explain those curves.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set

from repro.core.errors import AnalysisError
from repro.core.graph import Graph
from repro.core.types import NodeId

__all__ = [
    "connected_components",
    "giant_component",
    "giant_component_fraction",
    "is_connected",
    "component_of",
]


def connected_components(graph: Graph) -> List[Set[NodeId]]:
    """Return the connected components, largest first.

    Examples
    --------
    >>> g = Graph.from_edges(5, [(0, 1), (2, 3)])
    >>> [sorted(c) for c in connected_components(g)]
    [[0, 1], [2, 3], [4]]
    """
    remaining = set(graph.nodes())
    components: List[Set[NodeId]] = []
    while remaining:
        start = next(iter(remaining))
        component = component_of(graph, start)
        components.append(component)
        remaining -= component
    components.sort(key=len, reverse=True)
    return components


def component_of(graph: Graph, node: NodeId) -> Set[NodeId]:
    """Return the connected component containing ``node``."""
    if not graph.has_node(node):
        raise AnalysisError(f"node {node!r} is not in the graph")
    seen = {node}
    frontier = deque([node])
    while frontier:
        current = frontier.popleft()
        for neighbor in graph.neighbor_set(current):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen


def giant_component(graph: Graph) -> Set[NodeId]:
    """Return the node set of the largest connected component."""
    if graph.number_of_nodes == 0:
        raise AnalysisError("the graph has no nodes")
    return connected_components(graph)[0]


def giant_component_fraction(graph: Graph) -> float:
    """Return the fraction of nodes in the largest component.

    Examples
    --------
    >>> g = Graph.from_edges(4, [(0, 1), (1, 2)])
    >>> giant_component_fraction(g)
    0.75
    """
    if graph.number_of_nodes == 0:
        raise AnalysisError("the graph has no nodes")
    return len(giant_component(graph)) / graph.number_of_nodes


def is_connected(graph: Graph) -> bool:
    """Return ``True`` when the graph has a single connected component.

    Examples
    --------
    >>> is_connected(Graph.complete(4))
    True
    >>> is_connected(Graph(3))
    False
    """
    if graph.number_of_nodes == 0:
        raise AnalysisError("the graph has no nodes")
    return len(component_of(graph, graph.nodes()[0])) == graph.number_of_nodes
