"""Engine-facing measurement primitives for the scenario layer.

This module owns the "generate R realizations, measure each, average"
mechanics that every scenario series shares: the picklable
:class:`RealizationSpec` task unit, the module-level task bodies the
engine's process pools can import, and the series builders the scenario
compiler (and the legacy ``figures._common`` shims) call.

Determinism contract — identical to the pre-scenario figure harness:

* realization ``index`` of a series labelled ``label`` is seeded from the
  SHA-256-mixed per-(label, index) stream of
  :func:`repro.experiments.runner.realization_seeds` (search series mix the
  canonical algorithm name into the label, ``f"{algorithm}:{label}"``);
* tasks fan out through the ambient executor and come back in submission
  order, so parallel runs are byte-identical to serial ones;
* the ambient graph backend is captured into each task at creation time,
  and results are byte-identical across backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.degree_distribution import degree_distribution
from repro.analysis.powerlaw import fit_power_law
from repro.core.backend import GraphLike, active_backend, freeze_for_backend
from repro.kernels.dispatch import active_kernels, use_kernels
from repro.core.config import GRNConfig
from repro.core.errors import AnalysisError
from repro.core.graph import Graph
from repro.engine.executor import active_executor, active_progress
from repro.engine.tasks import Task
from repro.experiments.results import Series
from repro.experiments.runner import ExperimentScale, realization_seeds
from repro.generators.base import GenerationResult
from repro.generators.cm import ConfigurationModelGenerator
from repro.generators.dapa import DAPAGenerator
from repro.generators.hapa import HAPAGenerator
from repro.generators.pa import PreferentialAttachmentGenerator
from repro.scenarios.spec import canonical_algorithm
from repro.search.metrics import (
    SearchCurve,
    average_search_curve,
    normalized_walk_curve,
    search_curve,
)
from repro.search.registry import create_search_algorithm

__all__ = [
    "HAPA_NONPAPER_NODE_CAP",
    "RealizationSpec",
    "resolve_scale",
    "build_graph",
    "build_graph_result",
    "cutoff_grid",
    "dapa_tau_sub_grid",
    "dapa_cutoff_grid",
    "degree_distribution_series",
    "exponent_vs_cutoff_series",
    "search_series",
    "messaging_series",
    "averaged_search_curve",
    "default_ttl_grid",
]

#: HAPA with a small cutoff is the most expensive growth model (the
#: acceptance probability is bounded by ``kc / k_total``), so
#: degree-distribution builds outside the ``paper`` preset are capped at
#: this size to keep the harness interactive.  Search builds are *not*
#: capped: every preset's ``search_nodes`` is already far below the cap.
HAPA_NONPAPER_NODE_CAP = 2000


def resolve_scale(scale: Optional[ExperimentScale], seed: Optional[int]) -> ExperimentScale:
    """Default to the 'small' preset; apply a seed override when given."""
    resolved = scale if scale is not None else ExperimentScale.small()
    if seed is not None:
        resolved = resolved.with_seed(seed)
    return resolved


# --------------------------------------------------------------------------- #
# Parameter grids (scaled-down versions of the paper's grids)
# --------------------------------------------------------------------------- #
def cutoff_grid(scale: ExperimentScale, high_cutoff: int = 50) -> List[Optional[int]]:
    """Hard-cutoff values used by most search figures: 10, ~50, and none."""
    if scale.name == "smoke":
        return [10, None]
    return [10, high_cutoff, None]


def dapa_tau_sub_grid(scale: ExperimentScale) -> List[int]:
    """Locality-horizon values τ_sub, trimmed for the smaller presets."""
    if scale.name == "smoke":
        return [2, 4]
    if scale.name == "paper":
        return [2, 4, 6, 8, 10, 20, 50]
    return [2, 4, 10]


def dapa_cutoff_grid(scale: ExperimentScale) -> List[Optional[int]]:
    """Hard-cutoff values used by the DAPA figures (10, 50, none)."""
    if scale.name == "smoke":
        return [10, None]
    return [10, 50, None]


# --------------------------------------------------------------------------- #
# Topology construction
# --------------------------------------------------------------------------- #
def build_graph_result(
    model: str,
    scale: ExperimentScale,
    seed: int,
    stubs: int = 1,
    hard_cutoff: Optional[int] = None,
    exponent: float = 3.0,
    tau_sub: int = 4,
    for_search: bool = False,
) -> GenerationResult:
    """Build one realization of ``model``, keeping the generator's metadata.

    ``for_search`` selects the (smaller) search network size the paper uses
    for Figs. 6–12 instead of the degree-distribution size of Figs. 1–4.
    The metadata (``unfilled_stubs``, ``nodes_below_min_degree``, ...) is
    what the degree-distribution series surface in figure outputs so silent
    model violations stay visible.
    """
    nodes = scale.search_nodes if for_search else scale.nodes
    if model == "pa":
        generator: Any = PreferentialAttachmentGenerator(
            nodes, stubs=stubs, hard_cutoff=hard_cutoff, seed=seed
        )
    elif model == "cm":
        generator = ConfigurationModelGenerator(
            nodes,
            exponent=exponent,
            min_degree=stubs,
            hard_cutoff=hard_cutoff,
            seed=seed,
        )
    elif model == "hapa":
        if scale.name != "paper" and not for_search:
            nodes = min(nodes, HAPA_NONPAPER_NODE_CAP)
        generator = HAPAGenerator(
            nodes, stubs=stubs, hard_cutoff=hard_cutoff, seed=seed
        )
    elif model == "dapa":
        overlay = scale.search_nodes if for_search else min(scale.nodes, scale.substrate_nodes // 2)
        substrate = GRNConfig(
            number_of_nodes=max(scale.substrate_nodes, 2 * overlay),
            target_mean_degree=10.0,
            dimensions=2,
            seed=seed,
        )
        generator = DAPAGenerator(
            overlay_size=overlay,
            stubs=stubs,
            hard_cutoff=hard_cutoff,
            local_ttl=tau_sub,
            substrate_config=substrate,
            seed=seed,
        )
    else:
        raise ValueError(f"unknown model {model!r}")
    return generator.generate()


def build_graph(
    model: str,
    scale: ExperimentScale,
    seed: int,
    stubs: int = 1,
    hard_cutoff: Optional[int] = None,
    exponent: float = 3.0,
    tau_sub: int = 4,
    for_search: bool = False,
) -> Graph:
    """Build one realization of ``model`` and return only the graph."""
    return build_graph_result(
        model,
        scale,
        seed,
        stubs=stubs,
        hard_cutoff=hard_cutoff,
        exponent=exponent,
        tau_sub=tau_sub,
        for_search=for_search,
    ).graph


# --------------------------------------------------------------------------- #
# Realization tasks (picklable units the engine's executors can distribute)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RealizationSpec:
    """Everything needed to rebuild one topology realization in any process.

    ``backend`` and ``kernels`` are captured at task-creation time (from
    the ambient :func:`~repro.core.backend.active_backend` /
    :func:`~repro.kernels.dispatch.active_kernels`), so the
    generate-mutable / freeze-once / search-many policy — and the kernel
    tier that measures the snapshot — travel with the pickled spec into
    the engine's worker processes.
    """

    model: str
    scale: ExperimentScale
    seed: int
    stubs: int = 1
    hard_cutoff: Optional[int] = None
    exponent: float = 3.0
    tau_sub: int = 4
    for_search: bool = False
    backend: str = "adj"
    kernels: str = "auto"

    def build_result(self) -> GenerationResult:
        """Build one realization under this spec's kernel tier.

        The kernel mode is installed around *generation* too (not just the
        measurement phase), so a ``--kernels jit`` run constructs its
        topologies on the compiled generator kernels — byte-identically to
        the Python growth loops.
        """
        with use_kernels(self.kernels):
            return build_graph_result(
                self.model,
                self.scale,
                self.seed,
                stubs=self.stubs,
                hard_cutoff=self.hard_cutoff,
                exponent=self.exponent,
                tau_sub=self.tau_sub,
                for_search=self.for_search,
            )

    def build(self) -> Graph:
        return self.build_result().graph

    def build_for_measurement(self) -> GraphLike:
        """Build the topology and freeze it when the ``csr`` backend is on.

        Kernel-built graphs carry their CSR arrays already, so the freeze
        is a direct :class:`~repro.core.csr.CSRGraph` assembly rather than
        a per-node re-walk of the adjacency.
        """
        return freeze_for_backend(self.build(), self.backend)


#: Generator-metadata counters surfaced (summed over realizations) in the
#: degree-distribution series, so silent model violations — unfilled stubs,
#: nodes below the prescribed minimum degree — are visible in figure
#: outputs instead of vanishing with the worker process.
_GENERATION_COUNTERS = (
    "unfilled_stubs",
    "min_degree_violations",
    "nodes_below_min_degree",
    "isolated_nodes",
)


def _realize_degree_sequence(spec: RealizationSpec) -> Dict[str, Any]:
    """Task body: one realization's degree sequence (Figs. 1–4 and sweeps).

    Returns the degrees together with the generator's health counters; the
    series builder pools the former and aggregates the latter.
    """
    result = spec.build_result()
    generation: Dict[str, Any] = {
        name: int(result.metadata[name])
        for name in _GENERATION_COUNTERS
        if name in result.metadata
    }
    if "reached_target" in result.metadata:
        generation["reached_target"] = bool(result.metadata["reached_target"])
    return {
        "degrees": list(result.graph.degree_sequence()),
        "generation": generation,
    }


def _realize_search_curve(
    spec: RealizationSpec,
    algorithm: str,
    ttl_values: Tuple[int, ...],
    params: Tuple[Tuple[str, object], ...] = (),
) -> SearchCurve:
    """Task body: one realization's search curve (Figs. 6–12, messaging).

    ``algorithm`` is a canonical registry name; RW uses the paper's
    NF-message normalization, every other algorithm (FL, NF, PF, plugins)
    is instantiated through the search registry.  NF-family algorithms
    default their ``k_min`` to the topology's stub count.
    """
    queries = spec.scale.queries
    query_rng = spec.seed + 977
    extra = dict(params)
    with use_kernels(spec.kernels):
        graph = spec.build_for_measurement()
        if algorithm == "rw":
            extra.setdefault("k_min", spec.stubs)
            return normalized_walk_curve(
                graph, ttl_values, queries=queries, rng=query_rng, **extra
            )
        if algorithm == "nf":
            extra.setdefault("k_min", spec.stubs)
        searcher = create_search_algorithm(algorithm, **extra)
        return search_curve(
            graph, searcher, ttl_values, queries=queries, rng=query_rng
        )


def _degree_sequence_rows(
    model: str,
    label: str,
    scale: ExperimentScale,
    stubs: int,
    hard_cutoff: Optional[int],
    exponent: float,
    tau_sub: int,
) -> List[Dict[str, Any]]:
    """One degree sequence (+ generation counters) per realization.

    The ambient backend and kernel mode are captured into each task, like
    the search tasks always did, so ``--kernels jit`` reaches the topology
    builds inside worker processes.
    """
    backend = active_backend()
    kernels = active_kernels()
    tasks = [
        Task(
            fn=_realize_degree_sequence,
            args=(
                RealizationSpec(
                    model=model,
                    scale=scale,
                    seed=seed,
                    stubs=stubs,
                    hard_cutoff=hard_cutoff,
                    exponent=exponent,
                    tau_sub=tau_sub,
                    backend=backend,
                    kernels=kernels,
                ),
            ),
            key=f"degrees:{label}[{index}]",
        )
        for index, seed in enumerate(realization_seeds(scale, label))
    ]
    return active_executor().run(tasks, active_progress())


def _pool_degree_rows(
    rows: Sequence[Dict[str, Any]],
) -> "tuple[List[int], Dict[str, Any]]":
    """Pool per-realization degrees; sum the generation counters across rows."""
    pooled: List[int] = []
    generation: Dict[str, Any] = {}
    for row in rows:
        pooled.extend(row["degrees"])
        for name, value in row["generation"].items():
            if isinstance(value, bool):
                generation[name] = generation.get(name, True) and value
            else:
                generation[name] = generation.get(name, 0) + value
    return pooled, generation


# --------------------------------------------------------------------------- #
# Degree-distribution series (Figs. 1–4)
# --------------------------------------------------------------------------- #
def degree_distribution_series(
    model: str,
    label: str,
    scale: ExperimentScale,
    stubs: int = 1,
    hard_cutoff: Optional[int] = None,
    exponent: float = 3.0,
    tau_sub: int = 4,
) -> Series:
    """P(k) for one parameter combination, pooled over all realizations."""
    pooled_degrees, generation = _pool_degree_rows(
        _degree_sequence_rows(
            model, label, scale, stubs, hard_cutoff, exponent, tau_sub
        )
    )
    distribution = degree_distribution(pooled_degrees)
    return Series(
        label=label,
        x=[int(k) for k in distribution],
        y=[float(p) for p in distribution.values()],
        metadata={
            "model": model,
            "stubs": stubs,
            "hard_cutoff": hard_cutoff,
            "exponent": exponent,
            "tau_sub": tau_sub,
            "realizations": scale.realizations,
            "max_degree": max(pooled_degrees) if pooled_degrees else 0,
            "generation": generation,
        },
    )


def exponent_vs_cutoff_series(
    model: str,
    label: str,
    scale: ExperimentScale,
    stubs: int,
    cutoffs: Sequence[int],
    tau_sub: int = 10,
    exponent: float = 3.0,
) -> Series:
    """Fitted γ as a function of the hard cutoff (Figs. 1c and 4g).

    ``exponent`` is the prescribed exponent for CM topologies (the models
    the paper sweeps here — PA and DAPA — ignore it; the historical
    default of 3.0 is preserved for them).
    """
    exponents: List[float] = []
    used_cutoffs: List[int] = []
    for cutoff in cutoffs:
        pooled, _generation = _pool_degree_rows(
            _degree_sequence_rows(
                model, f"{label}-kc{cutoff}", scale, stubs, cutoff, exponent, tau_sub
            )
        )
        try:
            fit = fit_power_law(
                pooled, k_min=max(1, stubs), exclude_cutoff_spike=True
            )
        except AnalysisError:
            continue
        used_cutoffs.append(int(cutoff))
        exponents.append(fit.exponent)
    return Series(
        label=label,
        x=used_cutoffs,
        y=exponents,
        metadata={"model": model, "stubs": stubs, "tau_sub": tau_sub},
    )


# --------------------------------------------------------------------------- #
# Search series (Figs. 6–12, messaging)
# --------------------------------------------------------------------------- #
def default_ttl_grid(scale: ExperimentScale, algorithm: str) -> List[int]:
    """The scale's TTL grid for one algorithm (FL gets the deeper grid)."""
    return scale.flooding_ttl_grid() if algorithm == "fl" else scale.ttl_grid()


def averaged_search_curve(
    model: str,
    scale: ExperimentScale,
    label: str,
    algorithm: str,
    ttl_values: Sequence[int],
    stubs: int,
    hard_cutoff: Optional[int],
    exponent: float,
    tau_sub: int,
    algorithm_params: Optional[Dict[str, object]] = None,
) -> SearchCurve:
    """One realization-averaged search curve, fanned through the executor."""
    algorithm = canonical_algorithm(algorithm)
    backend = active_backend()
    kernels = active_kernels()
    params = tuple(sorted((algorithm_params or {}).items()))
    tasks = [
        Task(
            fn=_realize_search_curve,
            args=(
                RealizationSpec(
                    model=model,
                    scale=scale,
                    seed=seed,
                    stubs=stubs,
                    hard_cutoff=hard_cutoff,
                    exponent=exponent,
                    tau_sub=tau_sub,
                    for_search=True,
                    backend=backend,
                    kernels=kernels,
                ),
                algorithm,
                tuple(int(value) for value in ttl_values),
                params,
            ),
            key=f"{algorithm}:{label}[{index}]",
        )
        for index, seed in enumerate(realization_seeds(scale, f"{algorithm}:{label}"))
    ]
    curves: List[SearchCurve] = active_executor().run(tasks, active_progress())
    return average_search_curve(curves)


def search_series(
    model: str,
    label: str,
    scale: ExperimentScale,
    algorithm: str,
    stubs: int = 1,
    hard_cutoff: Optional[int] = None,
    exponent: float = 3.0,
    tau_sub: int = 4,
    ttl_values: Optional[Sequence[int]] = None,
    algorithm_params: Optional[Dict[str, object]] = None,
) -> Series:
    """Hits-vs-τ series for one parameter combination and one algorithm."""
    algorithm = canonical_algorithm(algorithm)
    curve = averaged_search_curve(
        model,
        scale,
        label,
        algorithm,
        ttl_values if ttl_values is not None else default_ttl_grid(scale, algorithm),
        stubs,
        hard_cutoff,
        exponent,
        tau_sub,
        algorithm_params=algorithm_params,
    )
    return Series(
        label=label,
        x=list(curve.ttl_values),
        y=list(curve.mean_hits),
        metadata={
            "model": model,
            "algorithm": curve.algorithm,
            "stubs": stubs,
            "hard_cutoff": hard_cutoff,
            "exponent": exponent,
            "tau_sub": tau_sub,
            "mean_messages": list(curve.mean_messages),
            "queries": curve.queries,
        },
    )


def messaging_series(
    model: str,
    label: str,
    scale: ExperimentScale,
    algorithm: str,
    stubs: int = 2,
    hard_cutoff: Optional[int] = None,
    exponent: float = 3.0,
    tau_sub: int = 4,
    ttl_values: Optional[Sequence[int]] = None,
    algorithm_params: Optional[Dict[str, object]] = None,
) -> Series:
    """Messages-per-query vs τ for one algorithm (the §V-B-2 messaging study)."""
    algorithm = canonical_algorithm(algorithm)
    curve = averaged_search_curve(
        model,
        scale,
        label,
        algorithm,
        ttl_values if ttl_values is not None else scale.ttl_grid(),
        stubs,
        hard_cutoff,
        exponent,
        tau_sub,
        algorithm_params=algorithm_params,
    )
    return Series(
        label=label,
        x=list(curve.ttl_values),
        y=list(curve.mean_messages),
        metadata={
            "model": model,
            "algorithm": algorithm,
            "stubs": stubs,
            "hard_cutoff": hard_cutoff,
            "metric": "messages",
        },
    )
