"""Declarative, serializable scenario specifications.

The paper's contribution is a *parameter space* — construction model
(PA/CM/HAPA/DAPA) × hard cutoff × stubs × search algorithm (FL/NF/PF/RW) ×
TTL — and this module makes points and grids of that space first-class
*data*.  A :class:`ScenarioSpec` is a JSON-serializable description of an
experiment:

* :class:`TopologySpec` — which construction model to grow and with which
  parameters (stubs ``m``, hard cutoff ``kc``, prescribed exponent γ,
  locality horizon ``tau_sub``);
* :class:`MeasurementSpec` — what to measure on each realization
  (``degree-distribution``, ``search-curve``, ``messaging``,
  ``exponent-vs-cutoff``, or any kind registered through
  :func:`repro.scenarios.kinds.register_measurement_kind`), with which
  search algorithm and TTL grid;
* :class:`SweepSpec` — named parameter axes expanded as a Cartesian
  ``grid`` (last axis fastest, matching the paper's panel layout) or
  ``zip``-ped pointwise;
* :class:`PanelSpec` — one sweep plus the series measured at each of its
  points (a figure panel);
* :class:`ScenarioSpec` — the top level: id, title, topology defaults, and
  panels.

Specs round-trip ``to_dict``/``from_dict``/JSON, validate eagerly with
actionable errors, and **hash canonically**: ``spec_hash()`` is a SHA-256
over the fully-normalized form (defaults made explicit, algorithm aliases
resolved through the search registry, shorthand expanded), so every
equivalent spelling of a scenario shares one content address — and
therefore one result-store cache entry.

Scale-dependent values
----------------------
Any numeric field, TTL grid, measurement parameter, or sweep-axis value
list may be written as a *by-scale* mapping with a required ``"default"``
key, e.g. ``{"default": [10, 50, null], "smoke": [10, null]}``.  At compile
time the entry matching the active scale preset's name is selected (falling
back to ``"default"``), which is how the built-in figures trim their grids
for smoke runs without leaving the spec language.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import ScenarioError
from repro.experiments.sweeps import format_cutoff, parameter_grid

__all__ = [
    "MEASUREMENT_AXIS_PREFIX",
    "TopologySpec",
    "MeasurementSpec",
    "SweepSpec",
    "PanelSpec",
    "SeriesTemplate",
    "ScenarioSpec",
    "canonical_algorithm",
    "resolve_by_scale",
    "is_by_scale",
]

#: Topology parameters a spec / sweep axis / override mapping may set.
TOPOLOGY_FIELDS = ("model", "stubs", "hard_cutoff", "exponent", "tau_sub")

#: Sweep axes may also range over *measurement* parameters (PF forward
#: probability, RW walker count, a composite kind's knobs, ...) by prefixing
#: the parameter name: ``"params.forward_probability": [0.2, 0.5, 0.8]``.
#: Each sweep point then overrides that entry of ``measurement.params`` for
#: every series in the panel, and the bare parameter name becomes a label
#: placeholder (``"pf p={forward_probability}"``).
MEASUREMENT_AXIS_PREFIX = "params."

#: Measurement kinds that accept (and require) a search algorithm.
ALGORITHMIC_KINDS = ("search-curve", "messaging")

#: Scenario ids name result-store entries and ``--out`` files, so they are
#: restricted to filesystem-safe characters (no separators, no whitespace).
_ID_PATTERN = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*")


# --------------------------------------------------------------------------- #
# By-scale values
# --------------------------------------------------------------------------- #
def is_by_scale(value: Any) -> bool:
    """True when ``value`` is a by-scale mapping (``{"default": ..., ...}``)."""
    return isinstance(value, Mapping) and "default" in value


def resolve_by_scale(value: Any, scale_name: str) -> Any:
    """Select the entry for ``scale_name`` from a by-scale mapping.

    Only mappings carrying a ``"default"`` key are by-scale; every other
    value — including plain mappings used as data (e.g. Table II's
    ``expected`` classification) — passes through unchanged.
    """
    if is_by_scale(value):
        return value["default"] if scale_name not in value else value[scale_name]
    return value


def _check_by_scale_keys(value: Any, where: str) -> None:
    if is_by_scale(value):
        for key in value:
            if not isinstance(key, str):
                raise ScenarioError(
                    f"{where}: by-scale keys must be scale-preset names "
                    f"(strings), got {key!r}"
                )


def _check_scaled_list(value: Any, where: str) -> None:
    """Validate a value that must resolve to a list (sweep axes, TTL grids)."""
    if isinstance(value, Mapping) and not is_by_scale(value):
        raise ScenarioError(
            f"{where}: mapping {dict(value)!r} needs a 'default' key to be "
            "a by-scale value ({'default': [...], '<scale-name>': [...]})"
        )
    _check_by_scale_keys(value, where)


def _canonical_value(value: Any) -> Any:
    """Normalize a (possibly by-scale) value for hashing/serialisation."""
    if isinstance(value, Mapping):
        return {str(key): _canonical_value(val) for key, val in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(item) for item in value]
    return value


# --------------------------------------------------------------------------- #
# Algorithm canonicalisation (through the search registry)
# --------------------------------------------------------------------------- #
def canonical_algorithm(name: str) -> str:
    """Resolve an algorithm name/alias to its canonical short name.

    ``"flooding"`` and ``"fl"`` both map to ``"fl"``; algorithms registered
    via :func:`repro.search.registry.register_search_algorithm` resolve the
    same way, so plugins join the scenario grammar automatically.
    """
    from repro.search.registry import SEARCH_ALGORITHMS, available_search_algorithms

    key = str(name).lower()
    if key not in SEARCH_ALGORITHMS:
        raise ScenarioError(
            f"unknown search algorithm {name!r}; "
            f"available: {', '.join(available_search_algorithms())}"
        )
    return SEARCH_ALGORITHMS[key].algorithm_name


def _check_algorithm_params(algorithm: str, params: Mapping[str, Any]) -> None:
    """Eagerly reject params the algorithm cannot accept.

    Probes with the ``"default"`` resolution of by-scale values: FL/NF/PF
    (and plugins) are trial-constructed through the registry, RW params are
    checked against :func:`~repro.search.metrics.normalized_walk_curve`'s
    signature — so a typo'd or wrong-algorithm param fails at validation
    time, not mid-run inside a worker task.
    """
    import inspect

    from repro.core.errors import ReproError
    from repro.search.metrics import normalized_walk_curve
    from repro.search.registry import create_search_algorithm

    resolved = {
        name: resolve_by_scale(value, "default") for name, value in params.items()
    }
    try:
        if algorithm == "rw":
            allowed = set(inspect.signature(normalized_walk_curve).parameters)
            allowed -= {"graph", "ttl_values", "queries", "rng", "sources"}
            unknown = sorted(set(resolved) - allowed)
            if unknown:
                raise ScenarioError(
                    f"params {', '.join(map(repr, unknown))} are not accepted "
                    f"by algorithm 'rw'; accepted: {', '.join(sorted(allowed))}"
                )
        else:
            if algorithm == "nf":
                resolved.setdefault("k_min", 1)
            create_search_algorithm(algorithm, **resolved)
    except ScenarioError:
        raise
    except TypeError as error:
        raise ScenarioError(
            f"measurement.params not accepted by algorithm "
            f"{algorithm!r}: {error}"
        ) from None
    except ReproError as error:
        raise ScenarioError(
            f"measurement.params invalid for algorithm {algorithm!r}: {error}"
        ) from None


# --------------------------------------------------------------------------- #
# Topology
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TopologySpec:
    """Construction-model parameters (every value may be by-scale).

    ``model`` may be ``None`` at the scenario level when a sweep axis or a
    panel override supplies it; compilation fails loudly if no model is in
    scope for a series.
    """

    model: Optional[str] = None
    stubs: Any = 1
    hard_cutoff: Any = None
    exponent: Any = 3.0
    tau_sub: Any = 4

    def __post_init__(self) -> None:
        object.__setattr__(self, "model", _canonical_model(self.model))

    def validate(self) -> None:
        if self.model is not None:
            _check_model_name(self.model, "topology.model")
        for name in ("stubs", "exponent", "tau_sub", "hard_cutoff"):
            _check_by_scale_keys(getattr(self, name), f"topology.{name}")

    def as_params(self) -> Dict[str, Any]:
        """Return the full ``{field: value}`` mapping (defaults included)."""
        return {name: getattr(self, name) for name in TOPOLOGY_FIELDS}

    def to_dict(self) -> Dict[str, Any]:
        return {name: _canonical_value(value) for name, value in self.as_params().items()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TopologySpec":
        _check_mapping_keys(payload, TOPOLOGY_FIELDS, "topology")
        spec = cls(**{key: payload[key] for key in payload})
        spec.validate()
        return spec


def _check_model_name(model: Any, where: str) -> None:
    from repro.generators.registry import GENERATORS, available_generators

    if not isinstance(model, str) or model.lower() not in GENERATORS:
        raise ScenarioError(
            f"{where}: unknown construction model {model!r}; "
            f"available: {', '.join(available_generators())}"
        )


def _canonical_model(model: Any) -> Any:
    """Lower-case model names so ``"PA"`` and ``"pa"`` are one spelling.

    The generator registry resolves names case-insensitively, so the
    canonical (hashed, compiled) form must too — otherwise equivalent
    spellings would miss each other's cache entries.
    """
    return model.lower() if isinstance(model, str) else model


def _canonical_topology_overrides(topology: Dict[str, Any]) -> Dict[str, Any]:
    if isinstance(topology.get("model"), str):
        topology = dict(topology, model=_canonical_model(topology["model"]))
    return topology


def _check_mapping_keys(
    payload: Mapping[str, Any], allowed: Sequence[str], where: str
) -> None:
    if not isinstance(payload, Mapping):
        raise ScenarioError(f"{where} must be a mapping, got {type(payload).__name__}")
    unknown = [key for key in payload if key not in allowed]
    if unknown:
        raise ScenarioError(
            f"{where}: unknown field(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(allowed)}"
        )


# --------------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MeasurementSpec:
    """What to measure on each topology realization.

    Attributes
    ----------
    kind:
        A registered measurement kind (see :mod:`repro.scenarios.kinds`).
        The built-in grammar: ``degree-distribution``, ``search-curve``,
        ``messaging``, ``exponent-vs-cutoff``, plus the composite kinds the
        tables/ablations use.
    algorithm:
        Search algorithm for ``search-curve``/``messaging`` kinds, resolved
        through the search registry (aliases are canonicalised, so
        ``"flooding"`` and ``"fl"`` produce identical specs and hashes).
    ttl:
        Optional explicit TTL grid (list or by-scale mapping).  The default
        is the scale's flooding grid for FL and its NF/RW grid otherwise.
    params:
        Kind-specific parameters, e.g. ``{"cutoffs": [10, 20, 40]}`` for
        ``exponent-vs-cutoff`` or ``{"forward_probability": 0.5}`` for PF.
    """

    kind: str
    algorithm: Optional[str] = None
    ttl: Any = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.algorithm is not None:
            object.__setattr__(self, "algorithm", canonical_algorithm(self.algorithm))
        object.__setattr__(self, "params", dict(self.params))

    def validate(self) -> None:
        from repro.scenarios.kinds import available_measurement_kinds

        if self.kind not in available_measurement_kinds():
            raise ScenarioError(
                f"unknown measurement kind {self.kind!r}; "
                f"available: {', '.join(available_measurement_kinds())}"
            )
        if self.kind in ALGORITHMIC_KINDS:
            if self.algorithm is None:
                raise ScenarioError(
                    f"measurement kind {self.kind!r} needs an 'algorithm' "
                    "(e.g. fl, nf, pf, rw)"
                )
            _check_algorithm_params(self.algorithm, self.params)
        else:
            # Fields a kind does not consume must be rejected, not silently
            # dropped: they would change the result's meaning in the
            # author's eyes (and the spec hash) without changing a number.
            if self.algorithm is not None:
                raise ScenarioError(
                    f"measurement kind {self.kind!r} does not take an "
                    "'algorithm'"
                )
            if self.ttl is not None:
                raise ScenarioError(
                    f"measurement kind {self.kind!r} does not take a 'ttl' grid"
                )
        if self.kind == "degree-distribution" and self.params:
            raise ScenarioError(
                "measurement kind 'degree-distribution' takes no params "
                f"(got {', '.join(map(repr, sorted(self.params)))}); for a "
                "cutoff sweep of fitted exponents use kind "
                "'exponent-vs-cutoff'"
            )
        # Kinds with a declared schema reject missing/unknown params here,
        # before any realization work starts (algorithmic kinds were probed
        # against the algorithm above; plugin kinds are unconstrained
        # unless they declare a schema at registration).
        from repro.scenarios.kinds import check_kind_params

        check_kind_params(self.kind, dict(self.params))
        if self.ttl is not None:
            _check_scaled_list(self.ttl, "measurement.ttl")
            if not isinstance(self.ttl, (list, tuple, Mapping)):
                raise ScenarioError(
                    "measurement.ttl must be a list of TTL values or a "
                    f"by-scale mapping of lists, got {self.ttl!r}"
                )
            candidate_lists = (
                self.ttl.values() if is_by_scale(self.ttl) else [self.ttl]
            )
            for candidates in candidate_lists:
                if not isinstance(candidates, (list, tuple)) or not list(candidates):
                    raise ScenarioError(
                        "measurement.ttl must resolve to a non-empty list "
                        f"of TTL values for every scale, got {candidates!r}"
                    )
                for value in candidates:
                    if not isinstance(value, int) or isinstance(value, bool):
                        raise ScenarioError(
                            f"measurement.ttl entries must be integers, "
                            f"got {value!r}"
                        )
        for key, value in self.params.items():
            _check_by_scale_keys(value, f"measurement.params[{key!r}]")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "algorithm": self.algorithm,
            "ttl": _canonical_value(self.ttl),
            "params": {key: _canonical_value(value) for key, value in sorted(self.params.items())},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MeasurementSpec":
        _check_mapping_keys(payload, ("kind", "algorithm", "ttl", "params"), "measurement")
        if "kind" not in payload:
            raise ScenarioError("measurement needs a 'kind' field")
        spec = cls(
            kind=str(payload["kind"]),
            algorithm=payload.get("algorithm"),
            ttl=payload.get("ttl"),
            params=dict(payload.get("params", {})),
        )
        spec.validate()
        return spec


# --------------------------------------------------------------------------- #
# Sweeps
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepSpec:
    """Named topology axes expanded into per-series parameter points.

    ``axes`` preserves authoring order; with ``expand="grid"`` the last axis
    varies fastest (outer axis = figure panel, inner axis = curve — the
    paper's layout, via :func:`repro.experiments.sweeps.parameter_grid`),
    with ``expand="zip"`` the axes are stepped together and must resolve to
    equal lengths.
    """

    axes: Tuple[Tuple[str, Any], ...]
    expand: str = "grid"

    def __post_init__(self) -> None:
        def canonical_values(name: str, values: Any) -> Any:
            if name != "model":
                return values
            if is_by_scale(values):
                return {
                    key: canonical_values(name, entry)
                    for key, entry in values.items()
                }
            if isinstance(values, (list, tuple)):
                return [_canonical_model(value) for value in values]
            return values

        object.__setattr__(
            self,
            "axes",
            tuple((str(name), canonical_values(str(name), value))
                  for name, value in self.axes),
        )

    def validate(self) -> None:
        if not self.axes:
            raise ScenarioError("sweep.axes must name at least one axis")
        if self.expand not in ("grid", "zip"):
            raise ScenarioError(
                f"sweep.expand must be 'grid' or 'zip', got {self.expand!r}"
            )
        for name, values in self.axes:
            if name.startswith(MEASUREMENT_AXIS_PREFIX):
                if not name[len(MEASUREMENT_AXIS_PREFIX):]:
                    raise ScenarioError(
                        f"sweep axis {name!r} names no measurement "
                        f"parameter after {MEASUREMENT_AXIS_PREFIX!r}"
                    )
            elif name not in TOPOLOGY_FIELDS:
                raise ScenarioError(
                    f"sweep axis {name!r} is not a topology field "
                    f"({', '.join(TOPOLOGY_FIELDS)}); to sweep a "
                    f"measurement parameter, prefix it: "
                    f"{MEASUREMENT_AXIS_PREFIX}{name}"
                )
            _check_scaled_list(values, f"sweep.axes[{name!r}]")
            if not isinstance(values, (list, tuple, Mapping)):
                raise ScenarioError(
                    f"sweep axis {name!r} needs a list of values (or a "
                    f"by-scale mapping of lists), got {values!r}"
                )
            if name == "model":
                # Model names fail loudly here, not after minutes of
                # realization work on the sweep's earlier (valid) points.
                candidate_lists = (
                    values.values() if is_by_scale(values) else [values]
                )
                for candidates in candidate_lists:
                    if isinstance(candidates, (list, tuple)):
                        for candidate in candidates:
                            _check_model_name(candidate, "sweep.axes['model']")

    def points(self, scale_name: str) -> List[Dict[str, Any]]:
        """Expand the axes for one scale preset, in deterministic order."""
        resolved: Dict[str, List[Any]] = {}
        for name, values in self.axes:
            chosen = resolve_by_scale(values, scale_name)
            if not isinstance(chosen, (list, tuple)) or not list(chosen):
                raise ScenarioError(
                    f"sweep axis {name!r} resolved to {chosen!r} for scale "
                    f"{scale_name!r}; expected a non-empty list"
                )
            resolved[name] = list(chosen)
        if self.expand == "grid":
            return parameter_grid(resolved)
        lengths = {name: len(values) for name, values in resolved.items()}
        if len(set(lengths.values())) != 1:
            raise ScenarioError(
                f"zip sweep axes must share a length, got {lengths} "
                f"for scale {scale_name!r}"
            )
        names = list(resolved)
        return [
            dict(zip(names, combo)) for combo in zip(*(resolved[name] for name in names))
        ]

    def parameter_axes(self) -> List[str]:
        """Bare names of the measurement-parameter axes (``params.*``)."""
        return [
            name[len(MEASUREMENT_AXIS_PREFIX):]
            for name, _values in self.axes
            if name.startswith(MEASUREMENT_AXIS_PREFIX)
        ]

    def parameter_axis_candidates(self) -> Dict[str, List[Any]]:
        """Every value each ``params.*`` axis can take, across all scales.

        Eager validation probes each of these against the measurement, so
        a bad value *anywhere* in a sweep fails at spec time — not after
        the sweep's earlier (valid) points have burned realization work.
        """
        candidates: Dict[str, List[Any]] = {}
        for name, values in self.axes:
            if not name.startswith(MEASUREMENT_AXIS_PREFIX):
                continue
            value_lists = values.values() if is_by_scale(values) else [values]
            collected: List[Any] = []
            for value_list in value_lists:
                if isinstance(value_list, (list, tuple)):
                    collected.extend(value_list)
            candidates[name[len(MEASUREMENT_AXIS_PREFIX):]] = collected
        return candidates

    def to_dict(self) -> Dict[str, Any]:
        return {
            "axes": {name: _canonical_value(values) for name, values in self.axes},
            "expand": self.expand,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        _check_mapping_keys(payload, ("axes", "expand"), "sweep")
        axes = payload.get("axes")
        if not isinstance(axes, Mapping):
            raise ScenarioError(
                "sweep needs an 'axes' mapping of {parameter: values}"
            )
        spec = cls(
            axes=tuple(axes.items()), expand=str(payload.get("expand", "grid"))
        )
        spec.validate()
        return spec


# --------------------------------------------------------------------------- #
# Panels
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SeriesTemplate:
    """One measured series per sweep point: a label template + a measurement.

    ``label`` is a ``str.format`` template over the resolved parameters:
    ``{model}``, ``{m}`` (stubs), ``{kc}`` (rendered ``"kc=10"`` /
    ``"no kc"``), ``{kc_value}``, ``{gamma}`` (exponent), ``{tau_sub}``,
    and ``{algorithm}``.
    """

    label: str
    measurement: MeasurementSpec
    topology: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "topology", _canonical_topology_overrides(dict(self.topology))
        )

    def validate(
        self,
        extra_label_fields: Optional[Mapping[str, Any]] = None,
        check_label: bool = True,
    ) -> None:
        """Validate the template.

        ``extra_label_fields`` adds sweep-supplied placeholders (the bare
        names of ``params.*`` axes) to the label check; ``check_label=False``
        defers that check to the enclosing panel, which knows the axes.
        """
        if not self.label or not isinstance(self.label, str):
            raise ScenarioError("every series needs a non-empty 'label' template")
        _check_mapping_keys(self.topology, TOPOLOGY_FIELDS, "series.topology")
        if "model" in self.topology:
            _check_model_name(self.topology["model"], "series.topology.model")
        self.measurement.validate()
        if not check_label:
            return
        extra = dict(extra_label_fields or {})
        try:
            render_label(self.label, {**_SAMPLE_LABEL_FIELDS, **extra})
            render_label(self.label, {**_SAMPLE_LABEL_FIELDS_NONE, **extra})
        except ScenarioError as error:
            raise ScenarioError(f"series label {self.label!r}: {error}") from None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "measurement": self.measurement.to_dict(),
            "topology": {
                key: _canonical_value(value) for key, value in sorted(self.topology.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SeriesTemplate":
        _check_mapping_keys(payload, ("label", "measurement", "topology"), "series")
        if "label" not in payload or "measurement" not in payload:
            raise ScenarioError("every series needs 'label' and 'measurement' fields")
        template = cls(
            label=str(payload["label"]),
            measurement=MeasurementSpec.from_dict(payload["measurement"]),
            topology=dict(payload.get("topology", {})),
        )
        # The label check needs the enclosing panel's sweep axes (``params.*``
        # axes add placeholders), so it runs in PanelSpec.validate instead.
        template.validate(check_label=False)
        return template


@dataclass(frozen=True)
class PanelSpec:
    """One figure panel: topology overrides, an optional sweep, its series."""

    series: Tuple[SeriesTemplate, ...]
    sweep: Optional[SweepSpec] = None
    topology: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "series", tuple(self.series))
        object.__setattr__(
            self, "topology", _canonical_topology_overrides(dict(self.topology))
        )

    def validate(self) -> None:
        if not self.series:
            raise ScenarioError("every panel needs at least one series")
        _check_mapping_keys(self.topology, TOPOLOGY_FIELDS, "panel.topology")
        if "model" in self.topology:
            _check_model_name(self.topology["model"], "panel.topology.model")
        candidates: Dict[str, List[Any]] = {}
        if self.sweep is not None:
            self.sweep.validate()
            candidates = self.sweep.parameter_axis_candidates()
        label_samples = {
            name: values[0] for name, values in candidates.items() if values
        }
        for template in self.series:
            template.validate(extra_label_fields=label_samples)
            if not candidates:
                continue
            # Every swept measurement-param value must be acceptable to
            # every series in the panel — fail here, not after minutes of
            # realization work on the sweep's earlier (valid) points.
            for name, values in candidates.items():
                for value in values:
                    merged = dict(template.measurement.params)
                    merged.update(label_samples)
                    merged[name] = value
                    if template.measurement.kind in ALGORITHMIC_KINDS:
                        _check_algorithm_params(
                            template.measurement.algorithm, merged
                        )
                    else:
                        from repro.scenarios.kinds import check_kind_params

                        check_kind_params(template.measurement.kind, merged)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "topology": {
                key: _canonical_value(value) for key, value in sorted(self.topology.items())
            },
            "sweep": self.sweep.to_dict() if self.sweep is not None else None,
            "series": [template.to_dict() for template in self.series],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PanelSpec":
        _check_mapping_keys(
            payload,
            ("topology", "sweep", "series", "label", "measurement"),
            "panel",
        )
        if "series" in payload:
            if "label" in payload or "measurement" in payload:
                raise ScenarioError(
                    "panel: give either a 'series' list or the "
                    "'label'/'measurement' shorthand, not both"
                )
            series = tuple(
                SeriesTemplate.from_dict(item) for item in payload["series"]
            )
        elif "label" in payload and "measurement" in payload:
            series = (
                SeriesTemplate.from_dict(
                    {"label": payload["label"], "measurement": payload["measurement"]}
                ),
            )
        else:
            raise ScenarioError(
                "panel needs a 'series' list (or the 'label' + 'measurement' "
                "single-series shorthand)"
            )
        sweep = payload.get("sweep")
        panel = cls(
            series=series,
            sweep=SweepSpec.from_dict(sweep) if sweep is not None else None,
            topology=dict(payload.get("topology", {})),
        )
        panel.validate()
        return panel


# --------------------------------------------------------------------------- #
# Labels
# --------------------------------------------------------------------------- #
_SAMPLE_LABEL_FIELDS = {
    "model": "pa",
    "m": 1,
    "stubs": 1,
    "kc": "kc=10",
    "kc_value": 10,
    "gamma": 3.0,
    "exponent": 3.0,
    "tau_sub": 4,
    "algorithm": "fl",
}

#: Second validation sample: the nullable fields as ``None`` (a no-cutoff
#: sweep point, a kind without an algorithm), so format specs like
#: ``{kc_value:d}`` that only work on non-None values fail eagerly.
_SAMPLE_LABEL_FIELDS_NONE = dict(
    _SAMPLE_LABEL_FIELDS, kc="no kc", kc_value=None, algorithm=None,
)


def label_fields(topology: Mapping[str, Any], algorithm: Optional[str]) -> Dict[str, Any]:
    """Build the template fields for one resolved parameter point."""
    return {
        "model": topology.get("model"),
        "m": topology.get("stubs"),
        "stubs": topology.get("stubs"),
        "kc": format_cutoff(topology.get("hard_cutoff")),
        "kc_value": topology.get("hard_cutoff"),
        "gamma": topology.get("exponent"),
        "exponent": topology.get("exponent"),
        "tau_sub": topology.get("tau_sub"),
        "algorithm": algorithm,
    }


def render_label(template: str, fields: Mapping[str, Any]) -> str:
    """Render a label template, with actionable errors for bad placeholders."""
    try:
        return template.format(**fields)
    except KeyError as error:
        raise ScenarioError(
            f"unknown label placeholder {{{error.args[0]}}}; "
            f"available: {', '.join(sorted(fields))}"
        ) from None
    except (IndexError, ValueError, TypeError) as error:
        raise ScenarioError(f"malformed label template: {error}") from None


# --------------------------------------------------------------------------- #
# Top level
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, serializable experiment description.

    Examples
    --------
    >>> spec = ScenarioSpec.from_dict({
    ...     "id": "pf-demo",
    ...     "title": "PF on CM",
    ...     "topology": {"model": "cm", "exponent": 2.6, "stubs": 2},
    ...     "sweep": {"axes": {"hard_cutoff": [10, None]}},
    ...     "label": "pf m={m}, {kc}",
    ...     "measurement": {"kind": "search-curve", "algorithm": "pf"},
    ... })
    >>> spec.scenario_id
    'pf-demo'
    >>> ScenarioSpec.from_dict(spec.to_dict()) == spec
    True
    """

    scenario_id: str
    title: str
    panels: Tuple[PanelSpec, ...]
    topology: TopologySpec = field(default_factory=TopologySpec)
    notes: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "panels", tuple(self.panels))

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> "ScenarioSpec":
        """Validate eagerly; returns ``self`` so call sites can chain."""
        if not self.scenario_id or not isinstance(self.scenario_id, str):
            raise ScenarioError("scenario needs a non-empty string 'id'")
        if not _ID_PATTERN.fullmatch(self.scenario_id):
            raise ScenarioError(
                f"scenario id {self.scenario_id!r} must match "
                "[A-Za-z0-9][A-Za-z0-9._-]* — it names cache entries and "
                "output files, so whitespace and path separators are not "
                "allowed"
            )
        if not self.title or not isinstance(self.title, str):
            raise ScenarioError("scenario needs a non-empty string 'title'")
        if not self.panels:
            raise ScenarioError("scenario needs at least one panel")
        self.topology.validate()
        for panel in self.panels:
            panel.validate()
        return self

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Return the canonical (fully-expanded) JSON-friendly form."""
        return {
            "id": self.scenario_id,
            "title": self.title,
            "notes": self.notes,
            "topology": self.topology.to_dict(),
            "panels": [panel.to_dict() for panel in self.panels],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Parse a spec dict, accepting the single-panel shorthand.

        A top-level ``label``/``measurement`` (and optional ``sweep``)
        instead of a ``panels`` list describes a one-panel scenario.
        """
        _check_mapping_keys(
            payload,
            ("id", "title", "notes", "topology", "panels", "sweep", "label",
             "measurement", "series"),
            "scenario",
        )
        if "id" not in payload:
            raise ScenarioError("scenario needs an 'id' field")
        if "panels" in payload:
            for shorthand in ("sweep", "label", "measurement", "series"):
                if shorthand in payload:
                    raise ScenarioError(
                        f"scenario: give either 'panels' or the top-level "
                        f"{shorthand!r} shorthand, not both"
                    )
            panels = tuple(PanelSpec.from_dict(item) for item in payload["panels"])
        else:
            shorthand = {
                key: payload[key]
                for key in ("sweep", "label", "measurement", "series")
                if key in payload
            }
            if not shorthand:
                raise ScenarioError(
                    "scenario needs 'panels' (or the top-level single-panel "
                    "'label' + 'measurement' shorthand)"
                )
            panels = (PanelSpec.from_dict(shorthand),)
        spec = cls(
            scenario_id=str(payload["id"]),
            title=str(payload.get("title", payload["id"])),
            notes=str(payload.get("notes", "")),
            topology=TopologySpec.from_dict(payload.get("topology", {})),
            panels=panels,
        )
        return spec.validate()

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialise to JSON text.

        Key order is the canonical form's own (never re-sorted): sweep-axis
        order is semantic — it fixes the series order — so a sorted dump
        would change the scenario's meaning.
        """
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a spec from JSON text."""
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise ScenarioError(f"scenario is not valid JSON: {error}") from None
        return cls.from_dict(payload)

    # ------------------------------------------------------------------ #
    # Content addressing
    # ------------------------------------------------------------------ #
    def spec_hash(self) -> str:
        """SHA-256 of the canonical form — the scenario's content address.

        Equivalent spellings (shorthand vs. panels, algorithm aliases,
        implicit vs. explicit defaults, re-ordered params) normalise to the
        same canonical dict, so a scenario cached under one spelling is a
        cache hit for every other.  The canonical dict orders every
        non-semantic mapping itself (params and by-scale entries are
        emitted sorted); sweep-axis order is *semantic* and is deliberately
        part of the hash.
        """
        canonical = json.dumps(self.to_dict(), separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
