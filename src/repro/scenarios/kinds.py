"""Measurement-kind registry: the verbs of the scenario grammar.

A *measurement kind* maps one compiled
:class:`~repro.scenarios.compile.SeriesPlan` to the list of
:class:`~repro.experiments.results.Series` it contributes to the scenario's
result.  The four core kinds cover the paper's figure grammar:

``degree-distribution``
    Pooled P(k) over all realizations (Figs. 1–4).
``search-curve``
    Realization-averaged hits-vs-τ for any registered search algorithm
    (Figs. 6–12); RW uses the paper's NF-message normalization.
``messaging``
    Messages-per-query vs τ (§V-B-2).
``exponent-vs-cutoff``
    Fitted γ as a function of the hard cutoff (Figs. 1c, 4g); takes a
    ``cutoffs`` parameter.

The composite kinds (``path-length-scaling``, ``global-information``,
``natural-cutoff-scaling``, ``robustness-sweep``, ``cutoff-penalty``) carry
the paper's tables and ablations; they may emit several series per plan.

:func:`register_measurement_kind` is the extension point: anything
registered here becomes addressable from user-authored scenario JSON, the
same way plugin generators and search algorithms join through their own
registries.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Mapping

from repro.analysis.cutoff import (
    empirical_cutoff,
    natural_cutoff_aiello,
    natural_cutoff_dorogovtsev,
)
from repro.analysis.paths import expected_diameter_class, path_length_statistics
from repro.analysis.robustness import attack_robustness, failure_robustness
from repro.core.errors import ScenarioError
from repro.experiments.results import Series
from repro.experiments.runner import (
    ExperimentScale,
    average_curves,
    realization_seeds,
)
from repro.experiments.sweeps import format_label
from repro.generators.cm import generate_cm
from repro.generators.pa import generate_pa
from repro.scenarios import measure

__all__ = [
    "MeasurementKind",
    "register_measurement_kind",
    "available_measurement_kinds",
    "get_measurement_kind",
]

#: ``handler(plan, scale) -> [Series, ...]`` — ``plan`` is a compiled
#: :class:`~repro.scenarios.compile.SeriesPlan` with every by-scale value
#: already resolved.
MeasurementKind = Callable[[Any, ExperimentScale], List[Series]]

_MEASUREMENT_KINDS: Dict[str, MeasurementKind] = {}

#: Declared ``(required, optional)`` param names per kind.  ``None`` means
#: "unconstrained" (the default for plugins, and for algorithmic kinds
#: whose params are probed against the algorithm itself).
_KIND_PARAM_SCHEMAS: Dict[str, "tuple[frozenset, frozenset] | None"] = {}


def register_measurement_kind(
    name: str,
    handler: MeasurementKind,
    required_params: "tuple[str, ...]" = (),
    optional_params: "tuple[str, ...] | None" = None,
) -> None:
    """Register ``handler`` under ``name`` (kebab-case by convention).

    ``required_params``/``optional_params`` declare the kind's parameter
    schema so specs fail eagerly on missing or typo'd params; pass
    ``optional_params=None`` (the default) to leave params unconstrained.
    """
    key = str(name).lower()
    if key in _MEASUREMENT_KINDS:
        raise ScenarioError(f"measurement kind {name!r} is already registered")
    _MEASUREMENT_KINDS[key] = handler
    if optional_params is None and not required_params:
        _KIND_PARAM_SCHEMAS[key] = None
    else:
        _KIND_PARAM_SCHEMAS[key] = (
            frozenset(required_params),
            frozenset(optional_params or ()),
        )


def check_kind_params(kind: str, params: "Dict[str, Any]") -> None:
    """Eagerly validate ``params`` against the kind's declared schema."""
    schema = _KIND_PARAM_SCHEMAS.get(str(kind).lower())
    if schema is None:
        return
    required, optional = schema
    missing = sorted(required - set(params))
    if missing:
        raise ScenarioError(
            f"measurement kind {kind!r} needs params "
            f"{', '.join(map(repr, missing))}"
        )
    unknown = sorted(set(params) - required - optional)
    if unknown:
        raise ScenarioError(
            f"measurement kind {kind!r} does not take params "
            f"{', '.join(map(repr, unknown))}; accepted: "
            f"{', '.join(sorted(required | optional)) or '(none)'}"
        )


def available_measurement_kinds() -> List[str]:
    """Return the sorted names of every registered measurement kind."""
    return sorted(_MEASUREMENT_KINDS)


def get_measurement_kind(name: str) -> MeasurementKind:
    """Return the handler registered under ``name``."""
    key = str(name).lower()
    if key not in _MEASUREMENT_KINDS:
        raise ScenarioError(
            f"unknown measurement kind {name!r}; "
            f"available: {', '.join(available_measurement_kinds())}"
        )
    return _MEASUREMENT_KINDS[key]


def _require_param(plan: Any, name: str) -> Any:
    if name not in plan.params:
        raise ScenarioError(
            f"measurement kind {plan.kind!r} needs params[{name!r}] "
            f"(series {plan.label!r})"
        )
    return plan.params[name]


def _require_model(plan: Any, *allowed: str) -> str:
    """Reject topologies a model-specific kind would otherwise silently ignore."""
    model = plan.topology.get("model")
    if model not in allowed:
        raise ScenarioError(
            f"measurement kind {plan.kind!r} is defined for "
            f"{'/'.join(allowed)} topologies only, got model {model!r} "
            f"(series {plan.label!r})"
        )
    return model


def _reject_unconsumed_topology(plan: Any, consumed: "tuple[str, ...]") -> None:
    """Reject non-default topology fields a composite kind does not read.

    Composite kinds take their sweep data from ``params`` (rows, sizes,
    stubs_values, cutoffs, ...), so a topology override they ignore would
    change the spec's meaning — and its hash — without changing a number.
    """
    from repro.scenarios.spec import TopologySpec

    defaults = TopologySpec().as_params()
    ignored = sorted(
        name
        for name, default in defaults.items()
        if name != "model" and name not in consumed
        and plan.topology.get(name) != default
    )
    if ignored:
        raise ScenarioError(
            f"measurement kind {plan.kind!r} does not read topology "
            f"field(s) {', '.join(map(repr, ignored))} (series "
            f"{plan.label!r}); its sweep is configured through "
            "measurement.params instead"
        )


# --------------------------------------------------------------------------- #
# Core kinds (the figure grammar)
# --------------------------------------------------------------------------- #
def _kind_degree_distribution(plan: Any, scale: ExperimentScale) -> List[Series]:
    topo = plan.topology
    return [
        measure.degree_distribution_series(
            topo["model"],
            plan.label,
            scale,
            stubs=topo["stubs"],
            hard_cutoff=topo["hard_cutoff"],
            exponent=topo["exponent"],
            tau_sub=topo["tau_sub"],
        )
    ]


def _kind_search_curve(plan: Any, scale: ExperimentScale) -> List[Series]:
    topo = plan.topology
    return [
        measure.search_series(
            topo["model"],
            plan.label,
            scale,
            algorithm=plan.algorithm,
            stubs=topo["stubs"],
            hard_cutoff=topo["hard_cutoff"],
            exponent=topo["exponent"],
            tau_sub=topo["tau_sub"],
            ttl_values=plan.ttl,
            algorithm_params=dict(plan.params),
        )
    ]


def _kind_messaging(plan: Any, scale: ExperimentScale) -> List[Series]:
    topo = plan.topology
    return [
        measure.messaging_series(
            topo["model"],
            plan.label,
            scale,
            algorithm=plan.algorithm,
            stubs=topo["stubs"],
            hard_cutoff=topo["hard_cutoff"],
            exponent=topo["exponent"],
            tau_sub=topo["tau_sub"],
            ttl_values=plan.ttl,
            algorithm_params=dict(plan.params),
        )
    ]


def _kind_exponent_vs_cutoff(plan: Any, scale: ExperimentScale) -> List[Series]:
    topo = plan.topology
    cutoffs = _require_param(plan, "cutoffs")
    return [
        measure.exponent_vs_cutoff_series(
            topo["model"],
            plan.label,
            scale,
            stubs=topo["stubs"],
            cutoffs=list(cutoffs),
            tau_sub=topo["tau_sub"],
            exponent=topo["exponent"],
        )
    ]


# --------------------------------------------------------------------------- #
# Composite kinds (tables and ablations)
# --------------------------------------------------------------------------- #
def _kind_path_length_scaling(plan: Any, scale: ExperimentScale) -> List[Series]:
    """Average shortest-path length vs N for (model, γ, m) rows (Table I).

    The topologies come from the ``rows`` parameter — each row names its own
    (model, exponent, stubs) — so the plan's ambient topology spec is not
    consulted (non-default topology overrides are rejected).
    """
    _reject_unconsumed_topology(plan, consumed=())
    rows = _require_param(plan, "rows")
    sizes = [int(size) for size in _require_param(plan, "sizes")]
    sample_cap = int(plan.params.get("sample_cap", 200))
    series: List[Series] = []
    for row in rows:
        label, model, exponent, stubs = (
            str(row[0]), str(row[1]), float(row[2]), int(row[3])
        )
        averages: List[float] = []
        for size in sizes:
            per_realization = []
            for realization_seed in realization_seeds(scale, f"{label}:{size}"):
                sample = min(size, sample_cap)
                if model == "pa":
                    graph = generate_pa(size, stubs=stubs, seed=realization_seed)
                else:
                    graph = generate_cm(
                        size,
                        exponent=exponent,
                        min_degree=stubs,
                        hard_cutoff=None,
                        seed=realization_seed,
                    )
                per_realization.append(
                    path_length_statistics(
                        graph, sample_size=sample, rng=realization_seed + 1
                    ).average
                )
            averages.append(sum(per_realization) / len(per_realization))
        series.append(
            Series(
                label=label,
                x=list(sizes),
                y=averages,
                metadata={
                    "model": model,
                    "exponent": exponent,
                    "stubs": stubs,
                    "expected_class": expected_diameter_class(exponent, stubs),
                    "ln_n": [math.log(size) for size in sizes],
                    "lnln_n": [math.log(math.log(size)) for size in sizes],
                },
            )
        )
    return series


#: Global state consulted per join, expressed as the number of remote nodes
#: whose degree the joining node must know: N for PA/CM (all degrees), 1 for
#: HAPA (only the aggregate total degree), 0 for DAPA (horizon only).
_GLOBAL_STATE_SCORE = {"yes": 2, "partial": 1, "no": 0}


def _kind_global_information(plan: Any, scale: ExperimentScale) -> List[Series]:
    """Each model's global-information classification vs the paper (Table II)."""
    from repro.generators.registry import GENERATORS

    _reject_unconsumed_topology(plan, consumed=())
    expected: Mapping[str, str] = _require_param(plan, "expected")
    paper_models = [name for name in sorted(GENERATORS) if name in expected]
    series: List[Series] = []
    for index, name in enumerate(paper_models):
        classification = GENERATORS[name].uses_global_information
        series.append(
            Series(
                label=name,
                x=[index],
                y=[_GLOBAL_STATE_SCORE.get(classification, -1)],
                metadata={
                    "classification": classification,
                    "expected": expected[name],
                    "matches_paper": expected[name] == classification,
                },
            )
        )
    return series


def _kind_natural_cutoff_scaling(plan: Any, scale: ExperimentScale) -> List[Series]:
    """Measured k_max vs N next to the analytical estimates (Eqs. 2, 4, 5).

    PA-specific: the analytical cutoff estimates assume the PA model's γ=3.
    """
    _require_model(plan, "pa")
    _reject_unconsumed_topology(plan, consumed=())
    sizes = [int(size) for size in _require_param(plan, "sizes")]
    stubs_values = [int(value) for value in _require_param(plan, "stubs_values")]
    series: List[Series] = []
    for stubs in stubs_values:
        measured: List[float] = []
        for size in sizes:
            per_realization = []
            for realization_seed in realization_seeds(scale, f"m{stubs}-N{size}"):
                graph = generate_pa(
                    size, stubs=stubs, hard_cutoff=None, seed=realization_seed
                )
                per_realization.append(empirical_cutoff(graph))
            measured.append(sum(per_realization) / len(per_realization))
        series.append(
            Series(
                label=f"measured kmax m={stubs}",
                x=list(sizes),
                y=measured,
                metadata={"stubs": stubs},
            )
        )
        series.append(
            Series(
                label=f"dorogovtsev m={stubs} (m*sqrt(N))",
                x=list(sizes),
                y=[natural_cutoff_dorogovtsev(size, 3.0, stubs) for size in sizes],
                metadata={"stubs": stubs, "analytical": True},
            )
        )
        series.append(
            Series(
                label=f"aiello m={stubs} (N^(1/3))",
                x=list(sizes),
                y=[natural_cutoff_aiello(size, 3.0) for size in sizes],
                metadata={"stubs": stubs, "analytical": True},
            )
        )
    return series


def _kind_robustness_sweep(plan: Any, scale: ExperimentScale) -> List[Series]:
    """Giant-component decay under failures and attacks, ± cutoff (§III).

    PA-specific: the removal study targets PA's hub structure; the stub
    count and cutoff sweep come from ``params`` (``stubs``, ``cutoffs``).
    """
    _require_model(plan, "pa")
    _reject_unconsumed_topology(plan, consumed=())
    cutoffs = _require_param(plan, "cutoffs")
    steps = int(plan.params.get("steps", 6))
    max_removed = float(plan.params.get("max_removed", 0.3))
    node_cap = int(plan.params.get("node_cap", 1500))
    stubs = int(plan.params.get("stubs", 2))
    nodes = min(scale.search_nodes, node_cap)
    series: List[Series] = []
    for cutoff in cutoffs:
        for strategy_name, runner in (
            ("failure", failure_robustness),
            ("attack", attack_robustness),
        ):
            curves = []
            x_values = None
            for realization_seed in realization_seeds(
                scale, f"{strategy_name}-{cutoff}"
            ):
                graph = generate_pa(
                    nodes, stubs=stubs, hard_cutoff=cutoff, seed=realization_seed
                )
                if strategy_name == "failure":
                    removal = runner(
                        graph,
                        max_removed_fraction=max_removed,
                        steps=steps,
                        rng=realization_seed + 13,
                    )
                else:
                    removal = runner(
                        graph, max_removed_fraction=max_removed, steps=steps
                    )
                curves.append(removal.giant_component_fractions)
                x_values = removal.removed_fractions
            series.append(
                Series(
                    label=f"{strategy_name}, {format_label(kc=cutoff)}",
                    x=[float(value) for value in (x_values or [])],
                    y=average_curves(curves),
                    metadata={
                        "strategy": strategy_name,
                        "hard_cutoff": cutoff,
                        "nodes": nodes,
                    },
                )
            )
    return series


def _kind_cutoff_penalty(plan: Any, scale: ExperimentScale) -> List[Series]:
    """Flooding-hit ratio no-cutoff / cutoff as a function of m (§V-B).

    The stub sweep and the cutoff under test come from ``params``
    (``stubs_values``, ``penalty_cutoff``); the topology's model, exponent,
    and tau_sub are honoured.
    """
    topo = plan.topology
    _reject_unconsumed_topology(plan, consumed=("exponent", "tau_sub"))
    stubs_values = [int(value) for value in _require_param(plan, "stubs_values")]
    penalty_cutoff = int(plan.params.get("penalty_cutoff", 10))
    reference_ttl = min(
        int(plan.params.get("reference_ttl_cap", 6)), scale.flooding_max_ttl
    )
    series: List[Series] = []
    penalties: List[float] = []
    for stubs in stubs_values:
        unbounded = measure.search_series(
            topo["model"],
            f"m={stubs}, no kc",
            scale,
            algorithm="fl",
            stubs=stubs,
            hard_cutoff=None,
            exponent=topo["exponent"],
            tau_sub=topo["tau_sub"],
        )
        bounded = measure.search_series(
            topo["model"],
            f"m={stubs}, kc={penalty_cutoff}",
            scale,
            algorithm="fl",
            stubs=stubs,
            hard_cutoff=penalty_cutoff,
            exponent=topo["exponent"],
            tau_sub=topo["tau_sub"],
        )
        series.append(unbounded)
        series.append(bounded)
        hits_unbounded = unbounded.y_at(reference_ttl)
        hits_bounded = max(1.0, float(bounded.y_at(reference_ttl)))
        penalties.append(float(hits_unbounded) / hits_bounded)
    series.append(
        Series(
            label=plan.label,
            x=list(stubs_values),
            y=penalties,
            metadata={"reference_ttl": reference_ttl},
        )
    )
    return series


for _name, _handler, _required, _optional in (
    # Algorithmic kinds leave params unconstrained here: they are probed
    # against the search algorithm itself during spec validation.
    ("degree-distribution", _kind_degree_distribution, (), ()),
    ("search-curve", _kind_search_curve, (), None),
    ("messaging", _kind_messaging, (), None),
    ("exponent-vs-cutoff", _kind_exponent_vs_cutoff, ("cutoffs",), ()),
    ("path-length-scaling", _kind_path_length_scaling,
     ("rows", "sizes"), ("sample_cap",)),
    ("global-information", _kind_global_information, ("expected",), ()),
    ("natural-cutoff-scaling", _kind_natural_cutoff_scaling,
     ("sizes", "stubs_values"), ()),
    ("robustness-sweep", _kind_robustness_sweep,
     ("cutoffs",), ("steps", "max_removed", "node_cap", "stubs")),
    ("cutoff-penalty", _kind_cutoff_penalty,
     ("stubs_values",), ("penalty_cutoff", "reference_ttl_cap")),
):
    register_measurement_kind(_name, _handler, _required, _optional)
