"""Compile and run scenario specs on the experiment engine.

:func:`compile_scenario` lowers a :class:`~repro.scenarios.spec.ScenarioSpec`
into an ordered list of :class:`SeriesPlan` items — one per measured series,
with every by-scale value resolved and every label rendered — and
:func:`run_scenario` executes a compiled plan through the engine's existing
``Task`` fan-out: the same SHA-256 per-(label, index) seed streams, ambient
executor/backend capture, and content-addressed
:class:`~repro.engine.store.ResultStore` keys the figure harness has always
used.  Because specs hash canonically
(:meth:`~repro.scenarios.spec.ScenarioSpec.spec_hash`), a scenario cached
once is cached for every equivalent spelling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import ScenarioError
from repro.experiments.results import ExperimentResult, Series
from repro.experiments.runner import ExperimentScale
from repro.scenarios.kinds import get_measurement_kind
from repro.scenarios.measure import resolve_scale
from repro.scenarios.spec import (
    MEASUREMENT_AXIS_PREFIX,
    ScenarioSpec,
    label_fields,
    render_label,
    resolve_by_scale,
)

if TYPE_CHECKING:  # pragma: no cover - imported for signatures only
    from repro.engine.executor import Executor
    from repro.engine.progress import ProgressReporter
    from repro.engine.store import ResultStore

__all__ = [
    "SeriesPlan",
    "compile_scenario",
    "run_series_plan",
    "run_scenario",
    "run_scenario_cached",
    "scenario_cache_extra",
    "scenario_runner",
    "builtin_scenarios",
    "get_builtin_scenario",
]


def scenario_cache_extra(spec: ScenarioSpec) -> Dict[str, str]:
    """The store ``extra`` dict that keys a scenario's cache entries.

    One definition shared by :func:`run_scenario_cached` and the serve
    layer's warm-path lookup, so a result computed by either is a cache
    hit for the other (and for every equivalent spelling of the spec —
    the hash is canonical).
    """
    return {"scenario": spec.spec_hash()}


@dataclass(frozen=True)
class SeriesPlan:
    """One fully-resolved series: the compiler's output unit.

    Attributes
    ----------
    label:
        The rendered series label (drives the per-realization seed stream).
    kind:
        The measurement kind handling this plan.
    algorithm:
        Canonical search-algorithm name, for algorithmic kinds.
    ttl:
        Explicit TTL grid, or ``None`` for the scale's default grid.
    topology:
        Resolved construction parameters
        (``model``/``stubs``/``hard_cutoff``/``exponent``/``tau_sub``).
    params:
        Resolved kind-specific parameters.
    """

    label: str
    kind: str
    algorithm: Optional[str]
    ttl: Optional[Tuple[int, ...]]
    topology: Dict[str, Any]
    params: Dict[str, Any]


def compile_scenario(spec: ScenarioSpec, scale: ExperimentScale) -> List[SeriesPlan]:
    """Lower ``spec`` to its ordered series plans for one scale preset.

    Merge order for topology parameters (later wins): scenario defaults →
    panel overrides → sweep point → series overrides; every value is then
    resolved against the scale's preset name.
    """
    spec.validate()
    plans: List[SeriesPlan] = []
    base = spec.topology.as_params()
    for panel_index, panel in enumerate(spec.panels):
        points = panel.sweep.points(scale.name) if panel.sweep is not None else [{}]
        for point in points:
            # Split the sweep point: plain axes override topology fields,
            # ``params.*`` axes override measurement parameters.
            topology_point: Dict[str, Any] = {}
            param_point: Dict[str, Any] = {}
            for name, value in point.items():
                if name.startswith(MEASUREMENT_AXIS_PREFIX):
                    param_point[name[len(MEASUREMENT_AXIS_PREFIX):]] = value
                else:
                    topology_point[name] = value
            for template in panel.series:
                merged = dict(base)
                merged.update(panel.topology)
                merged.update(topology_point)
                merged.update(template.topology)
                topology = {
                    name: resolve_by_scale(value, scale.name)
                    for name, value in merged.items()
                }
                if topology.get("model") is None:
                    raise ScenarioError(
                        f"panel {panel_index}: no construction model in scope "
                        f"for series {template.label!r}; set topology.model "
                        "on the scenario, the panel, or a sweep axis"
                    )
                measurement = template.measurement
                ttl = resolve_by_scale(measurement.ttl, scale.name)
                if ttl is not None:
                    ttl = tuple(int(value) for value in ttl)
                merged_params = dict(measurement.params)
                merged_params.update(param_point)
                params = {
                    name: resolve_by_scale(value, scale.name)
                    for name, value in merged_params.items()
                }
                fields = label_fields(topology, measurement.algorithm)
                for name in param_point:
                    fields[name] = params[name]
                plans.append(
                    SeriesPlan(
                        label=render_label(template.label, fields),
                        kind=measurement.kind,
                        algorithm=measurement.algorithm,
                        ttl=ttl,
                        topology=topology,
                        params=params,
                    )
                )
    seen: Dict[str, int] = {}
    for plan in plans:
        seen[plan.label] = seen.get(plan.label, 0) + 1
    duplicates = sorted(label for label, count in seen.items() if count > 1)
    if duplicates:
        # Colliding labels would silently shadow each other in the result
        # AND draw from identical per-(label, index) seed streams.
        raise ScenarioError(
            f"scenario {spec.scenario_id!r} compiles to duplicate series "
            f"label(s) {', '.join(map(repr, duplicates))} at scale "
            f"{scale.name!r}; include every swept axis in the label "
            "template (e.g. '{kc}' for a hard_cutoff sweep)"
        )
    return plans


def run_series_plan(plan: SeriesPlan, scale: ExperimentScale) -> List[Series]:
    """Execute one compiled plan through its measurement kind."""
    return get_measurement_kind(plan.kind)(plan, scale)


def _run_plan_spanned(
    telemetry: Any, plan: SeriesPlan, scale: ExperimentScale
) -> List[Series]:
    """Run one plan inside a ``series`` span (attrs only when enabled)."""
    attrs = (
        {"label": plan.label, "kind": plan.kind} if telemetry.enabled else None
    )
    with telemetry.span("series", attrs):
        return run_series_plan(plan, scale)


def _run_plans(
    plans: List[SeriesPlan], scale: ExperimentScale
) -> List[List[Series]]:
    """Run every compiled plan, distributing them across the suite's workers.

    A scenario used to execute its series plans strictly one after another,
    so a multi-panel spec run under ``--jobs J`` serialized at every
    series boundary: each series fans its realization tasks into the shared
    process pool and then *barriers* on them, leaving workers idle whenever
    a series has fewer realizations than workers.  Here the plans
    themselves are spread over a thread pool (the realization tasks still
    execute in the shared process pool — threads only overlap the
    submit/collect phases), so one scenario's panels fill the pool
    together.

    Results are byte-identical to the serial order: every series draws
    from its own SHA-256 per-(label, index) seed stream, results come back
    per plan in submission order, and the list returned here is in plan
    order.  Each worker thread re-installs the ambient
    executor/progress/backend/kernels captured from the caller (the
    ambient stacks are thread-local).
    """
    from repro.engine.executor import active_executor, active_progress, use_executor
    from repro.telemetry.collector import active_telemetry
    from repro.telemetry.trace import current_span_context, use_span_context

    executor = active_executor()
    telemetry = active_telemetry()
    jobs = int(getattr(executor, "jobs", 1) or 1)
    if jobs <= 1 or len(plans) <= 1:
        return [
            _run_plan_spanned(telemetry, plan, scale) for plan in plans
        ]

    from concurrent.futures import ThreadPoolExecutor

    from repro.core.backend import active_backend, use_backend
    from repro.kernels.dispatch import active_kernels, use_kernels
    from repro.telemetry.collector import use_telemetry

    progress = active_progress()
    backend = active_backend()
    kernels = active_kernels()
    # The collector is thread-safe; every plan thread records into the same
    # instance the caller installed (or the shared null collector).  The
    # span context is captured too, so a plan thread's ``series`` span
    # attaches under the caller's open ``scenario`` span.
    span_context = current_span_context()

    def run_one(plan: SeriesPlan) -> List[Series]:
        with use_executor(executor, progress), use_backend(backend), \
                use_kernels(kernels), use_telemetry(telemetry), \
                use_span_context(span_context):
            return _run_plan_spanned(telemetry, plan, scale)

    with ThreadPoolExecutor(
        max_workers=min(len(plans), jobs),
        thread_name_prefix="repro-plan",
    ) as pool:
        return list(pool.map(run_one, plans))


def _compute_scenario(spec: ScenarioSpec, scale: ExperimentScale) -> ExperimentResult:
    """Compile and execute ``spec`` under the ambient executor/backend.

    The whole computation runs inside a ``scenario`` span carrying the
    canonical spec hash and the resolved scale/seed — the middle layer of
    the serve → scenario → series → task trace tree.  The hash is only
    computed when telemetry is enabled (it costs a canonical-JSON SHA-256).
    """
    from repro.telemetry.collector import active_telemetry

    telemetry = active_telemetry()
    attrs = None
    if telemetry.enabled:
        attrs = {
            "spec_hash": spec.spec_hash(),
            "scenario": spec.scenario_id,
            "scale": scale.name,
            "seed": getattr(scale, "seed", None),
        }
    with telemetry.span("scenario", attrs):
        return _compute_scenario_inner(spec, scale)


def _compute_scenario_inner(
    spec: ScenarioSpec, scale: ExperimentScale
) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id=spec.scenario_id,
        title=spec.title,
        parameters=scale.as_dict(),
        notes=spec.notes,
    )
    seen_labels = set()
    plans = compile_scenario(spec, scale)
    for plan, series_list in zip(plans, _run_plans(plans, scale)):
        for series in series_list:
            # Composite kinds emit their own labels, which the compile-time
            # guard cannot see — collisions would silently shadow a curve.
            if series.label in seen_labels:
                raise ScenarioError(
                    f"scenario {spec.scenario_id!r}: measurement kind "
                    f"{plan.kind!r} produced a duplicate series label "
                    f"{series.label!r}"
                )
            seen_labels.add(series.label)
            result.add(series)
    return result


def run_scenario_cached(
    spec: ScenarioSpec,
    scale: Optional[ExperimentScale] = None,
    seed: Optional[int] = None,
    executor: "Optional[Executor]" = None,
    store: "Optional[ResultStore]" = None,
    progress: "Optional[ProgressReporter]" = None,
    backend: Optional[str] = None,
    kernels: Optional[str] = None,
) -> "tuple[ExperimentResult, bool]":
    """Run a scenario on the engine; returns ``(result, from_cache)``.

    Mirrors :func:`repro.experiments.registry.run_experiment_cached`: the
    realization tasks fan out through ``executor`` (results byte-identical
    to a serial run), the graph ``backend`` is installed ambiently, and with
    a ``store`` the result is keyed by (scenario id, scale, spec hash) — so
    a re-run of any equivalent spelling of the spec is a cache hit.
    """
    from repro.core.backend import use_backend
    from repro.engine.executor import use_executor
    from repro.kernels.dispatch import use_kernels

    spec.validate()
    resolved = resolve_scale(scale, seed)
    if progress is not None:
        progress.experiment_started(spec.scenario_id)

    def compute() -> ExperimentResult:
        with use_executor(executor, progress), use_backend(backend), \
                use_kernels(kernels):
            return _compute_scenario(spec, resolved)

    if store is not None:
        result, from_cache = store.fetch_or_run(
            spec.scenario_id,
            resolved,
            compute,
            extra=scenario_cache_extra(spec),
        )
    else:
        result, from_cache = compute(), False
    if progress is not None:
        progress.experiment_finished(spec.scenario_id, from_cache=from_cache)
    return result, from_cache


def run_scenario(
    spec: ScenarioSpec,
    scale: Optional[ExperimentScale] = None,
    seed: Optional[int] = None,
    executor: "Optional[Executor]" = None,
    store: "Optional[ResultStore]" = None,
    progress: "Optional[ProgressReporter]" = None,
    backend: Optional[str] = None,
    kernels: Optional[str] = None,
) -> ExperimentResult:
    """Run a scenario spec end to end and return its result.

    Examples
    --------
    >>> from repro.scenarios import ScenarioSpec
    >>> from repro.experiments.runner import ExperimentScale
    >>> spec = ScenarioSpec.from_dict({
    ...     "id": "demo",
    ...     "title": "PA degree distribution",
    ...     "topology": {"model": "pa", "stubs": 2, "hard_cutoff": 10},
    ...     "label": "P(k) m={m}, {kc}",
    ...     "measurement": {"kind": "degree-distribution"},
    ... })
    >>> result = run_scenario(spec, scale=ExperimentScale.smoke())
    >>> result.labels()
    ['P(k) m=2, kc=10']
    """
    result, _ = run_scenario_cached(
        spec,
        scale=scale,
        seed=seed,
        executor=executor,
        store=store,
        progress=progress,
        backend=backend,
        kernels=kernels,
    )
    return result


def scenario_runner(spec: ScenarioSpec) -> Callable[..., ExperimentResult]:
    """Wrap ``spec`` as a registry-compatible ``run(scale=, seed=)`` callable.

    The built-in figure modules are each reduced to a
    :class:`~repro.scenarios.spec.ScenarioSpec` plus ``run =
    scenario_runner(SCENARIO)``; the experiment registry (and therefore
    ``repro figure`` / ``repro suite``) calls the wrapper exactly like the
    hand-written ``run`` functions it replaces.
    """
    spec.validate()

    def run(
        scale: Optional[ExperimentScale] = None, seed: Optional[int] = None
    ) -> ExperimentResult:
        return _compute_scenario(spec, resolve_scale(scale, seed))

    run.__name__ = f"run_{spec.scenario_id}"
    run.__doc__ = f"Run the {spec.scenario_id!r} scenario: {spec.title}"
    run.scenario = spec  # type: ignore[attr-defined]
    return run


# --------------------------------------------------------------------------- #
# Built-in scenarios
# --------------------------------------------------------------------------- #
def builtin_scenarios() -> Dict[str, ScenarioSpec]:
    """Return every built-in scenario, keyed by id, in paper order."""
    # Imported lazily: the figure modules themselves import this package.
    from repro.experiments.figures import ALL_FIGURE_MODULES

    specs: Dict[str, ScenarioSpec] = {}
    for module in ALL_FIGURE_MODULES:
        spec = getattr(module, "SCENARIO", None)
        if spec is not None:
            specs[spec.scenario_id] = spec
    return specs


def get_builtin_scenario(scenario_id: str) -> ScenarioSpec:
    """Return one built-in scenario by id, with an actionable error."""
    specs = builtin_scenarios()
    if scenario_id not in specs:
        raise ScenarioError(
            f"unknown scenario {scenario_id!r}; "
            f"built-ins: {', '.join(specs)}"
        )
    return specs[scenario_id]
