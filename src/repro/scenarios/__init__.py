"""Declarative scenario layer: experiment specs as data.

The paper's parameter space — construction model × hard cutoff × stubs ×
search algorithm × TTL — is exposed here as a serializable grammar:

* :mod:`repro.scenarios.spec` — :class:`TopologySpec`,
  :class:`MeasurementSpec`, :class:`SweepSpec`, :class:`PanelSpec`, and the
  top-level :class:`ScenarioSpec`, all round-tripping ``to_dict`` /
  ``from_dict`` / JSON with eager validation and canonical SHA-256 hashing;
* :mod:`repro.scenarios.measure` — the engine-facing measurement
  primitives (realization tasks, seed streams, series builders);
* :mod:`repro.scenarios.kinds` — the measurement-kind registry
  (``degree-distribution``, ``search-curve``, ``messaging``, ...), the
  extension point that lets plugins join the grammar;
* :mod:`repro.scenarios.compile` — the compiler
  (:func:`compile_scenario` → :class:`SeriesPlan` list) and the runtime
  (:func:`run_scenario`, with executor / result-store / backend parity to
  the experiment registry).

Every built-in figure, table, and ablation is itself a
:class:`ScenarioSpec` (see :func:`builtin_scenarios`), and user-authored
JSON specs run through the same compiler via ``repro run``.
"""

from repro.scenarios.compile import (
    SeriesPlan,
    builtin_scenarios,
    compile_scenario,
    get_builtin_scenario,
    run_scenario,
    run_scenario_cached,
    run_series_plan,
    scenario_cache_extra,
    scenario_runner,
)
from repro.scenarios.kinds import (
    available_measurement_kinds,
    get_measurement_kind,
    register_measurement_kind,
)
from repro.scenarios.spec import (
    MeasurementSpec,
    PanelSpec,
    ScenarioSpec,
    SeriesTemplate,
    SweepSpec,
    TopologySpec,
    canonical_algorithm,
)

__all__ = [
    "MeasurementSpec",
    "PanelSpec",
    "ScenarioSpec",
    "SeriesPlan",
    "SeriesTemplate",
    "SweepSpec",
    "TopologySpec",
    "available_measurement_kinds",
    "builtin_scenarios",
    "canonical_algorithm",
    "compile_scenario",
    "get_builtin_scenario",
    "get_measurement_kind",
    "register_measurement_kind",
    "run_scenario",
    "run_scenario_cached",
    "run_series_plan",
    "scenario_cache_extra",
    "scenario_runner",
]
