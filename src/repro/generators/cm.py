"""Configuration model with a prescribed power-law degree sequence (paper §III-C, Alg. 2).

The configuration model (CM) builds a *static* random graph whose degrees
follow a prescribed sequence — here a discrete power law with exponent γ,
minimum degree ``m``, and maximum degree equal to the hard cutoff ``kc``
(or ``N`` when no cutoff is requested).  Because the exponent is prescribed,
the cutoff does not change γ (paper Fig. 2); this is what makes CM the
"optimal" comparator for the locally-built HAPA/DAPA topologies.

Construction follows the standard stub-matching procedure: each node
receives as many stubs as its prescribed degree, the stub list is shuffled,
and consecutive stubs are paired into edges.  Self-loops and multi-edges are
then deleted, exactly as the paper does; the number of removed edges is
reported in the result metadata (the paper notes it scales as
``N^{3-γ} ln N`` when ``kc = N`` and becomes negligible for hard cutoffs
below the natural cutoff).  The deletions can leave a few nodes with degree
below ``m`` — or even zero — which the paper also observes (Fig. 2), and for
``m = 1`` the graph is typically disconnected.

A ``partner_selection="uniform"`` mode reproduces the paper's Algorithm 2
literally (each remaining stub of node ``i`` is paired with a *uniformly*
chosen node rather than a degree-weighted stub); it is provided for
comparison but stub matching is the default because it is the standard
definition of the configuration model and matches the figures.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import CMConfig
from repro.core.errors import ConfigurationError
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.generators.base import TopologyGenerator
from repro.generators.degree_sequence import power_law_degree_sequence
from repro.kernels.dispatch import kernel_generation_ready

__all__ = ["ConfigurationModelGenerator", "generate_cm"]

_PARTNER_MODES = ("stub_matching", "uniform")


class ConfigurationModelGenerator(TopologyGenerator):
    """Build an uncorrelated random graph with a prescribed power-law degree sequence.

    Parameters
    ----------
    number_of_nodes:
        Network size ``N``.
    exponent:
        Power-law exponent γ of the prescribed degree distribution.
    min_degree:
        Minimum prescribed degree ``m``.
    hard_cutoff:
        Maximum prescribed degree ``kc`` (``None`` → ``N``).
    seed:
        Optional seed.
    degree_sequence:
        Explicit degree sequence to use instead of sampling one.  Must have
        an even sum; ``exponent``/``min_degree``/``hard_cutoff`` are then only
        recorded as provenance.
    partner_selection:
        ``"stub_matching"`` (default, standard CM) or ``"uniform"``
        (paper-literal Algorithm 2).

    Examples
    --------
    >>> gen = ConfigurationModelGenerator(300, exponent=2.5, min_degree=2,
    ...                                   hard_cutoff=20, seed=3)
    >>> result = gen.generate()
    >>> result.graph.number_of_nodes
    300
    >>> result.graph.max_degree() <= 20
    True
    """

    model_name = "cm"
    uses_global_information = "yes"

    def __init__(
        self,
        number_of_nodes: int,
        exponent: float = 3.0,
        min_degree: int = 1,
        hard_cutoff: Optional[int] = None,
        seed: Optional[int] = None,
        degree_sequence: Optional[Sequence[int]] = None,
        partner_selection: str = "stub_matching",
    ) -> None:
        self.config = CMConfig(
            number_of_nodes=number_of_nodes,
            exponent=exponent,
            min_degree=min_degree,
            hard_cutoff=hard_cutoff,
            seed=seed,
        )
        if partner_selection not in _PARTNER_MODES:
            raise ConfigurationError(
                f"unknown partner_selection {partner_selection!r}; "
                f"expected one of {_PARTNER_MODES}"
            )
        if degree_sequence is not None:
            if len(degree_sequence) != number_of_nodes:
                raise ConfigurationError(
                    "degree_sequence length must equal number_of_nodes"
                )
            if sum(degree_sequence) % 2 != 0:
                raise ConfigurationError("degree_sequence must have an even sum")
            if any(k < 0 for k in degree_sequence):
                raise ConfigurationError("degrees must be non-negative")
        self.partner_selection = partner_selection
        self.explicit_degree_sequence = (
            list(degree_sequence) if degree_sequence is not None else None
        )
        self.seed = seed

    # ------------------------------------------------------------------ #
    # TopologyGenerator interface
    # ------------------------------------------------------------------ #
    def parameters(self) -> Dict[str, Any]:
        return {
            "model": self.model_name,
            "number_of_nodes": self.config.number_of_nodes,
            "exponent": self.config.exponent,
            "min_degree": self.config.min_degree,
            "hard_cutoff": self.config.hard_cutoff,
            "partner_selection": self.partner_selection,
            "explicit_degree_sequence": self.explicit_degree_sequence is not None,
            "seed": self.seed,
        }

    def _build(self, rng: RandomSource) -> Tuple[Graph, Dict[str, Any]]:
        sequence = self._resolve_degree_sequence(rng)
        if self.partner_selection == "stub_matching":
            if kernel_generation_ready(rng):
                from repro.kernels.generators import cm_stub_matching_build

                graph, removed_self_loops, removed_multi_edges = (
                    cm_stub_matching_build(sequence, rng)
                )
            else:
                graph, removed_self_loops, removed_multi_edges = (
                    self._stub_matching(sequence, rng)
                )
        else:
            graph, removed_self_loops, removed_multi_edges = self._uniform_matching(
                sequence, rng
            )
        degrees = graph.degree_sequence()
        below_minimum = sum(1 for k in degrees if k < self.config.min_degree)
        metadata = {
            "prescribed_total_degree": sum(sequence),
            "removed_self_loops": removed_self_loops,
            "removed_multi_edges": removed_multi_edges,
            "nodes_below_min_degree": below_minimum,
            "isolated_nodes": sum(1 for k in degrees if k == 0),
            "partner_selection": self.partner_selection,
        }
        return graph, metadata

    # ------------------------------------------------------------------ #
    # Degree sequence
    # ------------------------------------------------------------------ #
    def _resolve_degree_sequence(self, rng: RandomSource) -> List[int]:
        if self.explicit_degree_sequence is not None:
            return list(self.explicit_degree_sequence)
        return power_law_degree_sequence(
            number_of_nodes=self.config.number_of_nodes,
            exponent=self.config.exponent,
            min_degree=self.config.min_degree,
            max_degree=self.config.effective_cutoff(),
            rng=rng,
        )

    # ------------------------------------------------------------------ #
    # Matching procedures
    # ------------------------------------------------------------------ #
    @staticmethod
    def _stub_matching(
        sequence: Sequence[int], rng: RandomSource
    ) -> Tuple[Graph, int, int]:
        """Standard CM: shuffle the stub list and pair consecutive stubs."""
        graph = Graph(len(sequence))
        stubs: List[int] = []
        for node, degree in enumerate(sequence):
            stubs.extend([node] * degree)
        rng.shuffle(stubs)

        removed_self_loops = 0
        removed_multi_edges = 0
        for index in range(0, len(stubs) - 1, 2):
            u, v = stubs[index], stubs[index + 1]
            if u == v:
                removed_self_loops += 1
                continue
            if not graph.add_edge(u, v):
                removed_multi_edges += 1
        return graph, removed_self_loops, removed_multi_edges

    @staticmethod
    def _uniform_matching(
        sequence: Sequence[int], rng: RandomSource
    ) -> Tuple[Graph, int, int]:
        """Paper-literal Algorithm 2: pair each remaining stub with a uniform node."""
        number_of_nodes = len(sequence)
        graph = Graph(number_of_nodes)
        remaining = list(sequence)
        removed_self_loops = 0
        removed_multi_edges = 0
        for node in range(number_of_nodes):
            while remaining[node] > 0:
                partner = rng.randint(0, number_of_nodes - 1)
                remaining[node] -= 1
                remaining[partner] -= 1
                if partner == node:
                    removed_self_loops += 1
                    continue
                if not graph.add_edge(node, partner):
                    removed_multi_edges += 1
        return graph, removed_self_loops, removed_multi_edges


def generate_cm(
    number_of_nodes: int,
    exponent: float = 3.0,
    min_degree: int = 1,
    hard_cutoff: Optional[int] = None,
    seed: Optional[int] = None,
    degree_sequence: Optional[Sequence[int]] = None,
    partner_selection: str = "stub_matching",
    rng: Optional[RandomSource] = None,
) -> Graph:
    """Generate a configuration-model topology and return the graph.

    Examples
    --------
    >>> graph = generate_cm(200, exponent=2.2, min_degree=2, hard_cutoff=15, seed=7)
    >>> graph.max_degree() <= 15
    True
    """
    generator = ConfigurationModelGenerator(
        number_of_nodes=number_of_nodes,
        exponent=exponent,
        min_degree=min_degree,
        hard_cutoff=hard_cutoff,
        seed=seed,
        degree_sequence=degree_sequence,
        partner_selection=partner_selection,
    )
    return generator.generate_graph(rng)
