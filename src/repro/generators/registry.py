"""Registry mapping model names to generator classes.

The experiment harness and the CLI construct generators from string names
("pa", "cm", "hapa", "dapa") and keyword parameters read from experiment
specifications; this module centralises that mapping so adding a new model
(e.g. a nonlinear-PA variant) requires registering it in exactly one place.
"""

from __future__ import annotations

from typing import Any, Dict, List, Type

from repro.core.errors import ConfigurationError
from repro.generators.base import TopologyGenerator
from repro.generators.cm import ConfigurationModelGenerator
from repro.generators.dapa import DAPAGenerator
from repro.generators.hapa import HAPAGenerator
from repro.generators.nonlinear_pa import NonlinearPreferentialAttachmentGenerator
from repro.generators.pa import PreferentialAttachmentGenerator

__all__ = ["GENERATORS", "available_generators", "create_generator", "register_generator"]

GENERATORS: Dict[str, Type[TopologyGenerator]] = {
    "pa": PreferentialAttachmentGenerator,
    "cm": ConfigurationModelGenerator,
    "hapa": HAPAGenerator,
    "dapa": DAPAGenerator,
    "nlpa": NonlinearPreferentialAttachmentGenerator,
}


def available_generators() -> List[str]:
    """Return the sorted list of registered model names."""
    return sorted(GENERATORS)


def register_generator(name: str, cls: Type[TopologyGenerator]) -> None:
    """Register a new generator class under ``name``.

    Raises :class:`~repro.core.errors.ConfigurationError` if the name is
    already taken, so accidental shadowing of the built-in models is loud.
    """
    key = name.lower()
    if key in GENERATORS:
        raise ConfigurationError(f"generator {name!r} is already registered")
    if not issubclass(cls, TopologyGenerator):
        raise ConfigurationError("generator classes must subclass TopologyGenerator")
    GENERATORS[key] = cls


def create_generator(name: str, **parameters: Any) -> TopologyGenerator:
    """Instantiate the generator registered under ``name`` with ``parameters``.

    Examples
    --------
    >>> gen = create_generator("pa", number_of_nodes=100, stubs=2, seed=1)
    >>> gen.model_name
    'pa'
    """
    key = name.lower()
    if key not in GENERATORS:
        raise ConfigurationError(
            f"unknown generator {name!r}; available: {', '.join(available_generators())}"
        )
    return GENERATORS[key](**parameters)
