"""Common interface for topology generators.

All four construction mechanisms studied in the paper (PA, CM, HAPA, DAPA)
implement :class:`TopologyGenerator`.  The shared interface lets the search
harness, the experiment runner, and the CLI treat them uniformly: build the
configured generator, call :meth:`generate`, receive a
:class:`GenerationResult` bundling the overlay graph with provenance
metadata.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.graph import Graph
from repro.core.rng import RandomSource, ensure_source
from repro.telemetry.collector import active_telemetry

__all__ = ["GenerationResult", "TopologyGenerator"]


@dataclass
class GenerationResult:
    """The output of a topology generator.

    Attributes
    ----------
    graph:
        The generated overlay graph.
    model:
        Short model name (``"pa"``, ``"cm"``, ``"hapa"``, ``"dapa"``).
    parameters:
        The parameters the topology was generated with, as a plain dict
        (JSON-serialisable, suitable for experiment provenance records).
    metadata:
        Model-specific extras: e.g. the number of self-loops and multi-edges
        removed by the configuration model, the substrate graph used by DAPA,
        or the number of rejected attachment attempts.
    elapsed_seconds:
        Wall-clock construction time.
    """

    graph: Graph
    model: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    metadata: Dict[str, Any] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def summary(self) -> Dict[str, Any]:
        """Return a JSON-friendly summary of the result (graph stats + provenance)."""
        return {
            "model": self.model,
            "parameters": dict(self.parameters),
            "stats": self.graph.stats().as_dict(),
            "metadata": {
                key: value
                for key, value in self.metadata.items()  # repro-lint: disable=RPL102(no draws here; key order mirrors the deterministic build-time insertion order and is pinned by cached-result byte-identity)
                if isinstance(value, (int, float, str, bool, type(None)))
            },
            "elapsed_seconds": self.elapsed_seconds,
        }


class TopologyGenerator(abc.ABC):
    """Abstract base class for overlay topology generators.

    Subclasses implement :meth:`_build`, which receives a ready
    :class:`~repro.core.rng.RandomSource` and returns ``(graph, metadata)``.
    The public :meth:`generate` wraps it with timing and provenance capture.
    """

    #: Short machine-readable model name; subclasses override.
    model_name: str = "abstract"

    #: Whether the construction procedure needs global topology information
    #: (Table II of the paper): ``"yes"``, ``"partial"``, or ``"no"``.
    uses_global_information: str = "yes"

    @abc.abstractmethod
    def _build(self, rng: RandomSource) -> tuple[Graph, Dict[str, Any]]:
        """Construct the topology; return the graph and model-specific metadata."""

    @abc.abstractmethod
    def parameters(self) -> Dict[str, Any]:
        """Return the generator parameters as a JSON-friendly dict."""

    def generate(self, rng: Optional[RandomSource | int] = None) -> GenerationResult:
        """Generate one realisation of the topology.

        Parameters
        ----------
        rng:
            A :class:`~repro.core.rng.RandomSource`, an integer seed, or
            ``None``.  When ``None`` the generator's configured seed (if any)
            is used; otherwise a fresh unseeded source is created.
        """
        source = self._resolve_rng(rng)
        telemetry = active_telemetry()
        started = time.perf_counter()
        with telemetry.span("generate"):
            graph, metadata = self._build(source)
        elapsed = time.perf_counter() - started
        if telemetry.enabled:
            telemetry.count(f"generate.{self.model_name}")
            # The builders already tally their rejection/starvation events in
            # the metadata; fold the interesting ones into the trace counters.
            for field_name, counter in (
                ("rejected_attempts", "generate.rejections"),
                ("unfilled_stubs", "generate.unfilled_stubs"),
                ("removed_self_loops", "generate.removed_self_loops"),
                ("removed_multi_edges", "generate.removed_multi_edges"),
            ):
                value = metadata.get(field_name)
                if isinstance(value, (int, float)) and value:
                    telemetry.count(counter, value)
        return GenerationResult(
            graph=graph,
            model=self.model_name,
            parameters=self.parameters(),
            metadata=metadata,
            elapsed_seconds=elapsed,
        )

    def generate_graph(self, rng: Optional[RandomSource | int] = None) -> Graph:
        """Generate a topology and return only the graph (convenience wrapper)."""
        return self.generate(rng).graph

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _resolve_rng(self, rng: Optional[RandomSource | int]) -> RandomSource:
        if rng is not None:
            return ensure_source(rng)
        configured_seed = getattr(self, "seed", None)
        return ensure_source(configured_seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(
            f"{key}={value!r}"
            for key, value in self.parameters().items()  # repro-lint: disable=RPL102(debug repr only; no draws occur during or after this iteration)
        )
        return f"{type(self).__name__}({params})"
