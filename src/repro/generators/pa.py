"""Preferential attachment with hard cutoffs (paper §III-B, Algorithm 1).

The network grows one node at a time.  Each new node ``i`` fills ``m`` stubs
by connecting to already-present nodes with probability proportional to their
degree, *subject to the hard cutoff*: a node whose degree already equals
``kc`` never accepts another link.  Without a cutoff this is the classic
Barabási–Albert model (γ = 3 in the large-N limit, γ ≈ 2.85 at N = 10^5 per
the paper); with a cutoff the distribution keeps a power-law body, develops a
spike at ``k = kc``, and its fitted exponent decreases as ``kc`` decreases
(paper Fig. 1).

Two selection strategies are provided:

``"attempt"``
    A literal transcription of the paper's Algorithm 1: repeatedly pick a
    uniform random existing node and accept it with probability
    ``k_node / k_total`` if it is not yet a neighbor and is below the cutoff.
    Faithful but O(N) expected attempts per stub — use it for small networks
    and for validating the fast strategy.

``"roulette"`` (default)
    Degree-proportional selection via a stub list (each node appears once per
    unit of degree), rejecting saturated nodes and duplicates.  Conditioned
    on acceptance this draws from exactly the same distribution as
    ``"attempt"`` (probability ∝ degree among eligible nodes) but costs O(1)
    expected time per stub, making N = 10^5 topologies practical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import PAConfig
from repro.core.errors import ConfigurationError, GenerationError
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.generators.base import TopologyGenerator

__all__ = ["PreferentialAttachmentGenerator", "generate_pa"]

_STRATEGIES = ("roulette", "attempt")

#: Attempts per stub before the generator falls back to an explicit scan of
#: eligible nodes.  Generous enough that it only triggers in pathological
#: tiny/saturated networks.
_MAX_REJECTIONS_PER_STUB = 100_000


class PreferentialAttachmentGenerator(TopologyGenerator):
    """Grow a scale-free network by preferential attachment with a hard cutoff.

    Parameters
    ----------
    number_of_nodes:
        Final network size ``N``.
    stubs:
        Links ``m`` each new node creates (also the minimum degree).
    hard_cutoff:
        Maximum degree ``kc`` any node may reach, or ``None`` for no cutoff.
    seed:
        Optional seed for reproducible topologies.
    strategy:
        ``"roulette"`` (fast, default) or ``"attempt"`` (paper-literal).

    Examples
    --------
    >>> gen = PreferentialAttachmentGenerator(200, stubs=2, hard_cutoff=10, seed=1)
    >>> graph = gen.generate_graph()
    >>> graph.number_of_nodes
    200
    >>> graph.max_degree() <= 10
    True
    """

    model_name = "pa"
    uses_global_information = "yes"

    def __init__(
        self,
        number_of_nodes: int,
        stubs: int = 1,
        hard_cutoff: Optional[int] = None,
        seed: Optional[int] = None,
        strategy: str = "roulette",
    ) -> None:
        self.config = PAConfig(
            number_of_nodes=number_of_nodes,
            stubs=stubs,
            hard_cutoff=hard_cutoff,
            seed=seed,
        )
        if strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"unknown PA strategy {strategy!r}; expected one of {_STRATEGIES}"
            )
        if hard_cutoff is not None and hard_cutoff < stubs + 1 and number_of_nodes > stubs + 1:
            # The seed clique of m+1 nodes already gives every seed node degree
            # m; a cutoff of exactly m would freeze the network immediately.
            if hard_cutoff <= stubs:
                raise ConfigurationError(
                    "hard_cutoff must exceed stubs for a growing PA network"
                )
        self.strategy = strategy
        self.seed = seed

    # ------------------------------------------------------------------ #
    # TopologyGenerator interface
    # ------------------------------------------------------------------ #
    def parameters(self) -> Dict[str, Any]:
        return {
            "model": self.model_name,
            "number_of_nodes": self.config.number_of_nodes,
            "stubs": self.config.stubs,
            "hard_cutoff": self.config.hard_cutoff,
            "strategy": self.strategy,
            "seed": self.seed,
        }

    def _build(self, rng: RandomSource) -> Tuple[Graph, Dict[str, Any]]:
        if self.strategy == "roulette":
            return self._build_roulette(rng)
        return self._build_attempt(rng)

    # ------------------------------------------------------------------ #
    # Fast strategy: stub-list roulette selection
    # ------------------------------------------------------------------ #
    def _build_roulette(self, rng: RandomSource) -> Tuple[Graph, Dict[str, Any]]:
        config = self.config
        n, m = config.number_of_nodes, config.stubs
        cutoff = config.effective_cutoff()

        graph = Graph.complete(min(m + 1, n))
        # The stub list holds each node id once per unit of degree, so a
        # uniform draw from it is a degree-proportional draw over nodes.
        stub_list: List[int] = []
        for u, v in graph.edges():
            stub_list.append(u)
            stub_list.append(v)

        rejected_attempts = 0
        unfilled_stubs = 0

        for new_node in range(graph.number_of_nodes, n):
            graph.add_node(new_node)
            chosen: List[int] = []
            for _ in range(m):
                target = self._pick_roulette(graph, stub_list, new_node, cutoff, rng)
                if target is None:
                    unfilled_stubs += 1
                    continue
                rejected_attempts += target[1]
                graph.add_edge(new_node, target[0])
                chosen.append(target[0])
            # Update the stub list only after all of this node's stubs are
            # placed so the node does not preferentially attach to itself's
            # earlier targets more than their degree warrants.
            for neighbor in chosen:
                stub_list.append(neighbor)
                stub_list.append(new_node)

        metadata = {
            "rejected_attempts": rejected_attempts,
            "unfilled_stubs": unfilled_stubs,
            "strategy": "roulette",
        }
        return graph, metadata

    @staticmethod
    def _pick_roulette(
        graph: Graph,
        stub_list: List[int],
        new_node: int,
        cutoff: int,
        rng: RandomSource,
    ) -> Optional[Tuple[int, int]]:
        """Pick an eligible target by degree-proportional roulette selection.

        Returns ``(target, rejections)`` or ``None`` when no eligible node
        exists (every non-neighbor is saturated).
        """
        rejections = 0
        neighbor_set = graph.neighbor_set(new_node)
        while rejections < _MAX_REJECTIONS_PER_STUB:
            candidate = stub_list[rng.randint(0, len(stub_list) - 1)]
            if (
                candidate != new_node
                and candidate not in neighbor_set
                and graph.degree(candidate) < cutoff
            ):
                return candidate, rejections
            rejections += 1
        # Extremely unlikely path: fall back to an explicit scan.
        eligible = [
            node
            for node in graph.nodes()
            if node != new_node
            and node not in neighbor_set
            and graph.degree(node) < cutoff
            and graph.degree(node) > 0
        ]
        if not eligible:
            return None
        weights = [graph.degree(node) for node in eligible]
        return eligible[rng.weighted_index(weights)], rejections

    # ------------------------------------------------------------------ #
    # Paper-literal strategy: uniform pick + acceptance test (Algorithm 1)
    # ------------------------------------------------------------------ #
    def _build_attempt(self, rng: RandomSource) -> Tuple[Graph, Dict[str, Any]]:
        config = self.config
        n, m = config.number_of_nodes, config.stubs
        cutoff = config.effective_cutoff()

        graph = Graph.complete(min(m + 1, n))
        rejected_attempts = 0
        unfilled_stubs = 0

        for new_node in range(graph.number_of_nodes, n):
            graph.add_node(new_node)
            for _ in range(m):
                placed = False
                attempts = 0
                while not placed and attempts < _MAX_REJECTIONS_PER_STUB:
                    attempts += 1
                    candidate = rng.randint(0, new_node - 1)
                    acceptance = rng.random()
                    total_degree = graph.total_degree
                    if total_degree == 0:
                        break
                    if (
                        not graph.has_edge(new_node, candidate)
                        and acceptance < graph.degree(candidate) / total_degree
                        and graph.degree(candidate) < cutoff
                    ):
                        graph.add_edge(new_node, candidate)
                        placed = True
                rejected_attempts += attempts - 1
                if not placed:
                    unfilled_stubs += 1

        metadata = {
            "rejected_attempts": rejected_attempts,
            "unfilled_stubs": unfilled_stubs,
            "strategy": "attempt",
        }
        return graph, metadata


def generate_pa(
    number_of_nodes: int,
    stubs: int = 1,
    hard_cutoff: Optional[int] = None,
    seed: Optional[int] = None,
    strategy: str = "roulette",
    rng: Optional[RandomSource] = None,
) -> Graph:
    """Generate a preferential-attachment topology and return the graph.

    This is the one-call convenience wrapper around
    :class:`PreferentialAttachmentGenerator`.

    Examples
    --------
    >>> graph = generate_pa(100, stubs=2, hard_cutoff=20, seed=42)
    >>> graph.number_of_nodes
    100
    """
    generator = PreferentialAttachmentGenerator(
        number_of_nodes=number_of_nodes,
        stubs=stubs,
        hard_cutoff=hard_cutoff,
        seed=seed,
        strategy=strategy,
    )
    return generator.generate_graph(rng)
