"""Preferential attachment with hard cutoffs (paper §III-B, Algorithm 1).

The network grows one node at a time.  Each new node ``i`` fills ``m`` stubs
by connecting to already-present nodes with probability proportional to their
degree, *subject to the hard cutoff*: a node whose degree already equals
``kc`` never accepts another link.  Without a cutoff this is the classic
Barabási–Albert model (γ = 3 in the large-N limit, γ ≈ 2.85 at N = 10^5 per
the paper); with a cutoff the distribution keeps a power-law body, develops a
spike at ``k = kc``, and its fitted exponent decreases as ``kc`` decreases
(paper Fig. 1).

Two selection strategies are provided:

``"attempt"``
    A literal transcription of the paper's Algorithm 1: repeatedly pick a
    uniform random existing node and accept it with probability
    ``k_node / k_total`` if it is not yet a neighbor and is below the cutoff.
    Faithful but O(N) expected attempts per stub — use it for small networks
    and for validating the fast strategy.  Under the ``jit`` kernel tier the
    loop runs compiled (:func:`repro.kernels.generators.pa_attempt_build`),
    draw-identical to the Python body.

``"roulette"`` (default)
    Degree-proportional selection via a stub list (each node appears once per
    unit of degree), rejecting saturated nodes and duplicates.  Conditioned
    on acceptance this draws from exactly the same distribution as
    ``"attempt"`` (probability ∝ degree among eligible nodes) but costs O(1)
    expected time per stub, making N = 10^5 topologies practical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import PAConfig
from repro.core.errors import ConfigurationError, GenerationError
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.generators.base import TopologyGenerator
from repro.kernels.dispatch import kernel_generation_ready

__all__ = ["PreferentialAttachmentGenerator", "generate_pa"]

_STRATEGIES = ("roulette", "attempt")

#: Attempts per stub before the generator falls back to an explicit scan of
#: eligible nodes.  Generous enough that it only triggers in pathological
#: tiny/saturated networks.
_MAX_REJECTIONS_PER_STUB = 100_000


class PreferentialAttachmentGenerator(TopologyGenerator):
    """Grow a scale-free network by preferential attachment with a hard cutoff.

    Parameters
    ----------
    number_of_nodes:
        Final network size ``N``.
    stubs:
        Links ``m`` each new node creates (also the minimum degree).
    hard_cutoff:
        Maximum degree ``kc`` any node may reach, or ``None`` for no cutoff.
    seed:
        Optional seed for reproducible topologies.
    strategy:
        ``"roulette"`` (fast, default) or ``"attempt"`` (paper-literal).
    strict:
        When ``True``, a build whose result violates the model's minimum
        degree (any stub left unfilled, which otherwise only shows up as a
        metadata counter) raises :class:`~repro.core.errors.GenerationError`
        instead of silently returning a degenerate topology.

    Examples
    --------
    >>> gen = PreferentialAttachmentGenerator(200, stubs=2, hard_cutoff=10, seed=1)
    >>> graph = gen.generate_graph()
    >>> graph.number_of_nodes
    200
    >>> graph.max_degree() <= 10
    True
    """

    model_name = "pa"
    uses_global_information = "yes"

    def __init__(
        self,
        number_of_nodes: int,
        stubs: int = 1,
        hard_cutoff: Optional[int] = None,
        seed: Optional[int] = None,
        strategy: str = "roulette",
        strict: bool = False,
    ) -> None:
        self.config = PAConfig(
            number_of_nodes=number_of_nodes,
            stubs=stubs,
            hard_cutoff=hard_cutoff,
            seed=seed,
        )
        if strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"unknown PA strategy {strategy!r}; expected one of {_STRATEGIES}"
            )
        # The seed clique of m+1 nodes already gives every seed node degree
        # m; a cutoff of exactly m would freeze the network immediately.
        # (n == m + 1 is the degenerate-but-valid case: the complete graph
        # itself, with no growth phase for the cutoff to block.)
        if (
            hard_cutoff is not None
            and hard_cutoff <= stubs
            and number_of_nodes > stubs + 1
        ):
            raise ConfigurationError(
                "hard_cutoff must exceed stubs for a growing PA network"
            )
        self.strategy = strategy
        self.strict = strict
        self.seed = seed

    # ------------------------------------------------------------------ #
    # TopologyGenerator interface
    # ------------------------------------------------------------------ #
    def parameters(self) -> Dict[str, Any]:
        return {
            "model": self.model_name,
            "number_of_nodes": self.config.number_of_nodes,
            "stubs": self.config.stubs,
            "hard_cutoff": self.config.hard_cutoff,
            "strategy": self.strategy,
            "seed": self.seed,
        }

    def _build(self, rng: RandomSource) -> Tuple[Graph, Dict[str, Any]]:
        if self.strategy == "roulette":
            if kernel_generation_ready(rng):
                from repro.kernels.generators import pa_roulette_build

                graph, metadata = pa_roulette_build(self.config, rng)
            else:
                graph, metadata = self._build_roulette(rng)
        else:
            if kernel_generation_ready(rng):
                from repro.kernels.generators import pa_attempt_build

                graph, metadata = pa_attempt_build(self.config, rng)
            else:
                graph, metadata = self._build_attempt(rng)
        minimum = self.config.stubs
        metadata["min_degree_violations"] = sum(
            1 for degree in graph.degree_sequence() if degree < minimum
        )
        if self.strict and (
            metadata["unfilled_stubs"] or metadata["min_degree_violations"]
        ):
            raise GenerationError(
                f"PA build left {metadata['unfilled_stubs']} stub(s) unfilled "
                f"({metadata['min_degree_violations']} node(s) below the "
                f"minimum degree m={minimum}); relax the cutoff or pass "
                "strict=False to accept the degenerate topology"
            )
        return graph, metadata

    # ------------------------------------------------------------------ #
    # Fast strategy: stub-list roulette selection
    # ------------------------------------------------------------------ #
    def _build_roulette(self, rng: RandomSource) -> Tuple[Graph, Dict[str, Any]]:
        config = self.config
        n, m = config.number_of_nodes, config.stubs
        cutoff = config.effective_cutoff()

        graph = Graph.complete(min(m + 1, n))
        # The stub list holds each node id once per unit of degree, so a
        # uniform draw from it is a degree-proportional draw over nodes.
        stub_list: List[int] = []
        for u, v in graph.edges():
            stub_list.append(u)
            stub_list.append(v)
        # Saturated-entry bookkeeping: the stub list retains entries of
        # nodes that have reached the cutoff (removing them would change
        # which slot every later draw lands on), so under tight cutoffs a
        # pick can become *doomed* — every slot points at a saturated or
        # already-linked node.  ``entries[x]`` counts x's slots and
        # ``dead_entries`` the slots on saturated nodes; together they let
        # ``_pick_roulette`` detect a doomed pick up front instead of
        # burning ``_MAX_REJECTIONS_PER_STUB`` draws discovering it.
        entries = [0] * n
        for node in stub_list:
            entries[node] += 1
        dead_entries = 0
        for node in range(graph.number_of_nodes):
            if graph.degree(node) >= cutoff:
                dead_entries += entries[node]

        rejected_attempts = 0
        unfilled_stubs = 0

        for new_node in range(graph.number_of_nodes, n):
            graph.add_node(new_node)
            chosen: List[int] = []
            for _ in range(m):
                target, rejections = self._pick_roulette(
                    graph, stub_list, new_node, cutoff, rng,
                    entries, dead_entries, chosen,
                )
                rejected_attempts += rejections
                if target is None:
                    unfilled_stubs += 1
                    continue
                graph.add_edge(new_node, target)
                if graph.degree(target) == cutoff:
                    dead_entries += entries[target]
                chosen.append(target)
            # Update the stub list only after all of this node's stubs are
            # placed so the node does not preferentially attach to itself's
            # earlier targets more than their degree warrants.
            for neighbor in chosen:
                stub_list.append(neighbor)
                entries[neighbor] += 1
                if graph.degree(neighbor) >= cutoff:
                    dead_entries += 1
                stub_list.append(new_node)
                entries[new_node] += 1
                if graph.degree(new_node) >= cutoff:
                    dead_entries += 1

        metadata = {
            "rejected_attempts": rejected_attempts,
            "unfilled_stubs": unfilled_stubs,
            "strategy": "roulette",
        }
        return graph, metadata

    @staticmethod
    def _pick_roulette(
        graph: Graph,
        stub_list: List[int],
        new_node: int,
        cutoff: int,
        rng: RandomSource,
        entries: List[int],
        dead_entries: int,
        chosen: List[int],
    ) -> Tuple[Optional[int], int]:
        """Pick an eligible target by degree-proportional roulette selection.

        Returns ``(target, rejections)``; ``target`` is ``None`` when no
        eligible node exists (every candidate is saturated or already
        linked).  ``rejections`` counts the draws burned before success —
        including the draws of a failed loop that fell back to the scan,
        which the caller now always accounts for.
        """
        neighbor_set = graph.neighbor_set(new_node)
        # Live-entry audit: slots pointing at an unsaturated node that is
        # not already a neighbor (the new node has no slots yet).  Zero
        # live slots means the rejection loop *and* the fallback scan are
        # both doomed — any node with degree > 0 below the cutoff would
        # still have live slots — so bail out without consuming a draw.
        live = len(stub_list) - dead_entries
        for node in chosen:
            if graph.degree(node) < cutoff:
                live -= entries[node]
        if live <= 0:
            return None, 0
        rejections = 0
        while rejections < _MAX_REJECTIONS_PER_STUB:
            candidate = stub_list[rng.randint(0, len(stub_list) - 1)]
            if (
                candidate != new_node
                and candidate not in neighbor_set
                and graph.degree(candidate) < cutoff
            ):
                return candidate, rejections
            rejections += 1
        # Extremely unlikely path: fall back to an explicit scan.  The
        # ``degree > 0`` filter keeps the draw degree-proportional (a
        # zero-degree node has no stub slots either, so the loop above
        # could never have selected it).
        eligible = [
            node
            for node in graph.nodes()
            if node != new_node
            and node not in neighbor_set
            and graph.degree(node) < cutoff
            and graph.degree(node) > 0
        ]
        if not eligible:
            return None, rejections
        weights = [graph.degree(node) for node in eligible]
        return eligible[rng.weighted_index(weights)], rejections

    # ------------------------------------------------------------------ #
    # Paper-literal strategy: uniform pick + acceptance test (Algorithm 1)
    # ------------------------------------------------------------------ #
    def _build_attempt(self, rng: RandomSource) -> Tuple[Graph, Dict[str, Any]]:
        config = self.config
        n, m = config.number_of_nodes, config.stubs
        cutoff = config.effective_cutoff()

        graph = Graph.complete(min(m + 1, n))
        rejected_attempts = 0
        unfilled_stubs = 0

        for new_node in range(graph.number_of_nodes, n):
            graph.add_node(new_node)
            for _ in range(m):
                placed = False
                attempts = 0
                while not placed and attempts < _MAX_REJECTIONS_PER_STUB:
                    attempts += 1
                    candidate = rng.randint(0, new_node - 1)
                    acceptance = rng.random()
                    total_degree = graph.total_degree
                    if total_degree == 0:
                        # Unreachable through a validated configuration (the
                        # seed clique always has edges); a silent break here
                        # would grow an edgeless graph one isolated node at
                        # a time, so fail loudly instead.
                        raise GenerationError(
                            "preferential attachment needs at least one "
                            "existing edge to define attachment "
                            "probabilities; the seed graph is edgeless"
                        )
                    if (
                        not graph.has_edge(new_node, candidate)
                        and acceptance < graph.degree(candidate) / total_degree
                        and graph.degree(candidate) < cutoff
                    ):
                        graph.add_edge(new_node, candidate)
                        placed = True
                rejected_attempts += attempts - 1
                if not placed:
                    unfilled_stubs += 1

        metadata = {
            "rejected_attempts": rejected_attempts,
            "unfilled_stubs": unfilled_stubs,
            "strategy": "attempt",
        }
        return graph, metadata


def generate_pa(
    number_of_nodes: int,
    stubs: int = 1,
    hard_cutoff: Optional[int] = None,
    seed: Optional[int] = None,
    strategy: str = "roulette",
    strict: bool = False,
    rng: Optional[RandomSource] = None,
) -> Graph:
    """Generate a preferential-attachment topology and return the graph.

    This is the one-call convenience wrapper around
    :class:`PreferentialAttachmentGenerator`.

    Examples
    --------
    >>> graph = generate_pa(100, stubs=2, hard_cutoff=20, seed=42)
    >>> graph.number_of_nodes
    100
    """
    generator = PreferentialAttachmentGenerator(
        number_of_nodes=number_of_nodes,
        stubs=stubs,
        hard_cutoff=hard_cutoff,
        seed=seed,
        strategy=strategy,
        strict=strict,
    )
    return generator.generate_graph(rng)
