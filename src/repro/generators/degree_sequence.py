"""Power-law degree-sequence sampling for the configuration model.

The configuration model (paper Alg. 2 and §III-C) takes a *prescribed*
degree sequence drawn from a discrete power law

.. math::

    P(k) \\propto k^{-\\gamma}, \\qquad m \\le k \\le k_c,

with the additional constraint that the sum of degrees be even (every edge
consumes two stubs).  This module provides:

* :func:`power_law_probabilities` — the normalised probability mass function
  on the integer range ``[m, kc]``;
* :func:`power_law_degree_sequence` — a sampled degree sequence of length
  ``N`` whose sum is even;
* :func:`expected_mean_degree` — the analytical mean of the truncated
  distribution (used by tests and by the natural-cutoff analysis);
* :func:`natural_cutoff` — the Dorogovtsev–Mendes natural cutoff
  ``k_nc ~ m N^{1/(γ-1)}`` (paper Eq. 4).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.rng import RandomSource, ensure_source

__all__ = [
    "power_law_probabilities",
    "power_law_degree_sequence",
    "expected_mean_degree",
    "natural_cutoff",
    "aiello_natural_cutoff",
]


def _validate_range(min_degree: int, max_degree: int, exponent: float) -> None:
    if min_degree < 1:
        raise ConfigurationError("min_degree must be at least 1")
    if max_degree < min_degree:
        raise ConfigurationError(
            f"max_degree ({max_degree}) must be >= min_degree ({min_degree})"
        )
    if exponent <= 1.0:
        raise ConfigurationError("exponent (gamma) must be greater than 1")


def power_law_probabilities(
    exponent: float, min_degree: int, max_degree: int
) -> np.ndarray:
    """Return the discrete truncated power-law pmf on ``[min_degree, max_degree]``.

    The returned array ``p`` has ``p[i]`` equal to the probability of degree
    ``min_degree + i`` and sums to 1.

    Examples
    --------
    >>> p = power_law_probabilities(3.0, 1, 4)
    >>> float(round(p.sum(), 12))
    1.0
    >>> bool(p[0] > p[-1])
    True
    """
    _validate_range(min_degree, max_degree, exponent)
    degrees = np.arange(min_degree, max_degree + 1, dtype=float)
    weights = degrees**-exponent
    return weights / weights.sum()


def expected_mean_degree(exponent: float, min_degree: int, max_degree: int) -> float:
    """Return the mean of the truncated discrete power law ``P(k) ∝ k^-γ``."""
    probabilities = power_law_probabilities(exponent, min_degree, max_degree)
    degrees = np.arange(min_degree, max_degree + 1, dtype=float)
    return float(np.dot(probabilities, degrees))


def power_law_degree_sequence(
    number_of_nodes: int,
    exponent: float,
    min_degree: int = 1,
    max_degree: Optional[int] = None,
    rng: "RandomSource | int | None" = None,
) -> List[int]:
    """Sample a power-law degree sequence with an even sum.

    Parameters
    ----------
    number_of_nodes:
        Length of the sequence (``N``).
    exponent:
        Power-law exponent γ.
    min_degree:
        Minimum degree ``m`` (inclusive).
    max_degree:
        Maximum degree / hard cutoff ``kc`` (inclusive).  Defaults to ``N``
        (the conventional configuration-model choice, paper §III-C).
    rng:
        Random source or seed.

    Returns
    -------
    list of int
        A degree sequence of length ``N`` whose sum is even.  Evenness is
        repaired, when needed, by incrementing (or decrementing, if already
        at the cutoff) the degree of one uniformly chosen node by one — a
        perturbation of a single stub that does not measurably affect the
        distribution.

    Examples
    --------
    >>> seq = power_law_degree_sequence(100, 2.5, min_degree=2, max_degree=10, rng=1)
    >>> len(seq)
    100
    >>> sum(seq) % 2
    0
    >>> all(2 <= k <= 10 for k in seq)
    True
    """
    if number_of_nodes < 1:
        raise ConfigurationError("number_of_nodes must be at least 1")
    if max_degree is None:
        max_degree = number_of_nodes
    _validate_range(min_degree, max_degree, exponent)

    source = ensure_source(rng)
    generator = source.numpy_generator()
    probabilities = power_law_probabilities(exponent, min_degree, max_degree)
    support = np.arange(min_degree, max_degree + 1)
    sequence = generator.choice(support, size=number_of_nodes, p=probabilities)
    sequence = [int(value) for value in sequence]

    if sum(sequence) % 2 == 1:
        index = source.randint(0, number_of_nodes - 1)
        if sequence[index] < max_degree:
            sequence[index] += 1
        elif sequence[index] > min_degree:
            sequence[index] -= 1
        else:
            # min_degree == max_degree == odd and N odd: flip a different node
            # up if possible, otherwise the request is unsatisfiable.
            if min_degree == max_degree:
                raise ConfigurationError(
                    "cannot build an even-sum sequence with a single odd degree "
                    f"value ({min_degree}) and an odd number of nodes"
                )
            sequence[index] += 1
    return sequence


def natural_cutoff(number_of_nodes: int, exponent: float, min_degree: int = 1) -> float:
    """Dorogovtsev–Mendes natural cutoff ``k_nc ~ m N^{1/(γ-1)}`` (paper Eq. 4).

    For the Barabási–Albert case γ = 3 this reduces to ``m √N`` (paper Eq. 5).

    Examples
    --------
    >>> round(natural_cutoff(10000, 3.0, min_degree=2), 1)
    200.0
    """
    if number_of_nodes < 1:
        raise ConfigurationError("number_of_nodes must be at least 1")
    if exponent <= 1.0:
        raise ConfigurationError("exponent (gamma) must be greater than 1")
    if min_degree < 1:
        raise ConfigurationError("min_degree must be at least 1")
    return float(min_degree) * float(number_of_nodes) ** (1.0 / (exponent - 1.0))


def aiello_natural_cutoff(number_of_nodes: int, exponent: float) -> float:
    """Aiello–Chung–Lu natural cutoff ``k_nc ~ N^{1/γ}`` (paper Eq. 2).

    The paper notes this estimate "lacks some mathematical rigor"; it is
    provided for completeness and comparison with :func:`natural_cutoff`.
    """
    if number_of_nodes < 1:
        raise ConfigurationError("number_of_nodes must be at least 1")
    if exponent <= 0.0:
        raise ConfigurationError("exponent (gamma) must be positive")
    return float(number_of_nodes) ** (1.0 / exponent)
