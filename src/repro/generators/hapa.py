"""Hop-and-Attempt Preferential Attachment (HAPA, paper §IV-A, Algorithm 3).

HAPA is the paper's first local-heuristic construction.  A joining node first
attempts to attach to one uniformly chosen existing node (using the same
degree-proportional acceptance test and hard-cutoff condition as PA); it then
*hops* along existing links — repeatedly moving to a random neighbor of the
current node — attempting to attach at every step, until all ``m`` stubs are
filled.

Hopping along edges biases the walk towards high-degree nodes, so without a
hard cutoff a handful of "super hubs" with degree on the order of the system
size emerge and the topology becomes star-like (paper Fig. 3a).  A hard
cutoff destroys the star and restores a power-law-like distribution with an
exponential correction (Fig. 3b–c).

HAPA still needs *partial* global information: the acceptance test divides
by the total degree ``k_total`` of the network (Table II classifies it as
"partial").  The hop itself uses only local neighbor lists.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.config import HAPAConfig
from repro.core.errors import ConfigurationError
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.generators.base import TopologyGenerator
from repro.kernels.dispatch import kernel_generation_ready

__all__ = ["HAPAGenerator", "generate_hapa"]


class HAPAGenerator(TopologyGenerator):
    """Grow an overlay by hop-and-attempt preferential attachment.

    Parameters
    ----------
    number_of_nodes:
        Final network size ``N``.
    stubs:
        Links ``m`` each new node creates.
    hard_cutoff:
        Maximum degree ``kc`` (``None`` for no cutoff — expect a star-like
        topology).
    seed:
        Optional RNG seed.
    max_hops_per_stub:
        Safety bound on hop attempts for a single stub; when exceeded the
        generator falls back to a uniform eligible node so construction
        always terminates (the fallback count is reported in metadata and is
        zero in normal operation).

    Examples
    --------
    >>> graph = HAPAGenerator(200, stubs=2, hard_cutoff=10, seed=3).generate_graph()
    >>> graph.number_of_nodes
    200
    >>> graph.max_degree() <= 10
    True
    """

    model_name = "hapa"
    uses_global_information = "partial"

    def __init__(
        self,
        number_of_nodes: int,
        stubs: int = 1,
        hard_cutoff: Optional[int] = None,
        seed: Optional[int] = None,
        max_hops_per_stub: int = 10_000,
    ) -> None:
        self.config = HAPAConfig(
            number_of_nodes=number_of_nodes,
            stubs=stubs,
            hard_cutoff=hard_cutoff,
            seed=seed,
            max_hops_per_stub=max_hops_per_stub,
        )
        # Same eager seed-clique validation as PA: the m+1-node seed clique
        # saturates every seed node when kc == m, so any growth phase would
        # stall immediately (n == m + 1 stays valid: the clique is the
        # whole requested graph).
        if (
            hard_cutoff is not None
            and hard_cutoff <= stubs
            and number_of_nodes > stubs + 1
        ):
            raise ConfigurationError(
                "hard_cutoff must exceed stubs for a growing HAPA network"
            )
        self.seed = seed

    # ------------------------------------------------------------------ #
    # TopologyGenerator interface
    # ------------------------------------------------------------------ #
    def parameters(self) -> Dict[str, Any]:
        return {
            "model": self.model_name,
            "number_of_nodes": self.config.number_of_nodes,
            "stubs": self.config.stubs,
            "hard_cutoff": self.config.hard_cutoff,
            "max_hops_per_stub": self.config.max_hops_per_stub,
            "seed": self.seed,
        }

    def _build(self, rng: RandomSource) -> Tuple[Graph, Dict[str, Any]]:
        if kernel_generation_ready(rng):
            from repro.kernels.generators import hapa_build

            return hapa_build(self.config, rng)
        return self._build_reference(rng)

    def _build_reference(self, rng: RandomSource) -> Tuple[Graph, Dict[str, Any]]:
        config = self.config
        n, m = config.number_of_nodes, config.stubs
        cutoff = config.effective_cutoff()
        max_hops = config.max_hops_per_stub

        graph = Graph.complete(min(m + 1, n))
        total_hops = 0
        fallback_attachments = 0
        unfilled_stubs = 0

        for new_node in range(graph.number_of_nodes, n):
            graph.add_node(new_node)
            filled = 0

            # Step 1 (paper lines 3-7): one attempt at a uniformly random
            # existing node with the PA acceptance test.
            candidate = rng.randint(0, new_node - 1)
            if self._accepts(graph, new_node, candidate, cutoff, rng):
                graph.add_edge(new_node, candidate)
                filled += 1
                current = candidate
            else:
                current = candidate

            # Step 2 (paper lines 8-15): hop along existing links, attempting
            # to attach at every visited node, until all stubs are filled.
            hops_for_node = 0
            while filled < m:
                next_node = graph.random_neighbor(current, rng)
                if next_node is None:
                    # Isolated landing spot (possible only in degenerate tiny
                    # graphs): restart from a random existing node.
                    next_node = rng.randint(0, new_node - 1)
                current = next_node
                hops_for_node += 1
                total_hops += 1
                if current != new_node and self._accepts(
                    graph, new_node, current, cutoff, rng
                ):
                    graph.add_edge(new_node, current)
                    filled += 1
                    hops_for_node = 0
                    continue
                if hops_for_node >= max_hops:
                    placed = self._fallback_attach(graph, new_node, cutoff, rng)
                    if placed:
                        fallback_attachments += 1
                        filled += 1
                    else:
                        unfilled_stubs += m - filled
                        break
                    hops_for_node = 0

        metadata = {
            "total_hops": total_hops,
            "fallback_attachments": fallback_attachments,
            "unfilled_stubs": unfilled_stubs,
        }
        return graph, metadata

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _accepts(
        graph: Graph, new_node: int, candidate: int, cutoff: int, rng: RandomSource
    ) -> bool:
        """The PA acceptance test of Algorithm 3 (lines 4 and 11)."""
        if candidate == new_node or graph.has_edge(new_node, candidate):
            return False
        degree = graph.degree(candidate)
        if degree >= cutoff or degree == 0:
            return False
        total_degree = graph.total_degree
        if total_degree == 0:
            return False
        return rng.random() < degree / total_degree

    @staticmethod
    def _fallback_attach(
        graph: Graph, new_node: int, cutoff: int, rng: RandomSource
    ) -> bool:
        """Attach to a uniformly chosen eligible node (termination guarantee)."""
        neighbor_set = graph.neighbor_set(new_node)
        eligible = [
            node
            for node in graph.nodes()
            if node != new_node
            and node not in neighbor_set
            and graph.degree(node) < cutoff
        ]
        if not eligible:
            return False
        graph.add_edge(new_node, rng.choice(eligible))
        return True


def generate_hapa(
    number_of_nodes: int,
    stubs: int = 1,
    hard_cutoff: Optional[int] = None,
    seed: Optional[int] = None,
    max_hops_per_stub: int = 10_000,
    rng: Optional[RandomSource] = None,
) -> Graph:
    """Generate a HAPA topology and return the graph.

    Examples
    --------
    >>> graph = generate_hapa(150, stubs=1, hard_cutoff=20, seed=9)
    >>> graph.number_of_nodes
    150
    """
    generator = HAPAGenerator(
        number_of_nodes=number_of_nodes,
        stubs=stubs,
        hard_cutoff=hard_cutoff,
        seed=seed,
        max_hops_per_stub=max_hops_per_stub,
    )
    return generator.generate_graph(rng)
