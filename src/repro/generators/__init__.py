"""Overlay-topology generators.

The paper studies four construction mechanisms for scale-free overlay
topologies with hard cutoffs:

=========  ==============================================  ====================
Model      Module                                          Global information
=========  ==============================================  ====================
PA         :mod:`repro.generators.pa`                      yes
CM         :mod:`repro.generators.cm`                      yes
HAPA       :mod:`repro.generators.hapa`                    partial
DAPA       :mod:`repro.generators.dapa`                    no
=========  ==============================================  ====================

(The table mirrors Table II of the paper.)

Every generator exposes both a class API (construct, inspect configuration,
call :meth:`~repro.generators.base.TopologyGenerator.generate`) and a
one-call functional helper (``generate_pa``, ``generate_cm``, ...).
"""

from repro.generators.base import GenerationResult, TopologyGenerator
from repro.generators.cm import ConfigurationModelGenerator, generate_cm
from repro.generators.dapa import DAPAGenerator, generate_dapa
from repro.generators.degree_sequence import (
    power_law_degree_sequence,
    power_law_probabilities,
)
from repro.generators.hapa import HAPAGenerator, generate_hapa
from repro.generators.nonlinear_pa import (
    NonlinearPreferentialAttachmentGenerator,
    generate_nonlinear_pa,
)
from repro.generators.pa import PreferentialAttachmentGenerator, generate_pa
from repro.generators.registry import available_generators, create_generator

__all__ = [
    "ConfigurationModelGenerator",
    "DAPAGenerator",
    "GenerationResult",
    "HAPAGenerator",
    "NonlinearPreferentialAttachmentGenerator",
    "PreferentialAttachmentGenerator",
    "TopologyGenerator",
    "available_generators",
    "create_generator",
    "generate_cm",
    "generate_dapa",
    "generate_hapa",
    "generate_nonlinear_pa",
    "generate_pa",
    "power_law_degree_sequence",
    "power_law_probabilities",
]
