"""Nonlinear preferential attachment (extension; paper §III-C pointer).

The paper motivates the configuration model by noting that "modified PA
models such as nonlinear preferential attachment [Krapivsky et al.],
dynamic edge-rewiring, and fitness models have been proposed" to obtain
power-law networks with exponents different from 3.  This module implements
the first of those alternatives as an optional extension of the library:

attachment probability ``Π(k) ∝ k^α`` with a hard cutoff, where

* ``α = 1``   recovers the linear Barabási–Albert model (γ = 3);
* ``α < 1``   (sub-linear) produces a stretched-exponential degree
  distribution — hubs are suppressed even without a cutoff;
* ``α > 1``   (super-linear) produces gel-like condensation where one node
  collects a finite fraction of all links — an extreme version of the HAPA
  star that a hard cutoff tames.

The generator registers itself under the model name ``"nlpa"`` so it is
available to the CLI and the experiment harness, and the ablation benchmark
``benchmarks/test_ablation_nonlinear_pa.py`` compares the three regimes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import PAConfig
from repro.core.errors import ConfigurationError, GenerationError
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.generators.base import TopologyGenerator
from repro.kernels.dispatch import kernel_generation_ready

__all__ = ["NonlinearPreferentialAttachmentGenerator", "generate_nonlinear_pa"]


class NonlinearPreferentialAttachmentGenerator(TopologyGenerator):
    """Grow a network with attachment probability proportional to ``degree**alpha``.

    Parameters
    ----------
    number_of_nodes:
        Final network size ``N``.
    stubs:
        Links ``m`` each new node creates.
    exponent_alpha:
        Attachment-kernel exponent α (1.0 = linear PA).
    hard_cutoff:
        Maximum degree ``kc`` (``None`` for no cutoff).
    seed:
        Optional RNG seed.
    strict:
        When ``True``, a build whose result violates the model's minimum
        degree (any stub left unfilled, which otherwise only shows up as a
        metadata counter) raises :class:`~repro.core.errors.GenerationError`
        instead of silently returning a degenerate topology.

    Examples
    --------
    >>> gen = NonlinearPreferentialAttachmentGenerator(
    ...     200, stubs=2, exponent_alpha=0.5, hard_cutoff=15, seed=3)
    >>> graph = gen.generate_graph()
    >>> graph.number_of_nodes
    200
    >>> graph.max_degree() <= 15
    True
    """

    model_name = "nlpa"
    uses_global_information = "yes"

    def __init__(
        self,
        number_of_nodes: int,
        stubs: int = 1,
        exponent_alpha: float = 1.0,
        hard_cutoff: Optional[int] = None,
        seed: Optional[int] = None,
        strict: bool = False,
    ) -> None:
        self.config = PAConfig(
            number_of_nodes=number_of_nodes,
            stubs=stubs,
            hard_cutoff=hard_cutoff,
            seed=seed,
        )
        if exponent_alpha < 0.0:
            raise ConfigurationError("exponent_alpha must be non-negative")
        # Same carve-out as linear PA: the seed clique of m+1 nodes already
        # gives every seed node degree m, so a cutoff of exactly m would
        # freeze the network immediately — unless n == m + 1, the complete
        # graph itself, which has no growth phase for the cutoff to block.
        if (
            hard_cutoff is not None
            and hard_cutoff <= stubs
            and number_of_nodes > stubs + 1
        ):
            raise ConfigurationError(
                "hard_cutoff must exceed stubs for a growing network"
            )
        self.exponent_alpha = exponent_alpha
        self.strict = strict
        self.seed = seed

    def parameters(self) -> Dict[str, Any]:
        return {
            "model": self.model_name,
            "number_of_nodes": self.config.number_of_nodes,
            "stubs": self.config.stubs,
            "exponent_alpha": self.exponent_alpha,
            "hard_cutoff": self.config.hard_cutoff,
            "seed": self.seed,
        }

    def _build(self, rng: RandomSource) -> Tuple[Graph, Dict[str, Any]]:
        if kernel_generation_ready(rng):
            from repro.kernels.generators import nlpa_build

            graph, metadata = nlpa_build(self.config, self.exponent_alpha, rng)
        else:
            graph, metadata = self._build_reference(rng)
        minimum = self.config.stubs
        metadata["min_degree_violations"] = sum(
            1 for degree in graph.degree_sequence() if degree < minimum
        )
        if self.strict and (
            metadata["unfilled_stubs"] or metadata["min_degree_violations"]
        ):
            raise GenerationError(
                f"nlpa build left {metadata['unfilled_stubs']} stub(s) unfilled "
                f"({metadata['min_degree_violations']} node(s) below the "
                f"minimum degree m={minimum}); relax the cutoff or pass "
                "strict=False to accept the degenerate topology"
            )
        return graph, metadata

    def _build_reference(self, rng: RandomSource) -> Tuple[Graph, Dict[str, Any]]:
        config = self.config
        n, m, alpha = config.number_of_nodes, config.stubs, self.exponent_alpha
        cutoff = config.effective_cutoff()

        graph = Graph.complete(min(m + 1, n))
        unfilled_stubs = 0

        for new_node in range(graph.number_of_nodes, n):
            graph.add_node(new_node)
            # Weighted selection over all eligible existing nodes.  The kernel
            # k^alpha cannot use the stub-list trick (weights are not integer
            # degree counts), so an explicit weighted draw is used; eligible
            # lists are rebuilt per stub because degrees change.  Isolated
            # nodes stay eligible: under the alpha -> 0 uniform-attachment
            # limit their weight is k**0 == 1 like everyone else's, and for
            # alpha > 0 their zero weight simply never wins the draw —
            # excluding them (as this loop once did) silently biased the
            # uniform limit and made degree-0 nodes permanently unreachable.
            for _ in range(m):
                eligible: List[int] = []
                weights: List[float] = []
                neighbor_set = graph.neighbor_set(new_node)
                for node in range(new_node):
                    degree = graph.degree(node)
                    if node in neighbor_set or degree >= cutoff:
                        continue
                    eligible.append(node)
                    weights.append(float(degree) ** alpha)
                # An all-zero-weight eligible set (alpha > 0, every eligible
                # node isolated) cannot be drawn from; it counts as an
                # unfilled stub and consumes no draw, like the empty set.
                if not eligible or sum(weights) <= 0.0:
                    unfilled_stubs += 1
                    continue
                target = eligible[rng.weighted_index(weights)]
                graph.add_edge(new_node, target)

        metadata = {
            "exponent_alpha": alpha,
            "unfilled_stubs": unfilled_stubs,
        }
        return graph, metadata


def generate_nonlinear_pa(
    number_of_nodes: int,
    stubs: int = 1,
    exponent_alpha: float = 1.0,
    hard_cutoff: Optional[int] = None,
    seed: Optional[int] = None,
    strict: bool = False,
    rng: Optional[RandomSource] = None,
) -> Graph:
    """Generate a nonlinear-PA topology and return the graph.

    Examples
    --------
    >>> graph = generate_nonlinear_pa(100, stubs=1, exponent_alpha=1.5, seed=2)
    >>> graph.number_of_nodes
    100
    """
    generator = NonlinearPreferentialAttachmentGenerator(
        number_of_nodes=number_of_nodes,
        stubs=stubs,
        exponent_alpha=exponent_alpha,
        hard_cutoff=hard_cutoff,
        seed=seed,
        strict=strict,
    )
    return generator.generate_graph(rng)
