"""Discover-and-Attempt Preferential Attachment (DAPA, paper §IV-B, Algorithm 4).

DAPA is the paper's fully-local construction and the one that "imitates the
method for finding peers in Gnutella-like unstructured P2P networks".  It
maintains two graphs:

* a fixed **substrate network** ``G_S`` (the physical connectivity — the
  paper uses a 2-D geometric random network with N_S = 2×10⁴ nodes and mean
  degree 10, or alternatively a regular mesh), and
* the **overlay network** ``G_O`` being built on top of it.

At every step a random substrate node that is not yet a peer sends a
discovery query limited to ``τ_sub`` substrate hops (its *horizon*), collects
the overlay peers it can see whose overlay degree is still below the hard
cutoff, and then connects to ``m`` of them chosen by preferential attachment
restricted to that horizon.  If it sees fewer than ``m`` peers it connects to
all of them.  A node that finds at least one peer becomes a peer itself.
The process repeats until the overlay has ``N_O`` peers.

Small ``τ_sub`` makes nodes short-sighted and the overlay degree distribution
exponential; large ``τ_sub`` recovers a power law (paper Fig. 4) — DAPA
interpolates between the two purely through the locality parameter, without
any node ever holding global topology information.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.config import DAPAConfig, GRNConfig, MeshConfig
from repro.core.errors import ConfigurationError, GenerationError
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.generators.base import TopologyGenerator
from repro.kernels.dispatch import kernel_generation_ready
from repro.substrate.grn import GeometricRandomNetwork
from repro.substrate.mesh import MeshNetwork

__all__ = ["DAPAGenerator", "generate_dapa"]

#: Acceptance-test retries per stub before falling back to a weighted draw
#: over the horizon.  The paper's repeat-until loop has no bound; this keeps
#: construction from stalling on tiny or saturated horizons.
_MAX_ATTEMPTS_PER_STUB = 50_000


class DAPAGenerator(TopologyGenerator):
    """Build a P2P overlay on a substrate using horizon-limited preferential attachment.

    Parameters
    ----------
    overlay_size:
        Target number of overlay peers ``N_O``.
    stubs:
        Stubs ``m`` each joining peer tries to fill.
    hard_cutoff:
        Hard cutoff ``kc`` on overlay degree (``None`` for unbounded).
    local_ttl:
        Horizon ``τ_sub`` in substrate hops.
    initial_peers:
        Number of substrate nodes seeded into the overlay (the paper uses 2;
        they are connected in a clique so the overlay starts connected).
    substrate_graph:
        An explicit substrate :class:`~repro.core.graph.Graph` to build on.
        Mutually exclusive with ``substrate_config``.
    substrate_config:
        A :class:`~repro.core.config.GRNConfig` or
        :class:`~repro.core.config.MeshConfig` describing the substrate to
        build.  When both are omitted the paper's default substrate (2-D GRN,
        ``N_S = 2 · N_O``, mean degree 10) is used.
    seed:
        Optional RNG seed.

    Examples
    --------
    >>> gen = DAPAGenerator(overlay_size=100, stubs=2, hard_cutoff=10,
    ...                     local_ttl=4, seed=5)
    >>> result = gen.generate()
    >>> result.graph.number_of_nodes <= 100
    True
    >>> result.graph.max_degree() <= 10
    True
    """

    model_name = "dapa"
    uses_global_information = "no"

    def __init__(
        self,
        overlay_size: int,
        stubs: int = 1,
        hard_cutoff: Optional[int] = None,
        local_ttl: int = 2,
        initial_peers: int = 2,
        substrate_graph: Optional[Graph] = None,
        substrate_config: "GRNConfig | MeshConfig | None" = None,
        seed: Optional[int] = None,
    ) -> None:
        if substrate_graph is not None and substrate_config is not None:
            raise ConfigurationError(
                "provide either substrate_graph or substrate_config, not both"
            )
        self.config = DAPAConfig(
            overlay_size=overlay_size,
            stubs=stubs,
            hard_cutoff=hard_cutoff,
            local_ttl=local_ttl,
            initial_peers=initial_peers,
            seed=seed,
            substrate=substrate_config,
        )
        if substrate_graph is not None and substrate_graph.number_of_nodes < overlay_size:
            raise ConfigurationError(
                "substrate_graph must have at least overlay_size nodes"
            )
        self.substrate_graph = substrate_graph
        self.seed = seed

    # ------------------------------------------------------------------ #
    # TopologyGenerator interface
    # ------------------------------------------------------------------ #
    def parameters(self) -> Dict[str, Any]:
        substrate_description: Any
        if self.substrate_graph is not None:
            substrate_description = "explicit"
        elif self.config.substrate is not None:
            substrate_description = type(self.config.substrate).__name__
        else:
            substrate_description = "default_grn"
        return {
            "model": self.model_name,
            "overlay_size": self.config.overlay_size,
            "stubs": self.config.stubs,
            "hard_cutoff": self.config.hard_cutoff,
            "local_ttl": self.config.local_ttl,
            "initial_peers": self.config.initial_peers,
            "substrate": substrate_description,
            "seed": self.seed,
        }

    def _build(self, rng: RandomSource) -> Tuple[Graph, Dict[str, Any]]:
        substrate = self._resolve_substrate(rng)
        if substrate.number_of_nodes < self.config.overlay_size:
            raise GenerationError(
                "substrate has fewer nodes than the requested overlay size"
            )
        if kernel_generation_ready(rng):
            from repro.kernels.generators import dapa_build

            return dapa_build(self.config, substrate, rng)
        return self._grow_overlay(substrate, rng)

    def _grow_overlay(
        self, substrate: Graph, rng: RandomSource
    ) -> Tuple[Graph, Dict[str, Any]]:
        """The reference growth loop (dispatch-free: the parity self-check
        replays it against the kernel tier)."""
        config = self.config
        cutoff = config.effective_cutoff()
        m = config.stubs
        target_peers = config.overlay_size
        substrate_nodes = substrate.nodes()

        # Overlay graph shares node ids with the substrate; only peers are
        # added to it.  `peers` tracks membership for O(1) lookups.
        overlay = Graph()
        peers: Set[int] = set()

        # Seed the overlay with a small clique of random substrate nodes.
        seeds = rng.sample(substrate_nodes, config.initial_peers)
        for node in seeds:
            overlay.add_node(node)
            peers.add(node)
        for index, u in enumerate(seeds):
            for v in seeds[index + 1 :]:
                overlay.add_edge(u, v)

        attempts_without_progress = 0
        max_attempts_without_progress = 20 * len(substrate_nodes)
        empty_horizons = 0
        short_horizons = 0
        discovery_messages = 0

        while len(peers) < target_peers:
            if attempts_without_progress > max_attempts_without_progress:
                # No remaining substrate node can see a peer within tau_sub
                # hops (e.g. a disconnected substrate component with no seed).
                break
            node = substrate_nodes[rng.randint(0, len(substrate_nodes) - 1)]
            if node in peers:
                attempts_without_progress += 1
                continue

            horizon = self._discover_horizon(substrate, node, peers, overlay, cutoff)
            discovery_messages += 1
            if not horizon:
                empty_horizons += 1
                attempts_without_progress += 1
                continue

            overlay.add_node(node)
            if len(horizon) <= m:
                short_horizons += 1
                for peer in horizon:
                    overlay.add_edge(node, peer)
            else:
                self._attach_preferentially(overlay, node, horizon, m, cutoff, rng)
            peers.add(node)
            attempts_without_progress = 0

        metadata = {
            "substrate_nodes": substrate.number_of_nodes,
            "substrate_edges": substrate.number_of_edges,
            "substrate_mean_degree": substrate.mean_degree(),
            "overlay_peers": len(peers),
            "target_overlay_size": target_peers,
            "reached_target": len(peers) >= target_peers,
            "empty_horizons": empty_horizons,
            "short_horizons": short_horizons,
            "discovery_messages": discovery_messages,
            "substrate_graph": substrate,
        }
        return overlay, metadata

    # ------------------------------------------------------------------ #
    # Substrate handling
    # ------------------------------------------------------------------ #
    def _resolve_substrate(self, rng: RandomSource) -> Graph:
        if self.substrate_graph is not None:
            return self.substrate_graph
        config = self.config.substrate
        if config is None:
            config = self.config.default_substrate()
        if isinstance(config, GRNConfig):
            builder = GeometricRandomNetwork(
                number_of_nodes=config.number_of_nodes,
                radius=config.radius,
                target_mean_degree=config.target_mean_degree,
                dimensions=config.dimensions,
                torus=config.torus,
                seed=config.seed,
            )
            return builder.build(rng.spawn("substrate"))
        if isinstance(config, MeshConfig):
            builder = MeshNetwork(
                rows=config.rows, columns=config.columns, torus=config.torus
            )
            return builder.build(rng.spawn("substrate"))
        raise ConfigurationError(f"unsupported substrate configuration: {config!r}")

    # ------------------------------------------------------------------ #
    # Discovery and attachment
    # ------------------------------------------------------------------ #
    def _discover_horizon(
        self,
        substrate: Graph,
        node: int,
        peers: Set[int],
        overlay: Graph,
        cutoff: int,
    ) -> List[int]:
        """Breadth-first search bounded by ``τ_sub`` returning eligible peers.

        Eligible means: already an overlay peer, within ``τ_sub`` substrate
        hops of ``node``, and with overlay degree strictly below the hard
        cutoff (paper Algorithm 4, lines 6-10).

        Neighbors are visited in the substrate's *defined* order
        (``iter_neighbors``, edge-insertion order), not set order: the
        horizon's element order feeds the attachment draws, and set
        iteration — like PF's old set-order forwarding, fixed in the CSR
        backend PR — was the one draw consumer a compiled replay could not
        reproduce.  This deliberately versioned the DAPA stream; the
        cross-tier equivalence tests pin the new sequence.
        """
        max_depth = self.config.local_ttl
        visited = {node: 0}
        frontier = deque([node])
        horizon: List[int] = []
        remaining_peers = len(peers)
        while frontier and remaining_peers > 0:
            current = frontier.popleft()
            depth = visited[current]
            if depth >= max_depth:
                continue
            for neighbor in substrate.iter_neighbors(current):
                if neighbor in visited:
                    continue
                visited[neighbor] = depth + 1
                frontier.append(neighbor)
                if neighbor in peers:
                    remaining_peers -= 1
                    if overlay.degree(neighbor) < cutoff:
                        horizon.append(neighbor)
        return horizon

    @staticmethod
    def _attach_preferentially(
        overlay: Graph,
        node: int,
        horizon: List[int],
        stubs: int,
        cutoff: int,
        rng: RandomSource,
    ) -> None:
        """Connect ``node`` to ``stubs`` horizon peers with probability ∝ degree.

        Follows the accept/reject loop of Algorithm 4 (lines 18-29): a random
        horizon peer is accepted with probability ``k_peer / k_horizon``
        where ``k_horizon`` is the total degree of the peers in the horizon
        ("their degrees divided by the total degrees of the peers in its
        horizon").  Degenerate horizons (all degrees zero) fall back to a
        uniform choice.
        """
        chosen: Set[int] = set()
        attempts = 0
        horizon_total_degree = sum(overlay.degree(peer) for peer in horizon)
        while len(chosen) < stubs and len(chosen) < len(horizon):
            if attempts >= _MAX_ATTEMPTS_PER_STUB or horizon_total_degree == 0:
                # Weighted (or uniform) draw over the remaining eligible peers
                # to guarantee termination.
                remaining = [
                    peer
                    for peer in horizon
                    if peer not in chosen and overlay.degree(peer) < cutoff
                ]
                if not remaining:
                    break
                weights = [max(overlay.degree(peer), 1) for peer in remaining]
                peer = remaining[rng.weighted_index(weights)]
                overlay.add_edge(node, peer)
                chosen.add(peer)
                attempts = 0
                continue
            attempts += 1
            peer = horizon[rng.randint(0, len(horizon) - 1)]
            if peer in chosen or overlay.has_edge(node, peer):
                continue
            degree = overlay.degree(peer)
            if degree >= cutoff:
                continue
            if rng.random() < degree / horizon_total_degree:
                overlay.add_edge(node, peer)
                chosen.add(peer)


def generate_dapa(
    overlay_size: int,
    stubs: int = 1,
    hard_cutoff: Optional[int] = None,
    local_ttl: int = 2,
    initial_peers: int = 2,
    substrate_graph: Optional[Graph] = None,
    substrate_config: "GRNConfig | MeshConfig | None" = None,
    seed: Optional[int] = None,
    rng: Optional[RandomSource] = None,
) -> Graph:
    """Generate a DAPA overlay and return the overlay graph.

    Examples
    --------
    >>> graph = generate_dapa(80, stubs=1, hard_cutoff=10, local_ttl=3, seed=2)
    >>> graph.number_of_nodes <= 80
    True
    """
    generator = DAPAGenerator(
        overlay_size=overlay_size,
        stubs=stubs,
        hard_cutoff=hard_cutoff,
        local_ttl=local_ttl,
        initial_peers=initial_peers,
        substrate_graph=substrate_graph,
        substrate_config=substrate_config,
        seed=seed,
    )
    return generator.generate_graph(rng)
