"""repro — scale-free overlay topologies with hard cutoffs for unstructured P2P networks.

A production-quality reproduction of

    Guclu, H. and Yuksel, M., "Scale-Free Overlay Topologies with Hard
    Cutoffs for Unstructured Peer-to-Peer Networks", ICDCS 2007
    (arXiv:cs/0611128).

The library is organised in layers:

* :mod:`repro.core` — graph data structure, seedable randomness, validated
  configuration objects, error hierarchy;
* :mod:`repro.substrate` — underlay network models (geometric random network,
  mesh, Erdős–Rényi) used by DAPA and the P2P simulation;
* :mod:`repro.generators` — the four overlay-construction mechanisms the
  paper studies: PA, CM, HAPA, DAPA, all with hard-cutoff support;
* :mod:`repro.search` — flooding, normalized flooding, and random-walk search
  with hit/message accounting and the paper's NF↔RW normalization;
* :mod:`repro.analysis` — degree distributions, power-law fits, natural
  cutoffs, path lengths, components, robustness;
* :mod:`repro.simulation` — a discrete-event Gnutella-like P2P simulator
  (peers, neighbor tables with cutoffs, query protocol, churn);
* :mod:`repro.experiments` — the figure/table reproduction harness behind
  ``benchmarks/`` and the ``repro`` CLI;
* :mod:`repro.engine` — the parallel execution engine: serial/process-pool
  executors for realization tasks, a content-addressed on-disk result store,
  a suite scheduler, and progress reporting.

Quickstart
----------
>>> from repro import generate_pa, FloodingSearch, search_curve
>>> graph = generate_pa(1000, stubs=2, hard_cutoff=20, seed=7)
>>> curve = search_curve(graph, FloodingSearch(), ttl_values=[1, 2, 3, 4],
...                      queries=50, rng=7)
>>> curve.mean_hits[-1] > curve.mean_hits[0]
True
"""

from repro._version import __version__
from repro.analysis import (
    PowerLawFit,
    attack_robustness,
    average_shortest_path_length,
    ccdf,
    connected_components,
    degree_distribution,
    degree_histogram,
    diameter,
    empirical_cutoff,
    failure_robustness,
    fit_power_law,
    giant_component,
    giant_component_fraction,
    is_connected,
    log_binned_distribution,
    natural_cutoff_dorogovtsev,
    natural_cutoff_pa,
    path_length_statistics,
)
from repro.core import Graph, RandomSource
from repro.core.config import (
    CMConfig,
    DAPAConfig,
    GRNConfig,
    HAPAConfig,
    MeshConfig,
    PAConfig,
    SearchConfig,
)
from repro.generators import (
    ConfigurationModelGenerator,
    DAPAGenerator,
    GenerationResult,
    HAPAGenerator,
    PreferentialAttachmentGenerator,
    TopologyGenerator,
    available_generators,
    create_generator,
    generate_cm,
    generate_dapa,
    generate_hapa,
    generate_pa,
    power_law_degree_sequence,
)
from repro.search import (
    FloodingSearch,
    NormalizedFloodingSearch,
    QueryResult,
    RandomWalkSearch,
    SearchCurve,
    available_search_algorithms,
    average_search_curve,
    create_search_algorithm,
    flood,
    normalized_flood,
    normalized_walk_curve,
    random_walk,
    search_curve,
)
from repro.scenarios import ScenarioSpec, run_scenario
from repro.substrate import (
    ErdosRenyiNetwork,
    GeometricRandomNetwork,
    MeshNetwork,
    generate_erdos_renyi,
    generate_grn,
    generate_mesh,
)

__all__ = [
    "__version__",
    # core
    "Graph",
    "RandomSource",
    "PAConfig",
    "CMConfig",
    "HAPAConfig",
    "DAPAConfig",
    "GRNConfig",
    "MeshConfig",
    "SearchConfig",
    # generators
    "ConfigurationModelGenerator",
    "DAPAGenerator",
    "GenerationResult",
    "HAPAGenerator",
    "PreferentialAttachmentGenerator",
    "TopologyGenerator",
    "available_generators",
    "create_generator",
    "generate_cm",
    "generate_dapa",
    "generate_hapa",
    "generate_pa",
    "power_law_degree_sequence",
    # substrate
    "ErdosRenyiNetwork",
    "GeometricRandomNetwork",
    "MeshNetwork",
    "generate_erdos_renyi",
    "generate_grn",
    "generate_mesh",
    # search
    "FloodingSearch",
    "NormalizedFloodingSearch",
    "QueryResult",
    "RandomWalkSearch",
    "SearchCurve",
    "available_search_algorithms",
    "average_search_curve",
    "create_search_algorithm",
    "flood",
    "normalized_flood",
    "normalized_walk_curve",
    "random_walk",
    "search_curve",
    # analysis
    "PowerLawFit",
    "attack_robustness",
    "average_shortest_path_length",
    "ccdf",
    "connected_components",
    "degree_distribution",
    "degree_histogram",
    "diameter",
    "empirical_cutoff",
    "failure_robustness",
    "fit_power_law",
    "giant_component",
    "giant_component_fraction",
    "is_connected",
    "log_binned_distribution",
    "natural_cutoff_dorogovtsev",
    "natural_cutoff_pa",
    "path_length_statistics",
    # scenarios
    "ScenarioSpec",
    "run_scenario",
]
