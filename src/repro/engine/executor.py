"""Pluggable executors: run realization tasks serially or across processes.

Two implementations share one contract — results come back **in submission
order**, and every task carries its own explicit seed — so swapping
:class:`SerialExecutor` for :class:`ParallelExecutor` changes wall-clock
time but never changes a single output number:

* :class:`SerialExecutor` runs tasks in the calling process (the default
  everywhere, and what existing callers get when they pass nothing);
* :class:`ParallelExecutor` fans tasks out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Tasks that cannot be
  pickled (e.g. closures handed to
  :func:`~repro.experiments.runner.run_realizations`) are detected up front
  and the batch silently degrades to in-process execution rather than
  crashing a worker.  Frozen :class:`~repro.core.csr.CSRGraph` arguments
  are rewritten to shared-memory twins before submission (see
  :mod:`repro.core.shm`), so shipping one topology to N workers costs a
  constant-size handle per task instead of re-pickling the arrays.

The *active executor* is an ambient context: experiment helpers deep inside
the figure modules fetch it with :func:`active_executor` so the CLI can turn
``--jobs 8`` into parallelism without threading an argument through every
``run(scale=..., seed=...)`` signature.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import warnings
from concurrent.futures import Future, ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Sequence

from repro.core.ambient import AmbientStack
from repro.core.errors import ExperimentError
from repro.engine.tasks import Task
from repro.telemetry.collector import (
    TelemetryCollector,
    active_telemetry,
    use_telemetry,
)
from repro.telemetry.logs import get_logger
from repro.telemetry.trace import current_trace_id, use_trace_id

_log = get_logger("repro.engine")

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "active_executor",
    "active_progress",
    "use_executor",
    "executor_from_jobs",
]


def _call_task(
    task: Task, trace_id: "Optional[str]" = None, index: "Optional[int]" = None
) -> "tuple[Any, float]":
    """Run one task and measure it (module-level so workers can import it).

    ``trace_id``/``index`` are accepted (and ignored) so the traced and
    untraced entry points are submission-compatible.
    """
    started = time.perf_counter()
    value = task.run()
    return value, time.perf_counter() - started


def _call_task_traced(
    task: Task, trace_id: "Optional[str]" = None, index: "Optional[int]" = None
) -> "tuple[Any, float, dict]":
    """Run one task under a fresh collector; ship its trace with the result.

    The collector is created *inside* the call so the same function works in
    the parent process and in pool workers — the worker's ambient stack is
    empty, and the exported payload (plain dicts) is what crosses the pickle
    boundary, never the collector itself.  The request trace id travels by
    value for the same reason: ambient context does not survive pickling, so
    the submitting thread snapshots it and the worker re-installs it here.
    The whole task runs inside a synthetic ``task`` root span (tree-only, so
    aggregate reports don't double-count the wall time its children already
    account for), which is the node :meth:`TelemetryCollector.merge_task`
    re-parents under the submitting thread's open span.
    """
    collector = TelemetryCollector()
    started = time.perf_counter()
    with use_telemetry(collector), use_trace_id(trace_id):
        with collector.span(
            "task", attrs={"key": task.key, "index": index}, aggregate=False
        ):
            value = task.run()
    return value, time.perf_counter() - started, collector.export()


class Executor:
    """Contract shared by all executors: ordered, seed-deterministic runs."""

    #: Number of workers the executor uses (1 for serial execution).
    jobs: int = 1

    def run(self, tasks: Sequence[Task], progress: Any = None) -> List[Any]:
        """Run ``tasks`` and return their results in submission order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _run_serially(self, tasks: Sequence[Task], progress: Any = None) -> List[Any]:
        telemetry = active_telemetry()
        trace_id = current_trace_id() if telemetry.enabled else None
        results: List[Any] = []
        for index, task in enumerate(tasks):
            if telemetry.enabled:
                value, seconds, payload = _call_task_traced(task, trace_id, index)
                telemetry.merge_task(task.key, seconds, payload)
            else:
                value, seconds = _call_task(task)
            if progress is not None:
                progress.task_finished(task.key, seconds)
            results.append(value)
        return results


class SerialExecutor(Executor):
    """Run every task in the calling process, one after another."""

    def run(self, tasks: Sequence[Task], progress: Any = None) -> List[Any]:
        return self._run_serially(tasks, progress)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


class ParallelExecutor(Executor):
    """Fan tasks out over a process pool, preserving submission order.

    Parameters
    ----------
    jobs:
        Worker-process count (default: the machine's CPU count).  The pool is
        created lazily on the first parallel batch and reused across batches
        and experiments, so one suite run shares one pool.
    share_graphs:
        When true (the default), frozen :class:`~repro.core.csr.CSRGraph`
        task arguments are placed in shared-memory segments once and
        shipped to workers as constant-size handles; identical results,
        O(E) less transfer per task.  Environments without usable shared
        memory degrade to plain pickling automatically.
    """

    def __init__(self, jobs: Optional[int] = None, share_graphs: bool = True) -> None:
        resolved = jobs if jobs is not None else (os.cpu_count() or 1)
        if resolved < 1:
            raise ExperimentError("ParallelExecutor needs at least one worker")
        self.jobs = resolved
        self.share_graphs = share_graphs
        self._pool: Optional[ProcessPoolExecutor] = None
        self._registry: "Optional[Any]" = None  # SharedGraphRegistry, lazy
        # The scenario compiler may submit batches from several threads
        # sharing this executor; lazy pool creation must happen only once.
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        with self._pool_lock:
            if self._pool is None:
                try:
                    self._pool = ProcessPoolExecutor(max_workers=self.jobs)
                except (OSError, PermissionError) as error:  # pragma: no cover
                    warnings.warn(
                        f"cannot start worker processes ({error}); running serially",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    _log.warning(
                        "executor.pool-unavailable", error=str(error), jobs=self.jobs
                    )
            return self._pool

    def _graph_registry(self) -> "Optional[Any]":
        """The lazily created shared-graph registry, or ``None`` if disabled."""
        if not self.share_graphs:
            return None
        from repro.core.shm import SharedGraphRegistry, shm_available

        if not shm_available():
            return None
        with self._pool_lock:
            if self._registry is None:
                self._registry = SharedGraphRegistry()
            return self._registry

    def run(self, tasks: Sequence[Task], progress: Any = None) -> List[Any]:
        tasks = list(tasks)
        if self.jobs <= 1 or len(tasks) <= 1:
            return self._run_serially(tasks, progress)
        registry = self._graph_registry()
        if registry is not None:
            # Rewrite graph arguments *before* the picklability probe so a
            # big frozen topology is never serialised just to be probed.
            from repro.core.shm import share_graph_arguments

            tasks = [
                task.map_arguments(
                    lambda value: share_graph_arguments(value, registry)
                )
                for task in tasks
            ]
        # Probe one representative task (a batch shares its fn/arg shape);
        # stragglers that still fail to pickle degrade individually below.
        if not tasks[0].is_picklable():
            warnings.warn(
                "task batch contains non-picklable callables; "
                "falling back to in-process execution",
                RuntimeWarning,
                stacklevel=2,
            )
            _log.warning("executor.non-picklable-batch", tasks=len(tasks))
            return self._run_serially(tasks, progress)
        pool = self._ensure_pool()
        if pool is None:  # pragma: no cover - pool creation refused by the OS
            return self._run_serially(tasks, progress)
        telemetry = active_telemetry()
        call = _call_task_traced if telemetry.enabled else _call_task
        trace_id = current_trace_id() if telemetry.enabled else None
        futures: List[Future] = [
            pool.submit(call, task, trace_id, index)
            for index, task in enumerate(tasks)
        ]
        results: List[Any] = []
        # Merging in submission order (not completion order) makes a traced
        # parallel run's exported payload identical to the serial one.
        for index, (task, future) in enumerate(zip(tasks, futures)):
            try:
                outcome = future.result()
            except (pickle.PicklingError, TypeError, AttributeError):
                # This task could not cross the process boundary (or failed
                # with the same error class); rerun it locally so a genuine
                # task error still surfaces from an in-process call.
                outcome = call(task, trace_id, index)
            if telemetry.enabled:
                value, seconds, payload = outcome
                telemetry.merge_task(task.key, seconds, payload)
            else:
                value, seconds = outcome
            if progress is not None:
                progress.task_finished(task.key, seconds)
            results.append(value)
        return results

    def close(self) -> None:
        # Workers drain before the registry unlinks their mapped segments.
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._registry is not None:
            self._registry.close()
            self._registry = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelExecutor(jobs={self.jobs})"


# --------------------------------------------------------------------------- #
# Ambient executor / progress context
# --------------------------------------------------------------------------- #
_DEFAULT_EXECUTOR = SerialExecutor()
_ACTIVE_STACK: AmbientStack[Executor] = AmbientStack()
_PROGRESS_STACK: AmbientStack[Any] = AmbientStack()


def active_executor() -> Executor:
    """Return the executor installed by the innermost :func:`use_executor`.

    Defaults to a shared :class:`SerialExecutor`, so library code can always
    route realization work through ``active_executor().run(...)`` without
    caring whether a CLI/worker-pool context is present.  The stack is
    thread-local: a worker thread must install its own context (the scenario
    compiler's plan threads re-install the values captured from their
    parent).
    """
    return _ACTIVE_STACK.top(_DEFAULT_EXECUTOR)


def active_progress() -> Any:
    """Return the ambient progress reporter, or ``None`` when none is set.

    Experiment helpers pass this to :meth:`Executor.run` so per-task timing
    events reach whatever reporter the CLI or suite installed.
    """
    return _PROGRESS_STACK.top(None)


@contextmanager
def use_executor(
    executor: Optional[Executor], progress: Any = None
) -> Iterator[Executor]:
    """Install ``executor`` (and optionally ``progress``) for the ``with`` body.

    ``None`` for either argument leaves the corresponding ambient value in
    place, which lets call sites write ``with use_executor(maybe_executor,
    maybe_progress):`` unconditionally.
    """
    if executor is not None:
        _ACTIVE_STACK.push(executor)
    if progress is not None:
        _PROGRESS_STACK.push(progress)
    try:
        yield active_executor()
    finally:
        if progress is not None:
            _PROGRESS_STACK.pop()
        if executor is not None:
            _ACTIVE_STACK.pop()


def executor_from_jobs(jobs: Optional[int]) -> Executor:
    """Map a ``--jobs``/``REPRO_JOBS`` count onto the right executor."""
    if jobs is not None and jobs > 1:
        return ParallelExecutor(jobs)
    return SerialExecutor()
