"""Progress and timing reports for engine runs.

The executors call :meth:`ProgressReporter.task_finished` once per completed
realization task and the registry/suite layer brackets every experiment with
:meth:`experiment_started` / :meth:`experiment_finished`.  The reporter
aggregates task counts and wall-clock timings per experiment and publishes
every event twice:

* as a rendered text line to an optional ``stream`` (the CLI points it at
  stderr so progress never pollutes machine-readable stdout);
* as a structured :class:`ProgressEvent` to an optional ``sink`` callable —
  the serve layer's NDJSON stream consumes :meth:`ProgressEvent.as_dict`
  directly instead of scraping the text lines.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, TextIO

from repro.telemetry.collector import telemetry_clock
from repro.telemetry.trace import current_trace_id

__all__ = ["ExperimentTiming", "ProgressEvent", "ProgressReporter"]


@dataclass
class ExperimentTiming:
    """Aggregated telemetry for one experiment run."""

    experiment_id: str
    seconds: float = 0.0
    tasks: int = 0
    task_seconds: float = 0.0
    from_cache: bool = False


@dataclass(frozen=True)
class ProgressEvent:
    """One serializable progress event (what a text line used to be).

    ``kind`` is one of ``"experiment-started"``, ``"experiment-finished"``,
    or ``"task-finished"``; ``key`` is the experiment id for the first two
    and the task key for the last.  :meth:`render` produces exactly the
    text line the reporter has always printed, so stream output is
    unchanged; :meth:`as_dict` is the JSON form streamed by
    ``GET /scenarios/<hash>/events``.
    """

    kind: str
    key: str
    seconds: float = 0.0
    elapsed: float = 0.0
    rate: float = 0.0
    tasks: int = 0
    from_cache: bool = False
    trace_id: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (stable keys across all event kinds)."""
        return {
            "event": self.kind,
            "key": self.key,
            "seconds": self.seconds,
            "elapsed": self.elapsed,
            "rate": self.rate,
            "tasks": self.tasks,
            "from_cache": self.from_cache,
            "trace_id": self.trace_id,
        }

    def render(self) -> str:
        """The human-readable line this event prints to a stream."""
        if self.kind == "experiment-started":
            return f"[{self.key}] started"
        if self.kind == "experiment-finished":
            origin = "cache hit" if self.from_cache else f"{self.tasks} tasks"
            return f"[{self.key}] finished in {self.seconds:.2f}s ({origin})"
        return (
            f"  task {self.key or '<anonymous>'} done in {self.seconds:.2f}s "
            f"[elapsed {self.elapsed:.1f}s, {self.rate:.2f} tasks/s]"
        )


class ProgressReporter:
    """Collect per-experiment task counts and timings; optionally stream them.

    Parameters
    ----------
    stream:
        File object rendered progress lines are written to (``None`` keeps
        the reporter silent; aggregation still happens).
    sink:
        Optional callable receiving every :class:`ProgressEvent` as it
        happens — the structured twin of ``stream``.  The serve layer
        passes the per-job event log's append here.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        sink: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> None:
        self.stream = stream
        self.sink = sink
        self.timings: List[ExperimentTiming] = []
        self._open: Dict[str, ExperimentTiming] = {}
        self._started_at: Dict[str, float] = {}
        # Reporter-lifetime clock for the throughput rate in task lines.
        self._born_at = telemetry_clock()
        self._tasks_seen = 0
        # Plan threads sharing one scenario report task events concurrently.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Event sinks (called by executors / registry / suite scheduler)
    # ------------------------------------------------------------------ #
    def experiment_started(self, experiment_id: str) -> None:
        timing = ExperimentTiming(experiment_id=experiment_id)
        self._open[experiment_id] = timing
        self._started_at[experiment_id] = time.perf_counter()
        self._emit(ProgressEvent(kind="experiment-started", key=experiment_id))

    def experiment_finished(self, experiment_id: str, from_cache: bool = False) -> None:
        timing = self._open.pop(experiment_id, None)
        if timing is None:  # finished without a matching start; still record it
            timing = ExperimentTiming(experiment_id=experiment_id)
        started = self._started_at.pop(experiment_id, None)
        timing.seconds = time.perf_counter() - started if started is not None else 0.0
        timing.from_cache = from_cache
        self.timings.append(timing)
        self._emit(ProgressEvent(
            kind="experiment-finished",
            key=experiment_id,
            seconds=timing.seconds,
            tasks=timing.tasks,
            from_cache=from_cache,
        ))

    def task_finished(self, key: str, seconds: float) -> None:
        # Attribute the task to the innermost open experiment, if any.
        with self._lock:
            if self._open:
                timing = next(reversed(self._open.values()))
                timing.tasks += 1
                timing.task_seconds += seconds
            self._tasks_seen += 1
            tasks_seen = self._tasks_seen
        elapsed = telemetry_clock() - self._born_at
        # With --jobs the elapsed wall time can be far below the sum of task
        # seconds; the rate is realizations per wall second, which is the
        # throughput number a long parallel suite run is watched for.
        rate = tasks_seen / elapsed if elapsed > 0 else 0.0
        self._emit(ProgressEvent(
            kind="task-finished",
            key=key,
            seconds=seconds,
            elapsed=elapsed,
            rate=rate,
        ))

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def total_tasks(self) -> int:
        return sum(timing.tasks for timing in self.timings) + sum(
            timing.tasks for timing in self._open.values()
        )

    @property
    def total_seconds(self) -> float:
        return sum(timing.seconds for timing in self.timings)

    # ------------------------------------------------------------------ #
    def _emit(self, event: ProgressEvent) -> None:
        if event.trace_id is None:
            # Stamp the ambient request trace id (repro serve) so every
            # NDJSON line correlates with the response and the access log.
            trace_id = current_trace_id()
            if trace_id is not None:
                event = replace(event, trace_id=trace_id)
        if self.sink is not None:
            self.sink(event)
        if self.stream is not None:
            print(event.render(), file=self.stream, flush=True)
