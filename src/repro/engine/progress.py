"""Progress and timing reports for engine runs.

The executors call :meth:`ProgressReporter.task_finished` once per completed
realization task and the registry/suite layer brackets every experiment with
:meth:`experiment_started` / :meth:`experiment_finished`.  The reporter
aggregates task counts and wall-clock timings per experiment and can stream
one line per event to a file object (the CLI points it at stderr so progress
never pollutes machine-readable stdout).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, TextIO

from repro.telemetry.collector import telemetry_clock

__all__ = ["ExperimentTiming", "ProgressReporter"]


@dataclass
class ExperimentTiming:
    """Aggregated telemetry for one experiment run."""

    experiment_id: str
    seconds: float = 0.0
    tasks: int = 0
    task_seconds: float = 0.0
    from_cache: bool = False


class ProgressReporter:
    """Collect per-experiment task counts and timings; optionally stream them.

    Parameters
    ----------
    stream:
        File object progress lines are written to (``None`` keeps the
        reporter silent; aggregation still happens).
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream
        self.timings: List[ExperimentTiming] = []
        self._open: Dict[str, ExperimentTiming] = {}
        self._started_at: Dict[str, float] = {}
        # Reporter-lifetime clock for the throughput rate in task lines.
        self._born_at = telemetry_clock()
        self._tasks_seen = 0
        # Plan threads sharing one scenario report task events concurrently.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Event sinks (called by executors / registry / suite scheduler)
    # ------------------------------------------------------------------ #
    def experiment_started(self, experiment_id: str) -> None:
        timing = ExperimentTiming(experiment_id=experiment_id)
        self._open[experiment_id] = timing
        self._started_at[experiment_id] = time.perf_counter()
        self._emit(f"[{experiment_id}] started")

    def experiment_finished(self, experiment_id: str, from_cache: bool = False) -> None:
        timing = self._open.pop(experiment_id, None)
        if timing is None:  # finished without a matching start; still record it
            timing = ExperimentTiming(experiment_id=experiment_id)
        started = self._started_at.pop(experiment_id, None)
        timing.seconds = time.perf_counter() - started if started is not None else 0.0
        timing.from_cache = from_cache
        self.timings.append(timing)
        origin = "cache hit" if from_cache else f"{timing.tasks} tasks"
        self._emit(f"[{experiment_id}] finished in {timing.seconds:.2f}s ({origin})")

    def task_finished(self, key: str, seconds: float) -> None:
        # Attribute the task to the innermost open experiment, if any.
        with self._lock:
            if self._open:
                timing = next(reversed(self._open.values()))
                timing.tasks += 1
                timing.task_seconds += seconds
            self._tasks_seen += 1
            tasks_seen = self._tasks_seen
        elapsed = telemetry_clock() - self._born_at
        # With --jobs the elapsed wall time can be far below the sum of task
        # seconds; the rate is realizations per wall second, which is the
        # throughput number a long parallel suite run is watched for.
        rate = tasks_seen / elapsed if elapsed > 0 else 0.0
        self._emit(
            f"  task {key or '<anonymous>'} done in {seconds:.2f}s "
            f"[elapsed {elapsed:.1f}s, {rate:.2f} tasks/s]"
        )

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def total_tasks(self) -> int:
        return sum(timing.tasks for timing in self.timings) + sum(
            timing.tasks for timing in self._open.values()
        )

    @property
    def total_seconds(self) -> float:
        return sum(timing.seconds for timing in self.timings)

    # ------------------------------------------------------------------ #
    def _emit(self, line: str) -> None:
        if self.stream is not None:
            print(line, file=self.stream, flush=True)
