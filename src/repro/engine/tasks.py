"""Task model for the experiment engine.

A :class:`Task` is the unit of work the executors understand: a picklable
callable plus its arguments.  For parallel execution the callable must be a
module-level function and the arguments must be picklable values (frozen
dataclasses such as :class:`~repro.experiments.runner.ExperimentScale` and
plain numbers/strings all qualify); the executors transparently fall back to
in-process execution when a task cannot cross a process boundary.

The module also provides the *suite scheduler*: :func:`run_suite` runs many
registered experiments through one shared executor (and optionally one shared
result store), so a full paper reproduction fans all of its realization tasks
into a single worker pool and resumes from cached results on re-runs.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import ExperimentError

__all__ = ["Task", "SuiteEntry", "SuiteReport", "run_suite"]


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work.

    Attributes
    ----------
    fn:
        The callable to run.  Must be a module-level function for the task to
        be distributable to worker processes.
    args:
        Positional arguments passed to ``fn``.
    kwargs:
        Keyword arguments passed to ``fn``.
    key:
        Human-readable label used by progress reporting (e.g.
        ``"fig9/nf:pa m=1, kc=10[0]"``).
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    key: str = ""

    def run(self) -> Any:
        """Execute the task in the current process."""
        return self.fn(*self.args, **dict(self.kwargs))

    def map_arguments(self, transform: Callable[[Any], Any]) -> "Task":
        """Return a task whose arguments are rewritten by ``transform``.

        ``transform`` is applied to every positional and keyword argument;
        when it returns each value unchanged (by identity) the original
        task is returned, so no-op rewrites allocate nothing.  This is the
        hook the parallel executor uses to swap frozen graphs for their
        shared-memory twins just before submission.
        """
        args = tuple(transform(value) for value in self.args)
        kwargs = {name: transform(value) for name, value in self.kwargs.items()}
        unchanged = all(a is b for a, b in zip(args, self.args)) and all(
            kwargs[name] is self.kwargs[name] for name in kwargs
        )
        if unchanged:
            return self
        return Task(fn=self.fn, args=args, kwargs=kwargs, key=self.key)

    def is_picklable(self) -> bool:
        """True when the task can be shipped to a worker process."""
        try:
            pickle.dumps(self)
            return True
        except (pickle.PicklingError, TypeError, AttributeError):
            return False


# --------------------------------------------------------------------------- #
# Suite scheduling
# --------------------------------------------------------------------------- #
@dataclass
class SuiteEntry:
    """Outcome of one experiment within a suite run."""

    experiment_id: str
    result: Any  # ExperimentResult; typed loosely to avoid an import cycle
    seconds: float
    from_cache: bool


@dataclass
class SuiteReport:
    """Everything a suite run produced, in execution order."""

    entries: List[SuiteEntry] = field(default_factory=list)

    def results(self) -> Dict[str, Any]:
        """Return ``{experiment_id: ExperimentResult}`` for all entries."""
        return {entry.experiment_id: entry.result for entry in self.entries}

    @property
    def total_seconds(self) -> float:
        return sum(entry.seconds for entry in self.entries)

    @property
    def cache_hits(self) -> int:
        return sum(1 for entry in self.entries if entry.from_cache)

    def as_dict(self, include_results: bool = True) -> Dict[str, Any]:
        """JSON-friendly form (the CLI's ``repro suite --json`` payload).

        Each entry carries the experiment id, wall-clock seconds, the
        cache-hit flag, and (unless ``include_results`` is false) the full
        ``ExperimentResult`` dict with per-series metadata.
        """
        entries: List[Dict[str, Any]] = []
        for entry in self.entries:
            record: Dict[str, Any] = {
                "experiment_id": entry.experiment_id,
                "seconds": entry.seconds,
                "from_cache": entry.from_cache,
            }
            if include_results:
                record["result"] = entry.result.as_dict()
            entries.append(record)
        return {
            "entries": entries,
            "total_seconds": self.total_seconds,
            "cache_hits": self.cache_hits,
        }

    def summary(self) -> str:
        """Render a compact per-experiment timing table."""
        lines = []
        for entry in self.entries:
            origin = "cache" if entry.from_cache else "ran"
            lines.append(
                f"{entry.experiment_id:<22s} {entry.seconds:8.2f}s  {origin}"
            )
        lines.append(
            f"{'total':<22s} {self.total_seconds:8.2f}s  "
            f"({self.cache_hits}/{len(self.entries)} from cache)"
        )
        return "\n".join(lines)


def run_suite(
    experiment_ids: Optional[Sequence[str]] = None,
    scale: Any = None,
    seed: Optional[int] = None,
    executor: Any = None,
    store: Any = None,
    progress: Any = None,
    on_result: Optional[Callable[[SuiteEntry], None]] = None,
    backend: Optional[str] = None,
    kernels: Optional[str] = None,
) -> SuiteReport:
    """Run many experiments through one shared executor and result store.

    Experiments execute one after another in the calling process while each
    experiment's realization tasks fan out across the shared ``executor``;
    with a :class:`~repro.engine.store.ResultStore` attached, previously
    completed experiments are served from cache, which makes an interrupted
    suite resumable.

    Parameters
    ----------
    experiment_ids:
        Experiments to run, in order (default: every registered experiment).
    scale, seed:
        Forwarded to :func:`repro.experiments.registry.run_experiment`.
    executor:
        Shared :class:`~repro.engine.executor.Executor` (default: serial).
    store:
        Optional shared :class:`~repro.engine.store.ResultStore`.
    progress:
        Optional :class:`~repro.engine.progress.ProgressReporter`.
    on_result:
        Optional callback invoked with each :class:`SuiteEntry` as soon as
        its experiment finishes — the hook for incremental persistence, so
        an interrupted suite keeps everything completed so far.
    backend:
        Optional graph backend (``"adj"`` or ``"csr"``) applied to every
        experiment in the suite; results are identical across backends.
    kernels:
        Optional kernel mode (``"auto"``, ``"python"``, or ``"jit"``)
        applied to every experiment; results are identical across modes.
    """
    # Imported lazily: the registry imports the runner layer, which must be
    # importable without the engine package being fully initialised.
    from repro.experiments.registry import available_experiments, run_experiment_cached

    ids = list(experiment_ids) if experiment_ids else available_experiments()
    known = set(available_experiments())
    unknown = [exp_id for exp_id in ids if exp_id not in known]
    if unknown:
        raise ExperimentError(
            f"unknown experiment ids in suite: {', '.join(unknown)}"
        )

    report = SuiteReport()
    for experiment_id in ids:
        started = time.perf_counter()
        result, from_cache = run_experiment_cached(
            experiment_id,
            scale=scale,
            seed=seed,
            executor=executor,
            store=store,
            progress=progress,
            backend=backend,
            kernels=kernels,
        )
        entry = SuiteEntry(
            experiment_id=experiment_id,
            result=result,
            seconds=time.perf_counter() - started,
            from_cache=from_cache,
        )
        report.entries.append(entry)
        if on_result is not None:
            on_result(entry)
    return report
