"""Content-addressed on-disk cache of experiment results.

Every :class:`~repro.experiments.results.ExperimentResult` is keyed by a
SHA-256 hash of the inputs that determine its numbers — the experiment id,
the full scale preset (sizes, realization count, TTL grids, *and* base
seed), any extra code-relevant parameters, and a store schema version.  A
re-run with identical inputs is served from disk; changing any input (a
different seed, a bigger scale, a bumped schema version) produces a new key
and a fresh computation, so stale hits are impossible by construction.

Layout under the cache root::

    <root>/<key[:2]>/<key>/result.json   # ExperimentResult.as_dict()
    <root>/<key[:2]>/<key>/result.csv    # long-format label,x,y rows
    <root>/<key[:2]>/<key>/meta.json     # the hashed inputs + timestamps

``result.json`` is byte-compatible with
:meth:`~repro.experiments.results.ExperimentResult.save_json`, so cached
artifacts can be consumed by the same tooling as directly-saved ones.
"""

from __future__ import annotations

import hashlib
import json
import os
import secrets
import shutil
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import ExperimentError
from repro.experiments.results import ExperimentResult
from repro.telemetry.collector import active_telemetry

__all__ = ["ResultStore"]

#: Bump when the result schema or the experiment semantics change in a way
#: that should invalidate previously cached artifacts.
STORE_SCHEMA_VERSION = 1


class ResultStore:
    """Persistent experiment-result cache under a root directory.

    Examples
    --------
    >>> import tempfile
    >>> from repro.experiments.results import ExperimentResult
    >>> from repro.experiments.runner import ExperimentScale
    >>> store = ResultStore(tempfile.mkdtemp())
    >>> scale = ExperimentScale.smoke()
    >>> store.get("fig9", scale) is None
    True
    >>> _ = store.put("fig9", scale, ExperimentResult("fig9", "t"))
    >>> store.get("fig9", scale).experiment_id
    'fig9'
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as error:
            raise ExperimentError(
                f"result-store path {self.root} is not a directory: {error}"
            ) from error
        self.hits = 0
        self.misses = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------ #
    # Keys and paths
    # ------------------------------------------------------------------ #
    @staticmethod
    def key_for(
        experiment_id: str,
        scale: Any,
        extra: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Return the content-address of one (experiment, scale) cell.

        ``scale`` is anything with an ``as_dict()`` method (normally an
        :class:`~repro.experiments.runner.ExperimentScale`); the dict — which
        includes the base seed — is hashed canonically, so logically equal
        scales map to the same key across processes and machines.
        """
        payload = {
            "store_schema": STORE_SCHEMA_VERSION,
            "experiment_id": experiment_id,
            "scale": scale.as_dict(),
            "extra": extra or {},
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def path_for(self, key: str) -> Path:
        """Directory holding the artifacts of ``key`` (two-level fan-out)."""
        if len(key) < 8:
            raise ExperimentError(f"malformed store key {key!r}")
        return self.root / key[:2] / key

    # ------------------------------------------------------------------ #
    # Read / write
    # ------------------------------------------------------------------ #
    def contains(
        self,
        experiment_id: str,
        scale: Any,
        extra: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """True when a completed result for these inputs is on disk."""
        return (self.path_for(self.key_for(experiment_id, scale, extra)) / "result.json").exists()

    def get(
        self,
        experiment_id: str,
        scale: Any,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Optional[ExperimentResult]:
        """Return the cached result, or ``None`` on a miss (counted)."""
        telemetry = active_telemetry()
        path = self.path_for(self.key_for(experiment_id, scale, extra)) / "result.json"
        with telemetry.span("store"):
            if not path.exists():
                self.misses += 1
                telemetry.count("store.misses")
                return None
            try:
                result = ExperimentResult.load_json(path)
            except (OSError, ValueError, KeyError):
                # A truncated write (e.g. an interrupted run) must not poison
                # future runs; treat it as a miss and recompute.
                self.misses += 1
                telemetry.count("store.misses")
                return None
            self.hits += 1
            telemetry.count("store.hits")
            size = path.stat().st_size
            self.bytes_read += size
            telemetry.count("store.bytes_read", size)
            return result

    def put(
        self,
        experiment_id: str,
        scale: Any,
        result: ExperimentResult,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Persist ``result`` (JSON + CSV + meta) and return its directory."""
        telemetry = active_telemetry()
        key = self.key_for(experiment_id, scale, extra)
        directory = self.path_for(key)
        with telemetry.span("store"):
            directory.mkdir(parents=True, exist_ok=True)
            meta = {
                "key": key,
                "store_schema": STORE_SCHEMA_VERSION,
                "experiment_id": experiment_id,
                "scale": scale.as_dict(),
                "extra": extra or {},
                "created_at": time.time(),
            }
            # Crash/concurrency safety: every artifact is written to a
            # uniquely named temp file in the same directory and renamed
            # into place with os.replace (atomic on POSIX).  A killed
            # writer leaves at worst a stray ``.tmp-*`` file, never a torn
            # artifact — and because ``result.json`` is replaced last, its
            # presence still marks the entry as complete.  Two racing
            # writers of one key both hold identical bytes (content
            # addressing), so whichever rename lands last is harmless.
            token = f".tmp-{os.getpid()}-{secrets.token_hex(4)}"
            tmp_csv = directory / f"result.csv{token}"
            tmp_meta = directory / f"meta.json{token}"
            tmp_json = directory / f"result.json{token}"
            try:
                result.save_csv(tmp_csv)
                tmp_meta.write_text(json.dumps(meta, indent=2, sort_keys=True))
                result.save_json(tmp_json)
                os.replace(tmp_csv, directory / "result.csv")
                os.replace(tmp_meta, directory / "meta.json")
                os.replace(tmp_json, directory / "result.json")
            finally:
                for leftover in (tmp_csv, tmp_meta, tmp_json):
                    leftover.unlink(missing_ok=True)
            written = sum(
                (directory / name).stat().st_size
                for name in ("result.json", "result.csv", "meta.json")
            )
            self.bytes_written += written
            telemetry.count("store.bytes_written", written)
        return directory

    def fetch_or_run(
        self,
        experiment_id: str,
        scale: Any,
        runner: Callable[[], ExperimentResult],
        extra: Optional[Dict[str, Any]] = None,
    ) -> Tuple[ExperimentResult, bool]:
        """Serve from cache, or run ``runner`` and cache its output.

        Returns ``(result, from_cache)``.
        """
        cached = self.get(experiment_id, scale, extra)
        if cached is not None:
            return cached, True
        result = runner()
        self.put(experiment_id, scale, result, extra)
        return result, False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def entries(self) -> List[Dict[str, Any]]:
        """Return the meta records of every completed entry in the store."""
        records: List[Dict[str, Any]] = []
        for meta_path in sorted(self.root.glob("*/*/meta.json")):
            if not (meta_path.parent / "result.json").exists():
                continue
            try:
                records.append(json.loads(meta_path.read_text()))
            except ValueError:  # pragma: no cover - corrupted meta is skipped
                continue
        return records

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters for this store instance plus the disk entry count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self.entries()),
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }

    def disk_stats(self) -> Dict[str, int]:
        """Entry count and total on-disk bytes of every completed entry."""
        entries = 0
        total_bytes = 0
        for meta_path in self.root.glob("*/*/meta.json"):
            directory = meta_path.parent
            if not (directory / "result.json").exists():
                continue
            entries += 1
            for artifact in directory.iterdir():
                if artifact.is_file():
                    total_bytes += artifact.stat().st_size
        return {"entries": entries, "total_bytes": total_bytes}

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #
    def gc(
        self,
        max_bytes: Optional[int] = None,
        older_than_seconds: Optional[float] = None,
        dry_run: bool = False,
        now: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Evict entries LRU-by-mtime; return what was (or would be) reclaimed.

        Long-lived service nodes need a bounded store.  Two independent
        policies compose:

        * ``older_than_seconds`` — drop every entry whose ``result.json``
          mtime is older than this many seconds;
        * ``max_bytes`` — then drop oldest-first until the remaining
          entries fit the budget.

        ``result.json`` mtime is the recency signal: :meth:`put` replaces
        it on every write, so recently recomputed entries survive.  With
        ``dry_run`` nothing is deleted and no record is persisted.  The
        summary (also written to ``last-gc.json`` so ``repro cache stats``
        can surface reclaimed bytes) reports entry counts and byte totals
        before/after.
        """
        if now is None:
            now = time.time()
        entries: List[Tuple[float, int, Path]] = []  # (mtime, bytes, dir)
        for meta_path in self.root.glob("*/*/meta.json"):
            directory = meta_path.parent
            marker = directory / "result.json"
            if not marker.exists():
                continue
            size = sum(
                artifact.stat().st_size
                for artifact in directory.iterdir()
                if artifact.is_file()
            )
            entries.append((marker.stat().st_mtime, size, directory))
        entries.sort(reverse=True)  # newest first
        total_bytes = sum(size for _, size, _ in entries)

        evict: List[Tuple[float, int, Path]] = []
        keep: List[Tuple[float, int, Path]] = []
        for entry in entries:
            if older_than_seconds is not None and now - entry[0] > older_than_seconds:
                evict.append(entry)
            else:
                keep.append(entry)
        if max_bytes is not None:
            kept_bytes = 0
            within: List[Tuple[float, int, Path]] = []
            for entry in keep:  # newest first: the budget keeps recent entries
                if kept_bytes + entry[1] <= max_bytes:
                    kept_bytes += entry[1]
                    within.append(entry)
                else:
                    evict.append(entry)
            keep = within

        reclaimed = sum(size for _, size, _ in evict)
        if not dry_run:
            for _, _, directory in evict:
                shutil.rmtree(directory, ignore_errors=True)
                try:  # prune the two-char fan-out dir when it empties
                    directory.parent.rmdir()
                except OSError:
                    pass
        summary = {
            "scanned_entries": len(entries),
            "scanned_bytes": total_bytes,
            "removed_entries": len(evict),
            "reclaimed_bytes": reclaimed,
            "remaining_entries": len(keep),
            "remaining_bytes": total_bytes - reclaimed,
            "max_bytes": max_bytes,
            "older_than_seconds": older_than_seconds,
            "dry_run": dry_run,
            "at": now,
        }
        if not dry_run:
            (self.root / "last-gc.json").write_text(
                json.dumps(summary, indent=2, sort_keys=True)
            )
        from repro.telemetry.logs import get_logger

        get_logger("repro.store").info(
            "gc",
            removed_entries=summary["removed_entries"],
            reclaimed_bytes=summary["reclaimed_bytes"],
            remaining_entries=summary["remaining_entries"],
            remaining_bytes=summary["remaining_bytes"],
            dry_run=dry_run,
        )
        return summary

    def last_gc_stats(self) -> Optional[Dict[str, Any]]:
        """Return the persisted summary of the last :meth:`gc`, or ``None``."""
        path = self.root / "last-gc.json"
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except ValueError:  # pragma: no cover - corrupted record
            return None

    def save_stats(self) -> Path:
        """Persist this instance's counters as the store's last-run record.

        ``repro figure|suite|run`` call this after completing, which is what
        ``repro cache stats`` reads back as "the last run's hit/miss line".
        """
        path = self.root / "last-run.json"
        payload = dict(self.stats(), saved_at=time.time())
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return path

    def last_run_stats(self) -> Optional[Dict[str, Any]]:
        """Return the persisted last-run counters, or ``None`` if absent."""
        path = self.root / "last-run.json"
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except ValueError:  # pragma: no cover - corrupted record
            return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore(root={str(self.root)!r})"
