"""Parallel experiment engine: executors, tasks, result store, progress.

This package turns the experiment harness from "one long Python loop" into a
schedulable system:

* :mod:`repro.engine.tasks` — picklable realization tasks and the suite
  scheduler that pushes many experiments through one shared worker pool;
* :mod:`repro.engine.executor` — :class:`SerialExecutor` and the
  process-pool :class:`ParallelExecutor`, numerically identical by
  construction (explicit per-task seeds, results in submission order);
* :mod:`repro.engine.store` — a content-addressed on-disk cache of
  :class:`~repro.experiments.results.ExperimentResult` artifacts keyed by
  (experiment id, scale, seed, params), making re-runs and resumed suites
  skip completed work;
* :mod:`repro.engine.progress` — per-experiment task counts and timings.

Quick tour::

    from repro.engine import ParallelExecutor, ResultStore, run_suite

    with ParallelExecutor(jobs=8) as pool:
        report = run_suite(["fig9", "fig11"], scale=scale,
                           executor=pool, store=ResultStore(".repro-cache"))
    print(report.summary())
"""

# Import order matters: executor depends on tasks, and store pulls in the
# experiments package (which in turn may import repro.engine.executor), so
# executor must be fully initialised before store.
from repro.engine.tasks import SuiteEntry, SuiteReport, Task, run_suite
from repro.engine.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    active_executor,
    active_progress,
    executor_from_jobs,
    use_executor,
)
from repro.engine.store import ResultStore
from repro.engine.progress import ExperimentTiming, ProgressEvent, ProgressReporter

__all__ = [
    "Executor",
    "ExperimentTiming",
    "ParallelExecutor",
    "ProgressEvent",
    "ProgressReporter",
    "ResultStore",
    "SerialExecutor",
    "SuiteEntry",
    "SuiteReport",
    "Task",
    "active_executor",
    "active_progress",
    "executor_from_jobs",
    "run_suite",
    "use_executor",
]
