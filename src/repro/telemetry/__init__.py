"""Telemetry: ambient tracing/counters plus the pinned benchmark suite.

The collector half (:mod:`repro.telemetry.collector`) is imported eagerly —
it is the hot-path dependency of every execution layer and pulls in nothing
beyond the standard library.  The benchmark half
(:mod:`repro.telemetry.bench`) imports generators and search algorithms, so
it stays a lazy import behind ``repro bench``.
"""

from repro.telemetry.collector import (
    NULL_TELEMETRY,
    TRACE_SCHEMA_VERSION,
    NullTelemetry,
    TelemetryCollector,
    active_telemetry,
    telemetry_clock,
    use_telemetry,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "TelemetryCollector",
    "active_telemetry",
    "use_telemetry",
    "telemetry_clock",
]
