"""Telemetry: ambient tracing/counters plus the pinned benchmark suite.

The collector half (:mod:`repro.telemetry.collector`) and the trace-context
half (:mod:`repro.telemetry.trace`) are imported eagerly — they are the
hot-path dependencies of every execution layer and pull in nothing beyond
the standard library.  Structured logging (:mod:`repro.telemetry.logs`) and
Prometheus exposition (:mod:`repro.telemetry.prometheus`) are equally
stdlib-only.  The benchmark half (:mod:`repro.telemetry.bench`) imports
generators and search algorithms, so it stays a lazy import behind
``repro bench``.
"""

from repro.telemetry.collector import (
    HISTOGRAM_BUCKETS,
    NULL_TELEMETRY,
    TRACE_SCHEMA_VERSION,
    NullTelemetry,
    TelemetryCollector,
    active_telemetry,
    histogram_quantile,
    telemetry_clock,
    use_telemetry,
)
from repro.telemetry.trace import (
    SpanContext,
    current_span_context,
    current_span_id,
    current_trace_id,
    new_trace_id,
    to_chrome_trace,
    use_span_context,
    use_trace_id,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "HISTOGRAM_BUCKETS",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "TelemetryCollector",
    "active_telemetry",
    "use_telemetry",
    "telemetry_clock",
    "histogram_quantile",
    "SpanContext",
    "current_span_context",
    "current_span_id",
    "current_trace_id",
    "new_trace_id",
    "to_chrome_trace",
    "use_span_context",
    "use_trace_id",
]
