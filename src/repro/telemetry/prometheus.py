"""Prometheus text exposition (version 0.0.4) for telemetry exports.

Maps the collector's export payload onto proper metric families:

* counters → ``<name>_total`` (``# TYPE ... counter``),
* histograms → ``<name>_bucket{le=...}`` / ``_sum`` / ``_count`` over the
  shared :data:`~repro.telemetry.collector.HISTOGRAM_BUCKETS` ladder
  (``# TYPE ... histogram``); entries without bucket counts (imported from
  schema-1 traces) degrade to a ``summary`` family,
* span aggregates → two labelled families,
  ``repro_span_seconds_total{span=...}`` and
  ``repro_span_calls_total{span=...}``,
* caller-supplied instantaneous values → gauges.

Dots in telemetry names become underscores, so the serve layer's
``serve.request_seconds`` histogram is scraped as ``serve_request_seconds``.
No third-party client library is required to *emit*; the test suite parses
the output with ``prometheus_client`` when that package happens to be
installed and falls back to a golden-format check otherwise.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from repro.telemetry.collector import HISTOGRAM_BUCKETS

__all__ = ["render_prometheus", "CONTENT_TYPE"]

#: The content type Prometheus scrapers expect for text exposition.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    sanitized = _NAME_OK.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _number(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def render_prometheus(
    export: Dict[str, Any], gauges: Optional[Dict[str, float]] = None
) -> str:
    """Render an exported telemetry payload as Prometheus text exposition."""
    lines: List[str] = []

    for name in sorted(export.get("counters", {})):
        value = export["counters"][name]
        family = _metric_name(name) + "_total"
        lines.append(f"# HELP {family} Telemetry counter {name}.")
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_number(value)}")

    for name in sorted(export.get("histograms", {})):
        entry = export["histograms"][name]
        family = _metric_name(name)
        buckets = entry.get("buckets")
        if buckets:
            lines.append(f"# HELP {family} Telemetry histogram {name}.")
            lines.append(f"# TYPE {family} histogram")
            cumulative = 0
            for index, bound in enumerate(HISTOGRAM_BUCKETS):
                cumulative += buckets[index]
                lines.append(
                    f'{family}_bucket{{le="{_number(bound)}"}} {cumulative}'
                )
            cumulative += buckets[len(HISTOGRAM_BUCKETS)]
            lines.append(f'{family}_bucket{{le="+Inf"}} {cumulative}')
        else:
            lines.append(f"# HELP {family} Telemetry summary {name}.")
            lines.append(f"# TYPE {family} summary")
        lines.append(f"{family}_sum {_number(entry['total'])}")
        lines.append(f"{family}_count {int(entry['count'])}")

    spans = export.get("spans", {})
    if spans:
        lines.append(
            "# HELP repro_span_seconds_total Cumulative seconds per span name."
        )
        lines.append("# TYPE repro_span_seconds_total counter")
        for name in sorted(spans):
            lines.append(
                f'repro_span_seconds_total{{span="{_label_value(name)}"}} '
                f"{repr(float(spans[name]['seconds']))}"
            )
        lines.append("# HELP repro_span_calls_total Span entry count per name.")
        lines.append("# TYPE repro_span_calls_total counter")
        for name in sorted(spans):
            lines.append(
                f'repro_span_calls_total{{span="{_label_value(name)}"}} '
                f"{int(spans[name]['count'])}"
            )

    for name in sorted(gauges or {}):
        family = _metric_name(name)
        lines.append(f"# HELP {family} Instantaneous value {name}.")
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_number((gauges or {})[name])}")

    return "\n".join(lines) + "\n"
