"""Structured tracing and counters for the execution layers.

The telemetry subsystem is *ambient*, like the executor/backend/kernel
contexts: instrumented code fetches the active collector with
:func:`active_telemetry` and records into it — spans (named wall-clock
sections such as ``generate``/``freeze``/``search``/``store``/
``kernel-compile``), monotonic counters (RNG rejections, cache hits,
dispatched kernel tiers), and histograms (BFS frontier sizes).

Zero overhead when disabled is the design constraint: the default ambient
value is the :data:`NULL_TELEMETRY` singleton whose methods are no-ops and
whose :meth:`~NullTelemetry.span` returns one shared, reusable context
manager — instrumenting a hot loop costs an attribute read and a branch,
and allocates nothing (pinned by ``tests/test_telemetry.py``).

Collectors survive process boundaries by value, not by reference: the
engine's executors run each task under a fresh worker-side collector,
ship its :meth:`~TelemetryCollector.export` payload back with the result,
and merge it into the parent collector in submission order
(:meth:`~TelemetryCollector.merge_task`) — so a parallel run's merged trace
matches a serial run's exactly, minus wall-clock noise.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.core.ambient import AmbientStack

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "TelemetryCollector",
    "active_telemetry",
    "use_telemetry",
    "telemetry_clock",
]

#: Bump when the exported trace layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1

#: The clock every telemetry consumer shares (monotonic, sub-microsecond).
telemetry_clock = time.perf_counter


class _NullSpan:
    """A reusable no-op context manager (one shared instance, no allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled collector: every operation is a no-op.

    Hot loops are instrumented against this interface; with telemetry off
    (the default) the calls reduce to attribute reads and immediate
    returns, allocating nothing.
    """

    __slots__ = ()

    #: Instrumented code branches on this before doing any per-event work.
    enabled = False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None


#: The process-wide disabled collector (ambient default).
NULL_TELEMETRY = NullTelemetry()


class _Span:
    """Context manager recording one timed section into its collector."""

    __slots__ = ("_collector", "_name", "_started")

    def __init__(self, collector: "TelemetryCollector", name: str) -> None:
        self._collector = collector
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._started = telemetry_clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._collector._record_span(
            self._name, telemetry_clock() - self._started
        )


class TelemetryCollector:
    """An enabled collector aggregating spans, counters, and histograms.

    Thread-safe: scenario plan threads (and the executor's merge of worker
    payloads) may record concurrently into one collector.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.spans: Dict[str, Dict[str, float]] = {}
        self.counters: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, float]] = {}
        self.tasks: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def span(self, name: str) -> _Span:
        """Return a context manager timing one ``name`` section."""
        return _Span(self, name)

    def _record_span(self, name: str, seconds: float) -> None:
        with self._lock:
            entry = self.spans.get(name)
            if entry is None:
                entry = {"count": 0, "seconds": 0.0}
                self.spans[name] = entry
            entry["count"] += 1
            entry["seconds"] += seconds

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the monotonic counter ``name``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``.

        Histograms keep summary statistics (count/total/min/max), which is
        what the reports surface; full per-observation storage would defeat
        the low-overhead contract.
        """
        with self._lock:
            entry = self.histograms.get(name)
            if entry is None:
                self.histograms[name] = {
                    "count": 1,
                    "total": value,
                    "min": value,
                    "max": value,
                }
                return
            entry["count"] += 1
            entry["total"] += value
            if value < entry["min"]:
                entry["min"] = value
            if value > entry["max"]:
                entry["max"] = value

    # ------------------------------------------------------------------ #
    # Export / merge (the process-boundary contract)
    # ------------------------------------------------------------------ #
    def export(self) -> Dict[str, Any]:
        """Return the JSON-friendly trace payload (schema-versioned).

        The per-task records are stable-sorted by key: the scenario
        compiler's plan threads merge their batches into a shared collector
        in whatever interleaving the scheduler produced, and sorting makes
        the exported trace deterministic — a parallel run's trace matches
        the serial one.
        """
        with self._lock:
            return {
                "schema": TRACE_SCHEMA_VERSION,
                "spans": {
                    name: {"count": int(entry["count"]), "seconds": entry["seconds"]}
                    for name, entry in self.spans.items()
                },
                "counters": dict(self.counters),
                "histograms": {
                    name: dict(entry) for name, entry in self.histograms.items()
                },
                "tasks": [
                    dict(task)
                    for task in sorted(self.tasks, key=lambda task: task["key"])
                ],
            }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TelemetryCollector":
        """Rebuild a collector from an exported payload (round-trip safe)."""
        schema = payload.get("schema")
        if schema != TRACE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported trace schema {schema!r} "
                f"(this build reads version {TRACE_SCHEMA_VERSION})"
            )
        collector = cls()
        for name, entry in payload.get("spans", {}).items():
            collector.spans[name] = {
                "count": int(entry["count"]),
                "seconds": float(entry["seconds"]),
            }
        for name, value in payload.get("counters", {}).items():
            collector.counters[name] = value
        for name, entry in payload.get("histograms", {}).items():
            collector.histograms[name] = dict(entry)
        collector.tasks = [dict(task) for task in payload.get("tasks", [])]
        return collector

    def merge(self, payload: Dict[str, Any]) -> None:
        """Fold an exported payload (e.g. from a worker) into this collector."""
        for name, entry in payload.get("spans", {}).items():
            with self._lock:
                target = self.spans.get(name)
                if target is None:
                    target = {"count": 0, "seconds": 0.0}
                    self.spans[name] = target
                target["count"] += entry["count"]
                target["seconds"] += entry["seconds"]
        for name, value in payload.get("counters", {}).items():
            self.count(name, value)
        for name, entry in payload.get("histograms", {}).items():
            with self._lock:
                target = self.histograms.get(name)
                if target is None:
                    self.histograms[name] = dict(entry)
                    continue
                target["count"] += entry["count"]
                target["total"] += entry["total"]
                target["min"] = min(target["min"], entry["min"])
                target["max"] = max(target["max"], entry["max"])
        with self._lock:
            self.tasks.extend(dict(task) for task in payload.get("tasks", []))

    def merge_task(
        self, key: str, seconds: float, payload: Dict[str, Any]
    ) -> None:
        """Merge one completed task's trace and keep its per-task record.

        The per-task records are the trace file's per-realization view:
        every realization task appears with its wall time and the named
        spans that account for it.
        """
        self.merge(payload)
        with self._lock:
            self.tasks.append(
                {
                    "key": key,
                    "seconds": seconds,
                    "spans": {
                        name: {"count": int(entry["count"]), "seconds": entry["seconds"]}
                        for name, entry in payload.get("spans", {}).items()
                    },
                }
            )

    # ------------------------------------------------------------------ #
    # Reporting helpers
    # ------------------------------------------------------------------ #
    def span_seconds(self, name: str) -> float:
        """Total seconds recorded under span ``name`` (0.0 when absent)."""
        entry = self.spans.get(name)
        return float(entry["seconds"]) if entry else 0.0

    def summary_lines(self) -> List[str]:
        """Render a compact human-readable summary (the ``--metrics`` view)."""
        lines: List[str] = []
        if self.spans:
            lines.append("spans:")
            width = max(len(name) for name in self.spans)
            for name in sorted(self.spans):
                entry = self.spans[name]
                lines.append(
                    f"  {name:<{width}}  {entry['seconds']:9.3f}s  "
                    f"x{int(entry['count'])}"
                )
        if self.counters:
            lines.append("counters:")
            width = max(len(name) for name in self.counters)
            for name in sorted(self.counters):
                value = self.counters[name]
                rendered = f"{value:.3f}" if isinstance(value, float) and value != int(value) else f"{int(value)}"
                lines.append(f"  {name:<{width}}  {rendered}")
        if self.histograms:
            lines.append("histograms:")
            width = max(len(name) for name in self.histograms)
            for name in sorted(self.histograms):
                entry = self.histograms[name]
                count = int(entry["count"])
                mean = entry["total"] / count if count else 0.0
                lines.append(
                    f"  {name:<{width}}  n={count} mean={mean:.1f} "
                    f"min={entry['min']:.0f} max={entry['max']:.0f}"
                )
        if not lines:
            lines.append("telemetry: nothing recorded")
        return lines


# --------------------------------------------------------------------------- #
# Ambient context
# --------------------------------------------------------------------------- #
_ACTIVE_STACK: AmbientStack["NullTelemetry | TelemetryCollector"] = AmbientStack()


def active_telemetry() -> "NullTelemetry | TelemetryCollector":
    """Return the innermost installed collector (default: the null one).

    Thread-local like every ambient stack: worker threads re-install the
    collector captured from their parent (see
    :func:`repro.scenarios.compile._run_plans`).
    """
    return _ACTIVE_STACK.top(NULL_TELEMETRY)


@contextmanager
def use_telemetry(
    collector: "Optional[NullTelemetry | TelemetryCollector]",
) -> Iterator["NullTelemetry | TelemetryCollector"]:
    """Install ``collector`` for the ``with`` body (``None`` keeps the ambient).

    Mirrors :func:`repro.core.backend.use_backend` so call sites can pass an
    optional collector unconditionally.
    """
    if collector is not None:
        _ACTIVE_STACK.push(collector)
    try:
        yield active_telemetry()
    finally:
        if collector is not None:
            _ACTIVE_STACK.pop()
