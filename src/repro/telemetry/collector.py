"""Structured tracing and counters for the execution layers.

The telemetry subsystem is *ambient*, like the executor/backend/kernel
contexts: instrumented code fetches the active collector with
:func:`active_telemetry` and records into it — spans (named wall-clock
sections such as ``generate``/``freeze``/``search``/``store``/
``kernel-compile``), monotonic counters (RNG rejections, cache hits,
dispatched kernel tiers), and histograms (BFS frontier sizes, serve
latencies).

Since schema 2, spans are a *tree*: every span records an id, a parent id
(the innermost open span of the same collector, tracked by the ambient
stack in :mod:`repro.telemetry.trace`), monotonic start/end timestamps,
the ambient trace id, and optional attributes — alongside the schema-1
per-name aggregates, which stay the cheap summary view.

Zero overhead when disabled is the design constraint: the default ambient
value is the :data:`NULL_TELEMETRY` singleton whose methods are no-ops and
whose :meth:`~NullTelemetry.span` returns one shared, reusable context
manager — instrumenting a hot loop costs an attribute read and a branch,
and allocates nothing (pinned by ``tests/test_telemetry.py``).

Collectors survive process boundaries by value, not by reference: the
engine's executors run each task under a fresh worker-side collector,
ship its :meth:`~TelemetryCollector.export` payload back with the result,
and merge it into the parent collector in submission order
(:meth:`~TelemetryCollector.merge_task`) — span ids are remapped past the
parent's sequence, worker roots are re-parented under the submitting
thread's open span, and worker clocks are shifted onto the parent's — so a
parallel run's merged trace reassembles into the same tree as a serial
run's, minus wall-clock noise.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.ambient import AmbientStack
from repro.telemetry.trace import SpanContext, _SPAN_STACK

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "HISTOGRAM_BUCKETS",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "TelemetryCollector",
    "active_telemetry",
    "use_telemetry",
    "telemetry_clock",
    "histogram_quantile",
]

#: Bump when the exported trace layout changes incompatibly.
#: v2 added ``span_tree`` and bucketed histograms; v1 payloads still load.
TRACE_SCHEMA_VERSION = 2

#: The clock every telemetry consumer shares (monotonic, sub-microsecond).
telemetry_clock = time.perf_counter

#: Shared log-spaced histogram bucket upper bounds (1-2.5-5 ladder).  One
#: ladder serves both latencies (sub-millisecond and up) and size-valued
#: histograms such as BFS frontier widths (up to millions); values beyond
#: the last bound land in an implicit overflow bucket.
HISTOGRAM_BUCKETS: Tuple[float, ...] = tuple(
    base * (10.0 ** exponent)
    for exponent in range(-4, 7)
    for base in (1.0, 2.5, 5.0)
)


def histogram_quantile(entry: Dict[str, Any], q: float) -> Optional[float]:
    """Estimate the ``q``-quantile of a bucketed histogram entry.

    Linear interpolation within the containing bucket, clamped to the
    entry's observed min/max.  Returns ``None`` when the entry carries no
    bucket counts (e.g. one imported from a schema-1 trace).
    """
    buckets = entry.get("buckets")
    count = int(entry.get("count", 0))
    if not buckets or count <= 0:
        return None
    lowest = float(entry["min"])
    highest = float(entry["max"])
    target = q * count
    cumulative = 0
    lower = 0.0
    for index, occupancy in enumerate(buckets):
        upper = HISTOGRAM_BUCKETS[index] if index < len(HISTOGRAM_BUCKETS) else highest
        if occupancy:
            if cumulative + occupancy >= target:
                fraction = (target - cumulative) / occupancy
                value = lower + (upper - lower) * fraction
                return min(max(value, lowest), highest)
            cumulative += occupancy
        lower = upper
    return highest


class _NullSpan:
    """A reusable no-op context manager (one shared instance, no allocation)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled collector: every operation is a no-op.

    Hot loops are instrumented against this interface; with telemetry off
    (the default) the calls reduce to attribute reads and immediate
    returns, allocating nothing.
    """

    __slots__ = ()

    #: Instrumented code branches on this before doing any per-event work.
    enabled = False

    def span(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        aggregate: bool = True,
    ) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None


#: The process-wide disabled collector (ambient default).
NULL_TELEMETRY = NullTelemetry()


class _Span:
    """Context manager recording one timed section into its collector.

    On entry it claims a span id, resolves its parent from the ambient
    span stack (only a span of the *same* collector parents — a fresh
    worker-side collector starts its own root), inherits the ambient
    trace id, and pushes itself as the new innermost context.
    """

    __slots__ = (
        "_collector",
        "_name",
        "_attrs",
        "_aggregate",
        "_started",
        "_id",
        "_parent",
        "_trace_id",
    )

    def __init__(
        self,
        collector: "TelemetryCollector",
        name: str,
        attrs: Optional[Dict[str, Any]],
        aggregate: bool,
    ) -> None:
        self._collector = collector
        self._name = name
        self._attrs = attrs
        self._aggregate = aggregate
        self._started = 0.0
        self._id = 0
        self._parent: Optional[int] = None
        self._trace_id: Optional[str] = None

    def __enter__(self) -> "_Span":
        collector = self._collector
        context = _SPAN_STACK.top(None)
        if context is not None:
            self._trace_id = context.trace_id
            if context.collector is collector:
                self._parent = context.span_id
        self._id = collector._next_span_id()
        _SPAN_STACK.push(SpanContext(self._trace_id, self._id, collector))
        self._started = telemetry_clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        ended = telemetry_clock()
        _SPAN_STACK.pop()
        self._collector._record_span(
            self._name,
            self._started,
            ended,
            self._id,
            self._parent,
            self._trace_id,
            self._attrs,
            self._aggregate,
        )


class TelemetryCollector:
    """An enabled collector aggregating spans, counters, and histograms.

    Thread-safe: scenario plan threads (and the executor's merge of worker
    payloads) may record concurrently into one collector.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.spans: Dict[str, Dict[str, float]] = {}
        self.counters: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, Any]] = {}
        self.tasks: List[Dict[str, Any]] = []
        self.span_tree: List[Dict[str, Any]] = []
        self._span_seq = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def span(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        aggregate: bool = True,
    ) -> _Span:
        """Return a context manager timing one ``name`` section.

        ``attrs`` are recorded on the tree node.  ``aggregate=False`` keeps
        the span out of the per-name aggregates (used for the synthetic
        per-task root so task wall time is not double-counted in reports).
        """
        return _Span(self, name, attrs, aggregate)

    def _next_span_id(self) -> int:
        with self._lock:
            self._span_seq += 1
            return self._span_seq

    def _record_span(
        self,
        name: str,
        started: float,
        ended: float,
        span_id: int,
        parent: Optional[int],
        trace_id: Optional[str],
        attrs: Optional[Dict[str, Any]],
        aggregate: bool,
    ) -> None:
        node = {
            "id": span_id,
            "parent": parent,
            "name": name,
            "start": started,
            "end": ended,
            "trace_id": trace_id,
            "tid": threading.get_ident(),
            "attrs": dict(attrs) if attrs else {},
        }
        with self._lock:
            self.span_tree.append(node)
            if aggregate:
                entry = self.spans.get(name)
                if entry is None:
                    entry = {"count": 0, "seconds": 0.0}
                    self.spans[name] = entry
                entry["count"] += 1
                entry["seconds"] += ended - started

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the monotonic counter ``name``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``.

        Histograms keep summary statistics (count/total/min/max) plus
        occupancy counts over the shared :data:`HISTOGRAM_BUCKETS` ladder —
        enough for p50/p95/p99 estimates and Prometheus exposition without
        storing observations individually.
        """
        with self._lock:
            entry = self.histograms.get(name)
            if entry is None:
                buckets = [0] * (len(HISTOGRAM_BUCKETS) + 1)
                buckets[bisect_left(HISTOGRAM_BUCKETS, value)] = 1
                self.histograms[name] = {
                    "count": 1,
                    "total": value,
                    "min": value,
                    "max": value,
                    "buckets": buckets,
                }
                return
            entry["count"] += 1
            entry["total"] += value
            if value < entry["min"]:
                entry["min"] = value
            if value > entry["max"]:
                entry["max"] = value
            buckets = entry.get("buckets")
            if buckets is not None:
                buckets[bisect_left(HISTOGRAM_BUCKETS, value)] += 1

    # ------------------------------------------------------------------ #
    # Export / merge (the process-boundary contract)
    # ------------------------------------------------------------------ #
    def _export_histogram(self, entry: Dict[str, Any]) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "count": int(entry["count"]),
            "total": float(entry["total"]),
            "min": float(entry["min"]),
            "max": float(entry["max"]),
        }
        buckets = entry.get("buckets")
        if buckets is not None:
            out["buckets"] = list(buckets)
            for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                value = histogram_quantile(entry, q)
                if value is not None:
                    out[label] = value
        return out

    def export(self) -> Dict[str, Any]:
        """Return the JSON-friendly trace payload (schema-versioned).

        The per-task records are stable-sorted by key: the scenario
        compiler's plan threads merge their batches into a shared collector
        in whatever interleaving the scheduler produced, and sorting makes
        the exported trace deterministic — a parallel run's trace matches
        the serial one.  Histogram percentiles are derived at export time
        from the canonical bucket counts, never stored.
        """
        with self._lock:
            return {
                "schema": TRACE_SCHEMA_VERSION,
                "spans": {
                    name: {"count": int(entry["count"]), "seconds": entry["seconds"]}
                    for name, entry in self.spans.items()
                },
                "counters": dict(self.counters),
                "histograms": {
                    name: self._export_histogram(entry)
                    for name, entry in self.histograms.items()
                },
                "tasks": [
                    dict(task)
                    for task in sorted(self.tasks, key=lambda task: task["key"])
                ],
                "span_tree": [
                    dict(node, attrs=dict(node["attrs"])) for node in self.span_tree
                ],
            }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TelemetryCollector":
        """Rebuild a collector from an exported payload (round-trip safe).

        Accepts the current schema and schema 1 (pre-span-tree): a v1
        payload loads with an empty tree and summary-only histograms
        (percentiles unavailable, everything else intact).
        """
        schema = payload.get("schema")
        if schema not in (1, TRACE_SCHEMA_VERSION):
            raise ValueError(
                f"unsupported trace schema {schema!r} "
                f"(this build reads versions 1..{TRACE_SCHEMA_VERSION})"
            )
        collector = cls()
        for name, entry in payload.get("spans", {}).items():
            collector.spans[name] = {
                "count": int(entry["count"]),
                "seconds": float(entry["seconds"]),
            }
        for name, value in payload.get("counters", {}).items():
            collector.counters[name] = value
        for name, entry in payload.get("histograms", {}).items():
            record: Dict[str, Any] = {
                "count": int(entry["count"]),
                "total": float(entry["total"]),
                "min": float(entry["min"]),
                "max": float(entry["max"]),
            }
            if "buckets" in entry:
                record["buckets"] = list(entry["buckets"])
            collector.histograms[name] = record
        collector.tasks = [dict(task) for task in payload.get("tasks", [])]
        for node in payload.get("span_tree", []):
            collector.span_tree.append(
                dict(node, attrs=dict(node.get("attrs") or {}))
            )
        collector._span_seq = max(
            (node["id"] for node in collector.span_tree), default=0
        )
        return collector

    def merge(
        self, payload: Dict[str, Any], _clock_anchor: Optional[float] = None
    ) -> None:
        """Fold an exported payload (e.g. from a worker) into this collector.

        Span-tree nodes are remapped past this collector's id sequence and
        the payload's roots are re-parented under the merging thread's
        innermost open span (when that span belongs to this collector) —
        the step that stitches worker subtrees back into the request tree.
        When ``_clock_anchor`` is given (see :meth:`merge_task`), the
        payload's timestamps are shifted so its latest root ends at the
        anchor: worker ``perf_counter`` clocks are not comparable across
        processes, and anchoring keeps the merged timeline monotone.
        """
        for name, entry in payload.get("spans", {}).items():
            with self._lock:
                target = self.spans.get(name)
                if target is None:
                    target = {"count": 0, "seconds": 0.0}
                    self.spans[name] = target
                target["count"] += entry["count"]
                target["seconds"] += entry["seconds"]
        for name, value in payload.get("counters", {}).items():
            self.count(name, value)
        for name, entry in payload.get("histograms", {}).items():
            with self._lock:
                target = self.histograms.get(name)
                if target is None:
                    imported: Dict[str, Any] = {
                        "count": int(entry["count"]),
                        "total": float(entry["total"]),
                        "min": float(entry["min"]),
                        "max": float(entry["max"]),
                    }
                    if "buckets" in entry:
                        imported["buckets"] = list(entry["buckets"])
                    self.histograms[name] = imported
                    continue
                target["count"] += entry["count"]
                target["total"] += entry["total"]
                target["min"] = min(target["min"], entry["min"])
                target["max"] = max(target["max"], entry["max"])
                if "buckets" in target:
                    if "buckets" in entry:
                        for index, occupancy in enumerate(entry["buckets"]):
                            target["buckets"][index] += occupancy
                    else:
                        # Merging a bucket-less (schema-1) entry would make
                        # the counts lie; drop them and fall back to the
                        # summary statistics.
                        del target["buckets"]
        with self._lock:
            self.tasks.extend(dict(task) for task in payload.get("tasks", []))
        nodes = payload.get("span_tree", [])
        if nodes:
            context = _SPAN_STACK.top(None)
            parent_id = (
                context.span_id
                if context is not None and context.collector is self
                else None
            )
            with self._lock:
                offset = self._span_seq
                self._span_seq += max(node["id"] for node in nodes)
                shift = 0.0
                if _clock_anchor is not None:
                    root_ends = [
                        node["end"]
                        for node in nodes
                        if node.get("parent") is None
                    ]
                    if root_ends:
                        shift = _clock_anchor - max(root_ends)
                for node in nodes:
                    merged = dict(node, attrs=dict(node.get("attrs") or {}))
                    merged["id"] = node["id"] + offset
                    merged["parent"] = (
                        node["parent"] + offset
                        if node.get("parent") is not None
                        else parent_id
                    )
                    merged["start"] = node["start"] + shift
                    merged["end"] = node["end"] + shift
                    self.span_tree.append(merged)

    def merge_task(
        self, key: str, seconds: float, payload: Dict[str, Any]
    ) -> None:
        """Merge one completed task's trace and keep its per-task record.

        The per-task records are the trace file's per-realization view:
        every realization task appears with its wall time and the named
        spans that account for it.
        """
        self.merge(payload, _clock_anchor=telemetry_clock())
        with self._lock:
            self.tasks.append(
                {
                    "key": key,
                    "seconds": seconds,
                    "spans": {
                        name: {"count": int(entry["count"]), "seconds": entry["seconds"]}
                        for name, entry in payload.get("spans", {}).items()
                    },
                }
            )

    # ------------------------------------------------------------------ #
    # Reporting helpers
    # ------------------------------------------------------------------ #
    def span_seconds(self, name: str) -> float:
        """Total seconds recorded under span ``name`` (0.0 when absent)."""
        entry = self.spans.get(name)
        return float(entry["seconds"]) if entry else 0.0

    def summary_lines(self) -> List[str]:
        """Render a compact human-readable summary (the ``--metrics`` view)."""
        lines: List[str] = []
        if self.spans:
            lines.append("spans:")
            width = max(len(name) for name in self.spans)
            for name in sorted(self.spans):
                entry = self.spans[name]
                lines.append(
                    f"  {name:<{width}}  {entry['seconds']:9.3f}s  "
                    f"x{int(entry['count'])}"
                )
        if self.counters:
            lines.append("counters:")
            width = max(len(name) for name in self.counters)
            for name in sorted(self.counters):
                value = self.counters[name]
                rendered = f"{value:.3f}" if isinstance(value, float) and value != int(value) else f"{int(value)}"
                lines.append(f"  {name:<{width}}  {rendered}")
        if self.histograms:
            lines.append("histograms:")
            width = max(len(name) for name in self.histograms)
            for name in sorted(self.histograms):
                entry = self.histograms[name]
                count = int(entry["count"])
                mean = entry["total"] / count if count else 0.0
                quantiles = ""
                p50 = histogram_quantile(entry, 0.50)
                if p50 is not None:
                    p95 = histogram_quantile(entry, 0.95)
                    p99 = histogram_quantile(entry, 0.99)
                    quantiles = (
                        f" p50={p50:.3g} p95={p95:.3g} p99={p99:.3g}"
                    )
                lines.append(
                    f"  {name:<{width}}  n={count} mean={mean:.1f}{quantiles} "
                    f"min={entry['min']:.0f} max={entry['max']:.0f}"
                )
        if not lines:
            lines.append("telemetry: nothing recorded")
        return lines


# --------------------------------------------------------------------------- #
# Ambient context
# --------------------------------------------------------------------------- #
_ACTIVE_STACK: AmbientStack["NullTelemetry | TelemetryCollector"] = AmbientStack()


def active_telemetry() -> "NullTelemetry | TelemetryCollector":
    """Return the innermost installed collector (default: the null one).

    Thread-local like every ambient stack: worker threads re-install the
    collector captured from their parent (see
    :func:`repro.scenarios.compile._run_plans`).
    """
    return _ACTIVE_STACK.top(NULL_TELEMETRY)


@contextmanager
def use_telemetry(
    collector: "Optional[NullTelemetry | TelemetryCollector]",
) -> Iterator["NullTelemetry | TelemetryCollector"]:
    """Install ``collector`` for the ``with`` body (``None`` keeps the ambient).

    Mirrors :func:`repro.core.backend.use_backend` so call sites can pass an
    optional collector unconditionally.
    """
    if collector is not None:
        _ACTIVE_STACK.push(collector)
    try:
        yield active_telemetry()
    finally:
        if collector is not None:
            _ACTIVE_STACK.pop()
