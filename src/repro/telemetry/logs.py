"""Structured JSON-lines logging, correlated with the ambient trace.

Every record is one JSON object per line::

    {"ts": ..., "level": "info", "logger": "repro.serve.http",
     "trace_id": "1f2e...", "span_id": 7, "event": "http.access", ...}

The design mirrors the telemetry collector's zero-overhead contract: with
no handler installed (the default), :meth:`StructuredLogger.info` is an
attribute read, a ``None`` check, and a return.  Handlers are installed
*process-wide* — unlike the ambient collector stacks, log records flow
from every thread of a process (HTTP connections, service workers, plan
threads) to one sink, so thread-local scoping would lose them.

``trace_id``/``span_id`` are stamped from the ambient trace context
(:mod:`repro.telemetry.trace`) at emit time, which is what correlates an
HTTP access-log line with the request's span tree and NDJSON stream.
"""

from __future__ import annotations

import io
import json
import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, TextIO

from repro.telemetry.trace import current_span_id, current_trace_id

__all__ = [
    "JsonLinesHandler",
    "MemoryHandler",
    "StructuredLogger",
    "get_logger",
    "install_log_handler",
    "use_log_handler",
]


class JsonLinesHandler:
    """Write records as compact JSON lines to a text stream (stderr default)."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()

    def emit(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            try:
                self.stream.write(line + "\n")
                self.stream.flush()
            except (OSError, ValueError, io.UnsupportedOperation):
                # A closed or broken sink must never take down the workload.
                pass


class MemoryHandler:
    """Collect records in memory — the test/introspection sink."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def emit(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self.records.append(record)


_handler: Optional[Any] = None
_handler_lock = threading.Lock()


def install_log_handler(handler: Optional[Any]) -> Optional[Any]:
    """Install ``handler`` process-wide; returns the previous one.

    Pass ``None`` to disable structured logging again.
    """
    global _handler
    with _handler_lock:
        previous = _handler
        _handler = handler
    return previous


@contextmanager
def use_log_handler(handler: Optional[Any]) -> Iterator[Any]:
    """Scoped :func:`install_log_handler` (restores the previous handler)."""
    previous = install_log_handler(handler)
    try:
        yield handler
    finally:
        install_log_handler(previous)


class StructuredLogger:
    """A named emitter of structured records (cheap, stateless)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def _log(self, level: str, event: str, fields: Dict[str, Any]) -> None:
        handler = _handler
        if handler is None:
            return
        record: Dict[str, Any] = {
            "ts": time.time(),
            "level": level,
            "logger": self.name,
            "event": event,
            "trace_id": current_trace_id(),
            "span_id": current_span_id(),
        }
        record.update(fields)
        handler.emit(record)

    def debug(self, event: str, **fields: Any) -> None:
        self._log("debug", event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._log("info", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._log("warning", event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._log("error", event, fields)


_loggers: Dict[str, StructuredLogger] = {}
_loggers_lock = threading.Lock()


def get_logger(name: str) -> StructuredLogger:
    """Return the (cached) structured logger for ``name``."""
    logger = _loggers.get(name)
    if logger is None:
        with _loggers_lock:
            logger = _loggers.setdefault(name, StructuredLogger(name))
    return logger
