"""The pinned benchmark suite behind ``repro bench``.

Runs a fixed set of micro/macro benchmarks — topology generation per
construction family × kernel tier, a GRN substrate build per tier,
NF/PF/RW/FL search curves at fig9/fig11 scale, and a
:class:`~repro.engine.store.ResultStore` round-trip — and
emits a schema-versioned payload suitable for committing as a
``BENCH_<date>_<sha>.json`` trajectory file at the repo root.

:func:`compare_benchmarks` is the regression gate: given a current payload
and a stored baseline it flags every shared benchmark whose wall time grew
beyond a relative tolerance, which the CLI turns into a non-zero exit code
(and CI turns into a failed ``bench`` job).

Timings are wall-clock and therefore machine-dependent; trajectory files
record the interpreter, platform, and numba provenance so cross-machine
comparisons can be discounted, and the CI gate runs with a deliberately
generous tolerance.
"""

from __future__ import annotations

import platform
import subprocess
import sys
import tempfile
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "run_benchmarks",
    "compare_benchmarks",
    "bench_filename",
]

#: Bump when the payload layout or the benchmark set changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Base seed for every benchmark topology/query stream (pinned so two runs
#: on one machine time identical work).
BENCH_SEED = 20070611


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except (OSError, subprocess.SubprocessError):  # pragma: no cover
        return "unknown"


def bench_filename(date: Optional[str] = None, sha: Optional[str] = None) -> str:
    """Default trajectory file name: ``BENCH_<YYYYMMDD>_<sha7>.json``."""
    if date is None:
        date = time.strftime("%Y%m%d")
    if sha is None:
        sha = _git_sha()
    return f"BENCH_{date}_{sha[:7]}.json"


# --------------------------------------------------------------------------- #
# Benchmark bodies
# --------------------------------------------------------------------------- #
def _make_generator(model: str, nodes: int, seed: int):
    from repro.core.config import GRNConfig
    from repro.generators.cm import ConfigurationModelGenerator
    from repro.generators.dapa import DAPAGenerator
    from repro.generators.hapa import HAPAGenerator
    from repro.generators.pa import PreferentialAttachmentGenerator

    if model == "pa":
        return PreferentialAttachmentGenerator(
            nodes, stubs=2, hard_cutoff=40, seed=seed
        )
    if model == "cm":
        return ConfigurationModelGenerator(
            nodes, exponent=2.6, min_degree=2, hard_cutoff=40, seed=seed
        )
    if model == "hapa":
        return HAPAGenerator(nodes, stubs=2, hard_cutoff=40, seed=seed)
    if model == "dapa":
        substrate = GRNConfig(
            number_of_nodes=2 * nodes,
            target_mean_degree=10.0,
            dimensions=2,
            seed=seed,
        )
        return DAPAGenerator(
            overlay_size=nodes,
            stubs=2,
            hard_cutoff=40,
            local_ttl=4,
            substrate_config=substrate,
            seed=seed,
        )
    raise ValueError(f"unknown bench model {model!r}")


def _time_call(fn: Callable[[], Any], repeats: int, warmup: bool) -> float:
    """Best-of-``repeats`` wall time; an optional untimed warm-up call first.

    The warm-up absorbs one-time costs (numba kernel compilation, lazy
    imports) so the recorded number is the steady-state cost the trajectory
    tracks; compile time is surfaced separately via the dispatch probe.
    """
    if warmup:
        fn()
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def _generation_cases(quick: bool, tiers: Sequence[str]) -> List[Dict[str, Any]]:
    from repro.kernels.dispatch import use_kernels

    sizes = {
        "pa": 1500 if quick else 10_000,
        "cm": 1500 if quick else 10_000,
        "hapa": 500 if quick else 2000,
        "dapa": 300 if quick else 2000,
    }
    cases: List[Dict[str, Any]] = []
    for model, nodes in sizes.items():
        for tier in tiers:
            def build(model: str = model, nodes: int = nodes, tier: str = tier) -> None:
                generator = _make_generator(model, nodes, BENCH_SEED)
                with use_kernels(tier):
                    generator.generate()

            cases.append(
                {
                    "id": f"generate/{model}/{tier}",
                    "fn": build,
                    "warmup": tier == "jit",
                    "meta": {"nodes": nodes, "tier": tier, "model": model},
                }
            )
    return cases


def _search_cases(quick: bool, tiers: Sequence[str]) -> List[Dict[str, Any]]:
    from repro.kernels.dispatch import use_kernels
    from repro.search.flooding import FloodingSearch
    from repro.search.metrics import normalized_walk_curve, search_curve
    from repro.search.normalized_flooding import NormalizedFloodingSearch
    from repro.search.probabilistic_flooding import ProbabilisticFloodingSearch

    nodes = 400 if quick else 1500
    queries = 10 if quick else 40
    ttl = list(range(2, 9, 2))
    fl_ttl = list(range(1, 11))
    # One frozen fig9-style PA topology shared by every search benchmark, so
    # the numbers isolate the query loops from generation cost.
    graph = _make_generator("pa", nodes, BENCH_SEED).generate_graph().freeze()

    runners: Dict[str, Callable[[str], Any]] = {
        "nf": lambda tier: search_curve(
            graph, NormalizedFloodingSearch(k_min=2), ttl,
            queries=queries, rng=BENCH_SEED,
        ),
        "pf": lambda tier: search_curve(
            graph, ProbabilisticFloodingSearch(0.5), ttl,
            queries=queries, rng=BENCH_SEED,
        ),
        "rw": lambda tier: normalized_walk_curve(
            graph, ttl, k_min=2, queries=queries, rng=BENCH_SEED,
        ),
        "fl": lambda tier: search_curve(
            graph, FloodingSearch(), fl_ttl, queries=queries, rng=BENCH_SEED,
        ),
    }
    cases: List[Dict[str, Any]] = []
    for algorithm, runner in runners.items():
        for tier in tiers:
            # FL has no stochastic kernel tier; its CSR BFS path is shared.
            if algorithm == "fl" and tier != "python":
                continue

            def run(runner: Callable[[str], Any] = runner, tier: str = tier) -> None:
                with use_kernels(tier):
                    runner(tier)

            cases.append(
                {
                    "id": f"search/{algorithm}/{tier}",
                    "fn": run,
                    "warmup": tier == "jit",
                    "meta": {
                        "nodes": nodes,
                        "queries": queries,
                        "tier": tier,
                        "algorithm": algorithm,
                    },
                }
            )
    return cases


def _substrate_cases(quick: bool, tiers: Sequence[str]) -> List[Dict[str, Any]]:
    from repro.kernels.dispatch import use_kernels
    from repro.substrate.grn import GeometricRandomNetwork

    nodes = 2000 if quick else 20_000
    cases: List[Dict[str, Any]] = []
    for tier in tiers:
        def build(nodes: int = nodes, tier: str = tier) -> None:
            builder = GeometricRandomNetwork(
                nodes, target_mean_degree=10.0, torus=True, seed=BENCH_SEED
            )
            with use_kernels(tier):
                builder.generate_graph()

        cases.append(
            {
                "id": f"substrate-grn/{tier}",
                "fn": build,
                "warmup": tier == "jit",
                "meta": {"nodes": nodes, "tier": tier, "substrate": "grn"},
            }
        )
    return cases


def _store_cases(quick: bool) -> List[Dict[str, Any]]:
    from repro.engine.store import ResultStore
    from repro.experiments.results import ExperimentResult, Series
    from repro.experiments.runner import ExperimentScale

    rounds = 5 if quick else 20

    def roundtrip() -> None:
        result = ExperimentResult("bench", "store round-trip probe")
        for index in range(4):
            result.add(
                Series(
                    label=f"series-{index}",
                    x=list(range(200)),
                    y=[float(value) for value in range(200)],
                    metadata={"index": index},
                )
            )
        scale = ExperimentScale.smoke()
        with tempfile.TemporaryDirectory() as root:
            store = ResultStore(root)
            for round_index in range(rounds):
                store.put(f"bench-{round_index}", scale, result)
                fetched = store.get(f"bench-{round_index}", scale)
                assert fetched is not None

    return [
        {
            "id": "store/roundtrip",
            "fn": roundtrip,
            "warmup": False,
            "meta": {"rounds": rounds, "series": 4, "points": 200},
        }
    ]


def _graph_degree_probe(graph: Any, node: int) -> int:
    """Module-level (picklable) task body for the handoff benchmark."""
    return graph.degree(node)


def _handoff_cases(quick: bool) -> List[Dict[str, Any]]:
    """Per-task graph-transfer cost: shared memory vs raw pickling.

    The same frozen CSR topology crosses a 2-worker pool boundary once per
    task; the task body is a single ``degree()`` call, so the measured time
    is dominated by the transfer.  With ``share_graphs=True`` each worker
    maps the segments once and every further task ships a ~130-byte
    handle — the shm case must not scale with edge count, the pickle case
    does.
    """
    from repro.core.shm import shm_available
    from repro.engine.executor import ParallelExecutor
    from repro.engine.tasks import Task
    from repro.generators.pa import generate_pa

    nodes = 2000 if quick else 20_000
    tasks_per_run = 8
    frozen = generate_pa(nodes, stubs=2, hard_cutoff=40, seed=BENCH_SEED).freeze()

    def run(share: bool) -> None:
        with ParallelExecutor(jobs=2, share_graphs=share) as executor:
            tasks = [
                Task(fn=_graph_degree_probe, args=(frozen, node), key=f"d{node}")
                for node in range(tasks_per_run)
            ]
            executor.run(tasks)

    cases: List[Dict[str, Any]] = [
        {
            "id": "engine/graph-handoff/pickle",
            "fn": lambda: run(False),
            "warmup": False,
            "meta": {"nodes": nodes, "tasks": tasks_per_run, "shared": False},
        }
    ]
    if shm_available():
        cases.append(
            {
                "id": "engine/graph-handoff/shm",
                "fn": lambda: run(True),
                "warmup": False,
                "meta": {"nodes": nodes, "tasks": tasks_per_run, "shared": True},
            }
        )
    return cases


# --------------------------------------------------------------------------- #
# Suite driver
# --------------------------------------------------------------------------- #
def run_benchmarks(
    quick: bool = False,
    only: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str, float], None]] = None,
) -> Dict[str, Any]:
    """Run the pinned suite and return the trajectory payload.

    Parameters
    ----------
    quick:
        Use the small sizes (CI / test mode) instead of fig1/fig9 scale.
    only:
        Optional id-prefix filter (e.g. ``["generate/pa", "store"]``).
    progress:
        Optional callback invoked with ``(benchmark_id, seconds)`` as each
        benchmark finishes.
    """
    from repro.kernels._compat import NUMBA_AVAILABLE, NUMBA_VERSION
    from repro.kernels.dispatch import kernel_tier, kernels_runtime

    tiers: List[str] = ["python"]
    if kernel_tier() == "jit":
        tiers.append("jit")

    cases = (
        _generation_cases(quick, tiers)
        + _substrate_cases(quick, tiers)
        + _search_cases(quick, tiers)
        + _store_cases(quick)
        + _handoff_cases(quick)
    )
    if only:
        prefixes = tuple(only)
        cases = [case for case in cases if str(case["id"]).startswith(prefixes)]

    repeats = 1 if quick else 2
    benchmarks: List[Dict[str, Any]] = []
    for case in cases:
        seconds = _time_call(case["fn"], repeats=repeats, warmup=bool(case["warmup"]))
        benchmarks.append(
            {
                "id": case["id"],
                "seconds": seconds,
                "repeats": repeats,
                "meta": dict(case["meta"]),
            }
        )
        if progress is not None:
            progress(str(case["id"]), seconds)

    return {
        "schema": BENCH_SCHEMA_VERSION,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "date": time.strftime("%Y%m%d"),
        "git_sha": _git_sha(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "numba": NUMBA_VERSION if NUMBA_AVAILABLE else None,
        "kernels_runtime": kernels_runtime(),
        "quick": bool(quick),
        "seed": BENCH_SEED,
        "benchmarks": benchmarks,
    }


def compare_benchmarks(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.25,
) -> Dict[str, Any]:
    """Diff two trajectory payloads; flag relative wall-time regressions.

    A shared benchmark regresses when ``current > baseline * (1 +
    tolerance)``.  Benchmarks present on only one side are reported but do
    not fail the gate (tier availability legitimately differs across
    machines); an *empty* shared set fails closed — nothing compared is a
    broken comparison, not a pass.
    """
    if baseline.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"baseline bench schema {baseline.get('schema')!r} is not "
            f"readable by this build (expects {BENCH_SCHEMA_VERSION})"
        )
    current_by_id = {entry["id"]: entry for entry in current.get("benchmarks", [])}
    baseline_by_id = {entry["id"]: entry for entry in baseline.get("benchmarks", [])}
    shared = sorted(set(current_by_id) & set(baseline_by_id))
    rows: List[Dict[str, Any]] = []
    regressions = 0
    for bench_id in shared:
        new_seconds = float(current_by_id[bench_id]["seconds"])
        old_seconds = float(baseline_by_id[bench_id]["seconds"])
        ratio = new_seconds / old_seconds if old_seconds > 0 else float("inf")
        regressed = new_seconds > old_seconds * (1.0 + tolerance)
        regressions += int(regressed)
        rows.append(
            {
                "id": bench_id,
                "baseline_seconds": old_seconds,
                "current_seconds": new_seconds,
                "ratio": ratio,
                "regressed": regressed,
            }
        )
    return {
        "tolerance": tolerance,
        "ok": bool(shared) and regressions == 0,
        "regressions": regressions,
        "shared": len(shared),
        "only_in_current": sorted(set(current_by_id) - set(baseline_by_id)),
        "only_in_baseline": sorted(set(baseline_by_id) - set(current_by_id)),
        "rows": rows,
    }
