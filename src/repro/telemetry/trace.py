"""Ambient trace context: span identity that survives threads and pickling.

The collector (:mod:`repro.telemetry.collector`) records *span trees* — every
span has an id, a parent id, and monotonic start/end timestamps.  Parent
linkage is ambient, like the collector itself: a per-thread stack of
:class:`SpanContext` entries tracks the innermost open span, so instrumented
code never threads span handles through call signatures.

Two rules make the tree reassemble identically across execution modes:

* A span's parent is the innermost open span *of the same collector*.  A
  fresh worker-side collector therefore starts its own root — exactly what
  a ``ParallelExecutor`` worker process produces — even when the code runs
  serially in a thread that still has the parent process's spans open.
* The *trace id* (the request-scoped correlation key minted by
  ``repro serve``) is inherited across collector boundaries, and is pickled
  into workers explicitly (see ``repro.engine.executor._call_task_traced``)
  because thread-local stacks do not cross process boundaries.

:func:`to_chrome_trace` converts an exported payload into Chrome
trace-event JSON loadable in ``about:tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, NamedTuple, Optional

from repro.core.ambient import AmbientStack

__all__ = [
    "SpanContext",
    "new_trace_id",
    "current_span_context",
    "current_trace_id",
    "current_span_id",
    "use_span_context",
    "use_trace_id",
    "to_chrome_trace",
]


class SpanContext(NamedTuple):
    """One entry of the ambient span stack.

    ``collector`` is compared by identity when deciding span parentage and
    never crosses a process boundary — only ``trace_id`` is pickled into
    workers.
    """

    trace_id: Optional[str]
    span_id: Optional[int]
    collector: Optional[Any]


_SPAN_STACK: AmbientStack[SpanContext] = AmbientStack()


def new_trace_id() -> str:
    """Mint a request-scoped correlation id (16 hex chars)."""
    return uuid.uuid4().hex[:16]


def current_span_context() -> Optional[SpanContext]:
    """The innermost open span context of this thread, or ``None``."""
    return _SPAN_STACK.top(None)


def current_trace_id() -> Optional[str]:
    """The ambient trace id, or ``None`` outside any traced request."""
    context = _SPAN_STACK.top(None)
    return context.trace_id if context is not None else None


def current_span_id() -> Optional[int]:
    """The ambient span id, or ``None`` outside any open span."""
    context = _SPAN_STACK.top(None)
    return context.span_id if context is not None else None


@contextmanager
def use_span_context(context: Optional[SpanContext]) -> Iterator[None]:
    """Re-install a captured span context in another thread.

    Thread pools (the scenario compiler's plan threads) start with an empty
    ambient stack; workers call this with the context captured from their
    parent so their spans attach under the parent's open span.  ``None`` is
    a no-op, mirroring ``use_telemetry(None)``.
    """
    if context is not None:
        _SPAN_STACK.push(context)
    try:
        yield
    finally:
        if context is not None:
            _SPAN_STACK.pop()


@contextmanager
def use_trace_id(trace_id: Optional[str]) -> Iterator[None]:
    """Set the ambient trace id without opening a span (``None`` is a no-op).

    Used at request roots (``repro serve``) and on the worker side of the
    process pool, where the trace id arrives by value with the task.
    """
    if trace_id is not None:
        _SPAN_STACK.push(SpanContext(trace_id, None, None))
    try:
        yield
    finally:
        if trace_id is not None:
            _SPAN_STACK.pop()


def to_chrome_trace(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Convert an exported trace payload into Chrome trace-event JSON.

    Every span-tree node becomes one complete ("X") event with microsecond
    timestamps; span/parent/trace ids travel in ``args`` so Perfetto's query
    panel can slice by them.
    """
    events = []
    for node in payload.get("span_tree", []):
        args: Dict[str, Any] = dict(node.get("attrs") or {})
        args["span_id"] = node["id"]
        if node.get("parent") is not None:
            args["parent_id"] = node["parent"]
        if node.get("trace_id"):
            args["trace_id"] = node["trace_id"]
        events.append(
            {
                "name": node["name"],
                "cat": "repro",
                "ph": "X",
                "ts": node["start"] * 1e6,
                "dur": max(0.0, (node["end"] - node["start"]) * 1e6),
                "pid": 0,
                "tid": node.get("tid", 0),
                "args": args,
            }
        )
    events.sort(key=lambda event: (event["ts"], -event["dur"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": payload.get("schema"),
            "counters": payload.get("counters", {}),
        },
    }
