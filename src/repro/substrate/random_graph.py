"""Erdős–Rényi random-graph substrate.

Not used by the paper's headline experiments, but a useful baseline: the
paper repeatedly contrasts scale-free overlays with "other random networks"
(whose diameter scales as ln N and whose search behaviour lacks hubs), and
the GRN documentation motivates the choice of a *geometric* random graph over
a "highly random network".  Having a G(N, p) builder lets the test-suite and
ablation benches quantify those statements.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.errors import ConfigurationError
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.kernels.dispatch import kernel_generation_ready
from repro.substrate.base import SubstrateNetwork

__all__ = ["ErdosRenyiNetwork", "generate_erdos_renyi"]


class ErdosRenyiNetwork(SubstrateNetwork):
    """Build a G(N, p) random graph (optionally parameterised by mean degree).

    Parameters
    ----------
    number_of_nodes:
        Number of nodes ``N``.
    edge_probability:
        Independent probability ``p`` of each of the ``N(N-1)/2`` edges.
    target_mean_degree:
        Alternative to ``edge_probability``: ``p = <k> / (N - 1)``.
    seed:
        Optional RNG seed.

    Examples
    --------
    >>> graph = ErdosRenyiNetwork(200, target_mean_degree=6.0, seed=2).generate_graph()
    >>> graph.number_of_nodes
    200
    >>> 3.0 < graph.mean_degree() < 9.0
    True
    """

    substrate_name = "erdos_renyi"

    def __init__(
        self,
        number_of_nodes: int,
        edge_probability: Optional[float] = None,
        target_mean_degree: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> None:
        if number_of_nodes < 2:
            raise ConfigurationError("number_of_nodes must be at least 2")
        if edge_probability is None and target_mean_degree is None:
            raise ConfigurationError(
                "either edge_probability or target_mean_degree must be provided"
            )
        if edge_probability is not None and not 0.0 <= edge_probability <= 1.0:
            raise ConfigurationError("edge_probability must be in [0, 1]")
        if target_mean_degree is not None and target_mean_degree < 0:
            raise ConfigurationError("target_mean_degree must be non-negative")
        self.number_of_nodes = number_of_nodes
        self.edge_probability = edge_probability
        self.target_mean_degree = target_mean_degree
        self.seed = seed

    def parameters(self) -> Dict[str, Any]:
        return {
            "substrate": self.substrate_name,
            "number_of_nodes": self.number_of_nodes,
            "edge_probability": self.edge_probability,
            "target_mean_degree": self.target_mean_degree,
            "effective_probability": self.effective_probability(),
            "seed": self.seed,
        }

    def effective_probability(self) -> float:
        """Return the edge probability ``p`` actually used."""
        if self.edge_probability is not None:
            return self.edge_probability
        return min(1.0, float(self.target_mean_degree) / (self.number_of_nodes - 1))

    def build(self, rng: RandomSource) -> Graph:
        n = self.number_of_nodes
        p = self.effective_probability()
        if p <= 0.0:
            return Graph(n)
        if kernel_generation_ready(rng):
            from repro.kernels.substrate import er_build

            return er_build(n, p, rng)
        return self._build_reference(rng, p)

    def _build_reference(self, rng: RandomSource, p: float) -> Graph:
        """Pure-Python skip loop — the kernel path's reference (``p > 0``)."""
        n = self.number_of_nodes
        graph = Graph(n)
        # Geometric skipping (Batagelj & Brandes) keeps construction
        # O(N + E) instead of O(N^2) for the sparse graphs we build.
        import math

        log_one_minus_p = math.log(1.0 - p) if p < 1.0 else None
        u, v = 1, -1
        while u < n:
            if p >= 1.0:
                v += 1
            else:
                r = rng.random()
                v += 1 + int(math.floor(math.log(1.0 - r) / log_one_minus_p))
            while v >= u and u < n:
                v -= u
                u += 1
            if u < n:
                graph.add_edge(u, v)
        return graph


def generate_erdos_renyi(
    number_of_nodes: int,
    edge_probability: Optional[float] = None,
    target_mean_degree: Optional[float] = None,
    seed: Optional[int] = None,
    rng: Optional[RandomSource] = None,
) -> Graph:
    """Generate a G(N, p) random graph and return it.

    Examples
    --------
    >>> graph = generate_erdos_renyi(100, target_mean_degree=4.0, seed=1)
    >>> graph.number_of_nodes
    100
    """
    builder = ErdosRenyiNetwork(
        number_of_nodes=number_of_nodes,
        edge_probability=edge_probability,
        target_mean_degree=target_mean_degree,
        seed=seed,
    )
    return builder.generate_graph(rng)
