"""Substrate (underlay) network models.

The DAPA construction (paper §IV-B) builds the P2P overlay *on top of* a
pre-existing substrate network: nodes discover candidate peers by querying
their substrate neighborhood up to ``τ_sub`` hops.  The paper uses a
two-dimensional geometric random network (GRN) with a giant component as the
substrate because "it is topologically closer to real life nodes in the
Internet than a regular or highly random network", and mentions a 2-D regular
mesh as an alternative.

This subpackage provides:

* :class:`~repro.substrate.grn.GeometricRandomNetwork` — random points in the
  unit box linked when closer than a radius ``R`` (cell-list accelerated);
* :class:`~repro.substrate.mesh.MeshNetwork` — a 2-D regular lattice
  (optionally a torus);
* :class:`~repro.substrate.random_graph.ErdosRenyiNetwork` — a G(N, p)
  baseline used in tests and ablations;
* :func:`~repro.substrate.horizon.bfs_horizon` /
  :func:`~repro.substrate.horizon.bfs_distances` — the bounded breadth-first
  searches a joining peer runs to discover its horizon.
"""

from repro.substrate.base import SubstrateNetwork
from repro.substrate.grn import GeometricRandomNetwork, generate_grn
from repro.substrate.horizon import bfs_distances, bfs_horizon, nodes_within
from repro.substrate.mesh import MeshNetwork, generate_mesh
from repro.substrate.random_graph import ErdosRenyiNetwork, generate_erdos_renyi

__all__ = [
    "ErdosRenyiNetwork",
    "GeometricRandomNetwork",
    "MeshNetwork",
    "SubstrateNetwork",
    "bfs_distances",
    "bfs_horizon",
    "generate_erdos_renyi",
    "generate_grn",
    "generate_mesh",
    "nodes_within",
]
