"""Common interface for substrate network builders."""

from __future__ import annotations

import abc
from typing import Any, Dict

from repro.core.graph import Graph
from repro.core.rng import RandomSource, ensure_source

__all__ = ["SubstrateNetwork"]


class SubstrateNetwork(abc.ABC):
    """Abstract base class for substrate (underlay) network builders.

    A substrate builder produces the fixed physical-connectivity graph that
    the DAPA overlay construction and the simulation layer operate on.  It is
    intentionally simpler than :class:`~repro.generators.base.TopologyGenerator`:
    substrates are inputs to overlay construction, not study objects in
    themselves, so only the graph and the parameters are exposed.

    Substrates sit on a jit realization's hot path (a DAPA build resolves
    one before its overlay can grow), so the stochastic builders follow the
    generators' two-tier contract: ``build`` consults
    :func:`repro.kernels.dispatch.kernel_generation_ready` and either emits
    edge arrays straight into the CSR backend through a compiled kernel
    (:mod:`repro.kernels.substrate`) or falls back to its dict-based
    ``_build_reference`` body — both tiers consuming the same draws and
    producing byte-identical graphs (same edges, same neighbor order, same
    final RNG stream position).  Deterministic substrates (the mesh) simply
    vectorize unconditionally.
    """

    #: Short machine-readable name; subclasses override.
    substrate_name: str = "abstract"

    @abc.abstractmethod
    def build(self, rng: RandomSource) -> Graph:
        """Construct and return the substrate graph."""

    @abc.abstractmethod
    def parameters(self) -> Dict[str, Any]:
        """Return the builder parameters as a JSON-friendly dict."""

    def generate_graph(self, rng: "RandomSource | int | None" = None) -> Graph:
        """Build the substrate using an optional random source or seed."""
        if rng is None:
            rng = getattr(self, "seed", None)
        return self.build(ensure_source(rng))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(
            f"{key}={value!r}"
            for key, value in self.parameters().items()  # repro-lint: disable=RPL102(debug repr only; no draws occur during or after this iteration)
        )
        return f"{type(self).__name__}({params})"
