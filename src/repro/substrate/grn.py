"""Geometric random network (GRN) substrate (paper §IV-B).

A GRN scatters ``N`` nodes uniformly at random in the unit square (or unit
interval / cube) and links every pair of nodes whose Euclidean distance is
below a connection radius ``R``.  Its degree distribution is Poissonian with
mean ``<k> ≈ N·V_d·R^d`` and, above a critical radius, the network has a
giant component — the paper uses ``<k> = 10`` (well above the 2-D critical
mean degree ≈ 4.52) so the substrate is essentially one connected blob.

Finding all pairs within distance ``R`` naively costs O(N²); this
implementation buckets nodes into a grid of cells of side ``R`` and only
compares nodes in neighboring cells, which is O(N·<k>) in the sparse regime
the paper operates in and makes the 2×10⁴-node substrate cheap to build.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import GRNConfig
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.kernels.dispatch import kernel_generation_ready
from repro.substrate.base import SubstrateNetwork

__all__ = ["GeometricRandomNetwork", "generate_grn", "CRITICAL_MEAN_DEGREE_2D"]

#: Critical mean degree for the appearance of a giant component in a 2-D GRN
#: (Dall & Christensen 2002, quoted by the paper as k ≈ 4.52).
CRITICAL_MEAN_DEGREE_2D = 4.52


class GeometricRandomNetwork(SubstrateNetwork):
    """Build a geometric random network in the unit box.

    Parameters
    ----------
    number_of_nodes:
        Number of nodes to scatter.
    radius:
        Connection radius ``R``.  Mutually optional with
        ``target_mean_degree``; see :class:`~repro.core.config.GRNConfig`.
    target_mean_degree:
        Desired average degree; the radius is derived from it when ``radius``
        is not given.
    dimensions:
        Spatial dimension (1, 2, or 3); the paper uses 2.
    torus:
        If ``True`` distances wrap around the box boundaries, which removes
        edge effects and makes the realised mean degree match the target more
        closely.
    seed:
        Optional RNG seed.

    Examples
    --------
    >>> builder = GeometricRandomNetwork(500, target_mean_degree=10.0, seed=5)
    >>> graph = builder.generate_graph()
    >>> graph.number_of_nodes
    500
    >>> 5.0 < graph.mean_degree() < 15.0
    True
    """

    substrate_name = "grn"

    def __init__(
        self,
        number_of_nodes: int,
        radius: Optional[float] = None,
        target_mean_degree: Optional[float] = None,
        dimensions: int = 2,
        torus: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        self.config = GRNConfig(
            number_of_nodes=number_of_nodes,
            radius=radius,
            target_mean_degree=target_mean_degree,
            dimensions=dimensions,
            torus=torus,
            seed=seed,
        )
        self.seed = seed
        #: Node coordinates of the most recently built graph (node -> tuple).
        self.positions: Dict[int, Tuple[float, ...]] = {}

    def parameters(self) -> Dict[str, Any]:
        return {
            "substrate": self.substrate_name,
            "number_of_nodes": self.config.number_of_nodes,
            "radius": self.config.radius,
            "target_mean_degree": self.config.target_mean_degree,
            "effective_radius": self.config.effective_radius(),
            "dimensions": self.config.dimensions,
            "torus": self.config.torus,
            "seed": self.seed,
        }

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def build(self, rng: RandomSource) -> Graph:
        if kernel_generation_ready(rng):
            from repro.kernels.substrate import grn_build_arrays

            graph, positions = grn_build_arrays(self.config, rng)
            self.positions = {
                node: tuple(row) for node, row in enumerate(positions.tolist())
            }
            return graph
        return self._build_reference(rng)

    def _build_reference(self, rng: RandomSource) -> Graph:
        """Pure-Python dict-based build — the kernel path's reference."""
        config = self.config
        n = config.number_of_nodes
        radius = config.effective_radius()
        dimensions = config.dimensions

        positions = [
            tuple(rng.random() for _ in range(dimensions)) for _ in range(n)
        ]
        self.positions = dict(enumerate(positions))

        graph = Graph(n)
        radius_squared = radius * radius

        # Grid cells of side `radius`: points within `radius` of each other
        # are necessarily in the same or an adjacent cell.
        cells_per_side = max(1, int(math.floor(1.0 / radius)))
        cell_of: Dict[Tuple[int, ...], List[int]] = {}
        for node, position in enumerate(positions):
            key = tuple(
                min(cells_per_side - 1, int(coordinate * cells_per_side))
                for coordinate in position
            )
            cell_of.setdefault(key, []).append(node)

        neighbor_offsets = list(itertools.product((-1, 0, 1), repeat=dimensions))
        for key, members in cell_of.items():  # repro-lint: disable=RPL102(cell insertion order is a pure function of the already-drawn positions; the resulting edge order is pinned by the cross-tier equivalence suite)
            # Torus wrapping with cells_per_side <= 2 maps the +1 and -1
            # offsets onto the same neighbor cell; track the cells already
            # swept from this one so each unordered cell pair is visited
            # exactly once (duplicates used to burn redundant distance
            # checks and no-op add_edge calls).
            visited_neighbor_cells: set = set()
            for offset in neighbor_offsets:
                other_key = self._offset_key(key, offset, cells_per_side, config.torus)
                if other_key is None or other_key in visited_neighbor_cells:
                    continue
                visited_neighbor_cells.add(other_key)
                if other_key not in cell_of:
                    continue
                # Avoid visiting each unordered cell pair twice.
                if other_key < key:
                    continue
                candidates = cell_of[other_key]
                if other_key == key:
                    pairs = itertools.combinations(members, 2)
                else:
                    pairs = itertools.product(members, candidates)
                for u, v in pairs:
                    if self._distance_squared(
                        positions[u], positions[v], config.torus
                    ) <= radius_squared:
                        graph.add_edge(u, v)
        return graph

    @staticmethod
    def _offset_key(
        key: Tuple[int, ...],
        offset: Tuple[int, ...],
        cells_per_side: int,
        torus: bool,
    ) -> Optional[Tuple[int, ...]]:
        shifted = []
        for coordinate, delta in zip(key, offset):
            value = coordinate + delta
            if torus:
                value %= cells_per_side
            elif value < 0 or value >= cells_per_side:
                return None
            shifted.append(value)
        return tuple(shifted)

    @staticmethod
    def _distance_squared(
        a: Tuple[float, ...], b: Tuple[float, ...], torus: bool
    ) -> float:
        total = 0.0
        for x, y in zip(a, b):
            delta = abs(x - y)
            if torus:
                delta = min(delta, 1.0 - delta)
            total += delta * delta
        return total


def generate_grn(
    number_of_nodes: int,
    radius: Optional[float] = None,
    target_mean_degree: Optional[float] = None,
    dimensions: int = 2,
    torus: bool = False,
    seed: Optional[int] = None,
    rng: Optional[RandomSource] = None,
) -> Graph:
    """Generate a geometric random network and return the graph.

    Examples
    --------
    >>> graph = generate_grn(300, target_mean_degree=8.0, seed=11)
    >>> graph.number_of_nodes
    300
    """
    builder = GeometricRandomNetwork(
        number_of_nodes=number_of_nodes,
        radius=radius,
        target_mean_degree=target_mean_degree,
        dimensions=dimensions,
        torus=torus,
        seed=seed,
    )
    return builder.generate_graph(rng)
