"""Two-dimensional regular mesh substrate (paper §IV-B).

The paper mentions a "two-dimensional regular network (mesh with nodes
connected to four neighbors in four different directions)" as one of the two
substrate topologies DAPA can run on.  Nodes are laid out on a
``rows × columns`` grid; node ``(r, c)`` is mapped to id ``r * columns + c``
and connected to its von Neumann neighbors.  With ``torus=True`` the grid
wraps so every node has exactly four neighbors; otherwise border nodes have
two or three.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.config import MeshConfig
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.substrate.base import SubstrateNetwork

__all__ = ["MeshNetwork", "generate_mesh"]


class MeshNetwork(SubstrateNetwork):
    """Build a 2-D regular lattice substrate.

    Examples
    --------
    >>> mesh = MeshNetwork(4, 5)
    >>> graph = mesh.generate_graph()
    >>> graph.number_of_nodes
    20
    >>> graph.degree(mesh.node_id(0, 0))   # corner node
    2
    >>> torus = MeshNetwork(4, 5, torus=True).generate_graph()
    >>> set(torus.degree_sequence()) == {4}
    True
    """

    substrate_name = "mesh"

    def __init__(self, rows: int, columns: int, torus: bool = False) -> None:
        self.config = MeshConfig(rows=rows, columns=columns, torus=torus)
        self.seed: Optional[int] = None  # deterministic substrate

    def parameters(self) -> Dict[str, Any]:
        return {
            "substrate": self.substrate_name,
            "rows": self.config.rows,
            "columns": self.config.columns,
            "torus": self.config.torus,
        }

    def node_id(self, row: int, column: int) -> int:
        """Return the node id of grid position ``(row, column)``."""
        return row * self.config.columns + column

    def position(self, node: int) -> Tuple[int, int]:
        """Return the ``(row, column)`` grid position of ``node``."""
        return divmod(node, self.config.columns)

    def build(self, rng: RandomSource) -> Graph:  # rng unused; mesh is deterministic
        """Vectorized build: per-node (right, down) edge arrays straight into
        the CSR backend — same edges in the same insertion order as the
        reference loop, with no Python adjacency dict on the way."""
        rows, columns, torus = self.config.rows, self.config.columns, self.config.torus
        n = rows * columns
        nodes = np.arange(n, dtype=np.int64)
        row_of = nodes // columns
        col_of = nodes % columns

        right = np.full(n, -1, dtype=np.int64)
        inner_right = col_of < columns - 1
        right[inner_right] = nodes[inner_right] + 1
        if torus and columns > 2:
            right[~inner_right] = nodes[~inner_right] - (columns - 1)
        down = np.full(n, -1, dtype=np.int64)
        inner_down = row_of < rows - 1
        down[inner_down] = nodes[inner_down] + columns
        if torus and rows > 2:
            down[~inner_down] = col_of[~inner_down]

        # Interleave so the edge order is the reference's: for each node,
        # its right edge then its down edge.
        targets = np.stack((right, down), axis=1).ravel()
        origins = np.repeat(nodes, 2)
        mask = targets >= 0
        edge_u = origins[mask]
        edge_v = targets[mask]
        if edge_u.size == 0:
            return Graph(n)
        return Graph.from_edge_array(n, edge_u, edge_v)

    def _build_reference(self) -> Graph:
        """The original add_edge loop — kept as the array path's reference."""
        rows, columns, torus = self.config.rows, self.config.columns, self.config.torus
        graph = Graph(rows * columns)
        for row in range(rows):
            for column in range(columns):
                node = self.node_id(row, column)
                right_column = column + 1
                down_row = row + 1
                if right_column < columns:
                    graph.add_edge(node, self.node_id(row, right_column))
                elif torus and columns > 2:
                    graph.add_edge(node, self.node_id(row, 0))
                if down_row < rows:
                    graph.add_edge(node, self.node_id(down_row, column))
                elif torus and rows > 2:
                    graph.add_edge(node, self.node_id(0, column))
        return graph


def generate_mesh(rows: int, columns: int, torus: bool = False) -> Graph:
    """Generate a 2-D mesh substrate and return the graph.

    Examples
    --------
    >>> generate_mesh(3, 3).number_of_nodes
    9
    """
    return MeshNetwork(rows=rows, columns=columns, torus=torus).generate_graph()
