"""Bounded breadth-first searches over the substrate.

A DAPA joining node runs a breadth-first search on the substrate, limited to
``τ_sub`` hops, to discover the peers in its *horizon* (paper Algorithm 4,
lines 4–10).  These helpers implement that primitive and a couple of closely
related queries used by the simulation and analysis layers.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

from repro.core.errors import NodeNotFoundError
from repro.core.graph import Graph
from repro.core.types import NodeId

__all__ = ["bfs_distances", "bfs_horizon", "nodes_within"]


def bfs_distances(
    graph: Graph, source: NodeId, max_depth: Optional[int] = None
) -> Dict[NodeId, int]:
    """Return hop distances from ``source`` to every reachable node.

    Parameters
    ----------
    graph:
        The graph to traverse.
    source:
        Starting node.
    max_depth:
        If given, the traversal stops expanding beyond this depth; only nodes
        within ``max_depth`` hops appear in the result.

    Returns
    -------
    dict
        Mapping ``node -> distance`` including ``source -> 0``.

    Examples
    --------
    >>> g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    >>> bfs_distances(g, 0)
    {0: 0, 1: 1, 2: 2, 3: 3}
    >>> bfs_distances(g, 0, max_depth=2)
    {0: 0, 1: 1, 2: 2}
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances: Dict[NodeId, int] = {source: 0}
    frontier = deque([source])
    while frontier:
        current = frontier.popleft()
        depth = distances[current]
        if max_depth is not None and depth >= max_depth:
            continue
        # Defined-order expansion (edge-insertion order, not set order):
        # the distance *values* are order-independent, but iterating the
        # neighbor set here made the returned dict's insertion order — and
        # therefore any downstream iteration of it — process-salted.
        for neighbor in graph.iter_neighbors(current):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                frontier.append(neighbor)
    return distances


def bfs_horizon(
    graph: Graph,
    source: NodeId,
    max_depth: int,
    eligible: Optional[Set[NodeId]] = None,
) -> List[NodeId]:
    """Return the nodes within ``max_depth`` hops of ``source`` (excluding it).

    When ``eligible`` is given only nodes from that set are returned (this is
    the DAPA filter "i ∈ G_O": only nodes that are already overlay peers are
    attachment candidates), but *all* substrate nodes are still traversed —
    a non-peer node can lie on the path to a peer.

    Examples
    --------
    >>> g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    >>> bfs_horizon(g, 0, 2)
    [1, 2]
    >>> bfs_horizon(g, 0, 3, eligible={2, 3, 4})
    [2, 3]
    """
    distances = bfs_distances(graph, source, max_depth=max_depth)
    horizon = [node for node in distances if node != source]
    if eligible is not None:
        horizon = [node for node in horizon if node in eligible]
    horizon.sort(key=lambda node: (distances[node], node))
    return horizon


def nodes_within(graph: Graph, sources: Iterable[NodeId], max_depth: int) -> Set[NodeId]:
    """Return the union of ``max_depth``-hop neighborhoods of several sources.

    Used by the churn simulator to estimate the region of the overlay a
    departing peer's neighbors can rewire into.
    """
    covered: Set[NodeId] = set()
    for source in sources:
        covered.update(bfs_distances(graph, source, max_depth=max_depth))
    return covered
