"""Core primitives shared by every subsystem of :mod:`repro`.

This subpackage provides the foundational building blocks used by the
topology generators, search algorithms, analysis routines, and the P2P
simulation layer:

``graph``
    A compact adjacency-list undirected graph implementation
    (:class:`~repro.core.graph.Graph`) designed for the access patterns of
    the paper's algorithms: degree queries, random neighbor selection,
    edge-existence checks, and incremental growth.

``csr``
    A frozen compressed-sparse-row snapshot
    (:class:`~repro.core.csr.CSRGraph`) of a finished graph, with
    vectorized search kernels for the read-only search phase.

``backend``
    Ambient selection between the mutable ``adj`` backend and the frozen
    ``csr`` backend (:func:`~repro.core.backend.use_backend`).

``shm``
    Shared-memory transport for frozen graphs
    (:class:`~repro.core.shm.SharedGraphRegistry`): worker processes map
    ``indptr``/``indices`` zero-copy instead of re-unpickling them per task.

``rng``
    A seedable random-source façade (:class:`~repro.core.rng.RandomSource`)
    so every stochastic component of the library is reproducible.

``config``
    Validated configuration dataclasses for generators and searches.

``errors``
    The library-wide exception hierarchy.

``types``
    Shared light-weight type aliases and small value objects.
"""

from repro.core.backend import (
    BACKENDS,
    DEFAULT_BACKEND,
    KERNEL_MODES,
    active_backend,
    active_kernels,
    freeze_for_backend,
    kernel_tier,
    normalize_backend,
    normalize_kernels,
    use_backend,
    use_kernels,
)
from repro.core.csr import CSRGraph
from repro.core.shm import (
    SharedCSRGraph,
    SharedGraphRegistry,
    attach_shared_graph,
    shm_available,
)
from repro.core.errors import (
    ConfigurationError,
    CutoffError,
    GenerationError,
    GraphError,
    ReproError,
    SearchError,
    SimulationError,
)
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.core.types import DegreeSequence, EdgeList, NodeId

__all__ = [
    "BACKENDS",
    "CSRGraph",
    "ConfigurationError",
    "CutoffError",
    "DEFAULT_BACKEND",
    "DegreeSequence",
    "EdgeList",
    "GenerationError",
    "Graph",
    "GraphError",
    "NodeId",
    "RandomSource",
    "ReproError",
    "SearchError",
    "SharedCSRGraph",
    "SharedGraphRegistry",
    "SimulationError",
    "KERNEL_MODES",
    "attach_shared_graph",
    "shm_available",
    "active_backend",
    "active_kernels",
    "freeze_for_backend",
    "kernel_tier",
    "normalize_backend",
    "normalize_kernels",
    "use_backend",
    "use_kernels",
]
