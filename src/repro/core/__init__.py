"""Core primitives shared by every subsystem of :mod:`repro`.

This subpackage provides the foundational building blocks used by the
topology generators, search algorithms, analysis routines, and the P2P
simulation layer:

``graph``
    A compact adjacency-list undirected graph implementation
    (:class:`~repro.core.graph.Graph`) designed for the access patterns of
    the paper's algorithms: degree queries, random neighbor selection,
    edge-existence checks, and incremental growth.

``rng``
    A seedable random-source façade (:class:`~repro.core.rng.RandomSource`)
    so every stochastic component of the library is reproducible.

``config``
    Validated configuration dataclasses for generators and searches.

``errors``
    The library-wide exception hierarchy.

``types``
    Shared light-weight type aliases and small value objects.
"""

from repro.core.errors import (
    ConfigurationError,
    CutoffError,
    GenerationError,
    GraphError,
    ReproError,
    SearchError,
    SimulationError,
)
from repro.core.graph import Graph
from repro.core.rng import RandomSource
from repro.core.types import DegreeSequence, EdgeList, NodeId

__all__ = [
    "ConfigurationError",
    "CutoffError",
    "DegreeSequence",
    "EdgeList",
    "GenerationError",
    "Graph",
    "GraphError",
    "NodeId",
    "RandomSource",
    "ReproError",
    "SearchError",
    "SimulationError",
]
