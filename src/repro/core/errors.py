"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by the library derive from
:class:`ReproError` so that callers can catch library failures with a single
``except`` clause while still being able to distinguish the failing
subsystem.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "GenerationError",
    "CutoffError",
    "ConfigurationError",
    "SearchError",
    "SimulationError",
    "AnalysisError",
    "ExperimentError",
    "ScenarioError",
]


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class GraphError(ReproError):
    """A graph-structure operation failed (invalid node, edge, or state)."""


class NodeNotFoundError(GraphError, KeyError):
    """An operation referenced a node that is not present in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An operation referenced an edge that is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class GenerationError(ReproError):
    """A topology generator could not produce a valid network."""


class CutoffError(GenerationError):
    """A hard-cutoff constraint was violated or is unsatisfiable.

    Raised, for example, when a caller requests more stubs per node than the
    hard cutoff allows (``m > kc``), which can never produce a valid graph.
    """


class ConfigurationError(ReproError, ValueError):
    """A configuration object contains invalid or inconsistent parameters."""


class SearchError(ReproError):
    """A search algorithm was invoked with invalid parameters or state."""


class SimulationError(ReproError):
    """The P2P simulation layer encountered an invalid operation."""


class AnalysisError(ReproError):
    """An analysis routine received data it cannot process."""


class ExperimentError(ReproError):
    """The experiment harness failed to run or aggregate an experiment."""


class ScenarioError(ExperimentError, ValueError):
    """A scenario specification is invalid or cannot be compiled.

    Raised eagerly during :meth:`~repro.scenarios.ScenarioSpec.validate` /
    ``from_dict`` with a message naming the offending field, so spec authors
    get actionable feedback before any realization work starts.
    """
