"""Shared type aliases and small value objects.

The library deliberately keeps node identifiers as plain integers: the
paper's algorithms index nodes ``0..N-1`` and integer ids keep the adjacency
structures compact and hashing cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = [
    "NodeId",
    "Edge",
    "EdgeList",
    "DegreeSequence",
    "DegreeHistogram",
    "GraphStats",
]

#: A node identifier.  Nodes are integers in ``range(number_of_nodes)``.
NodeId = int

#: An undirected edge, stored as an ordered pair ``(min(u, v), max(u, v))``.
Edge = Tuple[NodeId, NodeId]

#: A list of undirected edges.
EdgeList = List[Edge]

#: A degree sequence: ``sequence[i]`` is the (target or actual) degree of node ``i``.
DegreeSequence = Sequence[int]

#: Mapping from degree value ``k`` to the number of nodes with that degree.
DegreeHistogram = dict


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics for a graph, as reported by :meth:`Graph.stats`.

    Attributes
    ----------
    number_of_nodes:
        Total node count ``N``.
    number_of_edges:
        Total undirected edge count.
    min_degree:
        Smallest node degree (0 for an empty or isolated-node graph).
    max_degree:
        Largest node degree; the empirical cutoff of the network.
    mean_degree:
        Average degree ``2 * E / N`` (0.0 for an empty graph).
    """

    number_of_nodes: int
    number_of_edges: int
    min_degree: int
    max_degree: int
    mean_degree: float

    def as_dict(self) -> dict:
        """Return the statistics as a plain dictionary (JSON-friendly)."""
        return {
            "number_of_nodes": self.number_of_nodes,
            "number_of_edges": self.number_of_edges,
            "min_degree": self.min_degree,
            "max_degree": self.max_degree,
            "mean_degree": self.mean_degree,
        }
