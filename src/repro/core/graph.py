"""Adjacency-list undirected graph.

:class:`Graph` is the data structure every generator, search algorithm, and
the simulation layer operate on.  It is deliberately small and tuned for the
access patterns of the paper's algorithms:

* constant-time degree queries (``ktotal`` and per-node degrees drive the
  preferential-attachment acceptance test),
* constant-time edge-existence checks (``node not in Adj[i]`` in the
  pseudo-code),
* O(1) uniform random neighbor selection (the HAPA hop and the random-walk
  step),
* incremental growth one node / edge at a time,
* cheap conversion to :mod:`networkx` for the analysis code that benefits
  from the mature algorithms there.

Nodes are integers.  Parallel edges are not stored (an ``add_edge`` on an
existing edge is a no-op returning ``False``) and self-loops are rejected,
which matches the paper's models: the configuration model explicitly deletes
self-loops and multi-edges after stub matching, and the growth models never
create them in the first place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Set, Tuple

import networkx as nx
import numpy as np

from repro.core.errors import GraphError, NodeNotFoundError
from repro.core.rng import RandomSource
from repro.core.types import Edge, GraphStats, NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (csr imports us)
    from repro.core.csr import CSRGraph

__all__ = ["Graph"]


class Graph:
    """A mutable, undirected, simple graph over integer node ids.

    Parameters
    ----------
    number_of_nodes:
        If given, nodes ``0 .. number_of_nodes - 1`` are created up front.

    Examples
    --------
    >>> g = Graph(3)
    >>> g.add_edge(0, 1)
    True
    >>> g.degree(0)
    1
    >>> sorted(g.neighbors(1))
    [0]
    >>> g.has_edge(1, 0)
    True
    """

    __slots__ = (
        "_adjacency",
        "_neighbor_lists",
        "_number_of_edges",
        "_total_degree",
        "_csr_cache",
    )

    def __init__(self, number_of_nodes: int = 0) -> None:
        if number_of_nodes < 0:
            raise GraphError("number_of_nodes must be non-negative")
        # Set-based adjacency for O(1) membership tests.
        self._adjacency: Dict[NodeId, Set[NodeId]] = {
            node: set() for node in range(number_of_nodes)
        }
        # List-based adjacency mirrors, kept in sync, for O(1) random
        # neighbor selection without materialising the set each time.
        self._neighbor_lists: Dict[NodeId, List[NodeId]] = {
            node: [] for node in range(number_of_nodes)
        }
        self._number_of_edges = 0
        self._total_degree = 0
        # Prebuilt CSRGraph snapshot from a bulk constructor; makes
        # freeze() free and is dropped on any mutation.
        self._csr_cache = None

    # ------------------------------------------------------------------ #
    # Node operations
    # ------------------------------------------------------------------ #
    def add_node(self, node: Optional[NodeId] = None) -> NodeId:
        """Add a node and return its id.

        If ``node`` is ``None`` the next unused integer id is assigned.
        Adding an existing node is a no-op.
        """
        if node is None:
            node = len(self._adjacency)
            while node in self._adjacency:  # defensive: ids may be sparse
                node += 1
        if node < 0:
            raise GraphError("node ids must be non-negative integers")
        if node not in self._adjacency:
            self._adjacency[node] = set()
            self._neighbor_lists[node] = []
            self._csr_cache = None
        return node

    def add_nodes(self, count: int) -> List[NodeId]:
        """Add ``count`` fresh nodes and return their ids."""
        return [self.add_node() for _ in range(count)]

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and all its incident edges."""
        if node not in self._adjacency:
            raise NodeNotFoundError(node)
        for neighbor in list(self._adjacency[node]):
            self.remove_edge(node, neighbor)
        del self._adjacency[node]
        del self._neighbor_lists[node]
        self._csr_cache = None

    def has_node(self, node: NodeId) -> bool:
        """Return ``True`` if ``node`` is in the graph."""
        return node in self._adjacency

    def nodes(self) -> List[NodeId]:
        """Return a list of all node ids (in insertion order)."""
        return list(self._adjacency.keys())

    def __contains__(self, node: object) -> bool:
        return node in self._adjacency

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adjacency)

    def __len__(self) -> int:
        return len(self._adjacency)

    @property
    def number_of_nodes(self) -> int:
        """Total number of nodes ``N``."""
        return len(self._adjacency)

    # ------------------------------------------------------------------ #
    # Edge operations
    # ------------------------------------------------------------------ #
    def add_edge(self, u: NodeId, v: NodeId) -> bool:
        """Add the undirected edge ``(u, v)``.

        Returns ``True`` if the edge was added, ``False`` if it already
        existed.  Self-loops raise :class:`GraphError`; referencing a missing
        node raises :class:`NodeNotFoundError`.
        """
        if u == v:
            raise GraphError(f"self-loops are not allowed (node {u})")
        if u not in self._adjacency:
            raise NodeNotFoundError(u)
        if v not in self._adjacency:
            raise NodeNotFoundError(v)
        if v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._neighbor_lists[u].append(v)
        self._neighbor_lists[v].append(u)
        self._number_of_edges += 1
        self._total_degree += 2
        self._csr_cache = None
        return True

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the undirected edge ``(u, v)``; missing edges are ignored."""
        if u not in self._adjacency or v not in self._adjacency:
            raise NodeNotFoundError(u if u not in self._adjacency else v)
        if v not in self._adjacency[u]:
            return
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._neighbor_lists[u].remove(v)
        self._neighbor_lists[v].remove(u)
        self._number_of_edges -= 1
        self._total_degree -= 2
        self._csr_cache = None

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Return ``True`` if the undirected edge ``(u, v)`` exists."""
        neighbors = self._adjacency.get(u)
        return neighbors is not None and v in neighbors

    def edges(self) -> List[Edge]:
        """Return all edges as ``(min(u, v), max(u, v))`` pairs."""
        seen: List[Edge] = []
        for u, neighbors in self._adjacency.items():
            for v in neighbors:
                if u < v:
                    seen.append((u, v))
        return seen

    @property
    def number_of_edges(self) -> int:
        """Total number of undirected edges."""
        return self._number_of_edges

    # ------------------------------------------------------------------ #
    # Degrees and neighborhoods
    # ------------------------------------------------------------------ #
    def degree(self, node: NodeId) -> int:
        """Return the degree of ``node``."""
        try:
            return len(self._adjacency[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degrees(self) -> Dict[NodeId, int]:
        """Return a mapping ``node -> degree`` for every node."""
        return {node: len(neighbors) for node, neighbors in self._adjacency.items()}

    def degree_sequence(self) -> List[int]:
        """Return the list of degrees in node-id order."""
        return [len(self._adjacency[node]) for node in self._adjacency]

    @property
    def total_degree(self) -> int:
        """Sum of all degrees (``2 * number_of_edges``, the paper's ``ktotal``)."""
        return self._total_degree

    def min_degree(self) -> int:
        """Return the smallest degree (0 for an empty graph)."""
        if not self._adjacency:
            return 0
        return min(len(neighbors) for neighbors in self._adjacency.values())

    def max_degree(self) -> int:
        """Return the largest degree, i.e. the empirical cutoff of the network."""
        if not self._adjacency:
            return 0
        return max(len(neighbors) for neighbors in self._adjacency.values())

    def mean_degree(self) -> float:
        """Return the average degree ``2E / N`` (0.0 for an empty graph)."""
        if not self._adjacency:
            return 0.0
        return self._total_degree / len(self._adjacency)

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Return a list of the neighbors of ``node``."""
        try:
            return list(self._neighbor_lists[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def neighbor_set(self, node: NodeId) -> Set[NodeId]:
        """Return the neighbor set of ``node`` (do not mutate)."""
        try:
            return self._adjacency[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def iter_neighbors(self, node: NodeId) -> List[NodeId]:
        """Return the internal neighbor list of ``node`` — do **not** mutate.

        Unlike :meth:`neighbors` this does not copy.  The order is the edge
        insertion order, which is the *defined* neighbor order of the
        library: the frozen CSR backend preserves it, so every seeded draw
        the search algorithms make over a neighbor list lands on the same
        element regardless of backend (see ``tests/test_backend_equivalence``).
        """
        try:
            return self._neighbor_lists[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def random_neighbor(self, node: NodeId, rng: RandomSource) -> Optional[NodeId]:
        """Return a uniformly random neighbor of ``node`` or ``None`` if isolated.

        This is the ``RANDOM_LINK(i)`` primitive from the HAPA pseudo-code and
        the single step of a random walk.
        """
        neighbors = self._neighbor_lists.get(node)
        if neighbors is None:
            raise NodeNotFoundError(node)
        if not neighbors:
            return None
        return neighbors[rng.randint(0, len(neighbors) - 1)]

    def random_node(self, rng: RandomSource) -> NodeId:
        """Return a uniformly random node id."""
        if not self._adjacency:
            raise GraphError("cannot pick a random node from an empty graph")
        # Node ids are dense in all generated graphs, but fall back to an
        # explicit list when they are not (e.g. after removals).
        n = len(self._adjacency)
        candidate = rng.randint(0, n - 1)
        if candidate in self._adjacency:
            return candidate
        return rng.choice(list(self._adjacency.keys()))

    # ------------------------------------------------------------------ #
    # Whole-graph utilities
    # ------------------------------------------------------------------ #
    def copy(self) -> "Graph":
        """Return a deep copy of the graph."""
        clone = Graph()
        for node in self._adjacency:
            clone.add_node(node)
        for u, v in self.edges():
            clone.add_edge(u, v)
        return clone

    def subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """Return the subgraph induced by ``nodes``."""
        keep = set(nodes)
        missing = keep - set(self._adjacency)
        if missing:
            raise NodeNotFoundError(next(iter(missing)))
        sub = Graph()
        for node in keep:
            sub.add_node(node)
        for u in keep:
            for v in self._adjacency[u]:
                if v in keep and u < v:
                    sub.add_edge(u, v)
        return sub

    def freeze(self) -> "CSRGraph":
        """Return an immutable CSR snapshot of this graph.

        The snapshot (:class:`~repro.core.csr.CSRGraph`) preserves the
        per-node neighbor insertion order, implements the read-only part of
        this class's API, and unlocks the vectorized search kernels; use it
        for the generate-once / search-many phase of an experiment.  Later
        mutations of this graph do not affect the snapshot.

        Graphs built by :meth:`from_edge_array` carry their frozen snapshot
        already (the bulk constructor assembles it anyway), so freezing one
        is free — the shared immutable instance is returned — until the
        first mutation drops it.
        """
        from repro.core.csr import CSRGraph

        if self._csr_cache is not None:
            return self._csr_cache
        return CSRGraph.from_graph(self)

    def stats(self) -> GraphStats:
        """Return a :class:`~repro.core.types.GraphStats` summary."""
        return GraphStats(
            number_of_nodes=self.number_of_nodes,
            number_of_edges=self.number_of_edges,
            min_degree=self.min_degree(),
            max_degree=self.max_degree(),
            mean_degree=self.mean_degree(),
        )

    # ------------------------------------------------------------------ #
    # Interoperability
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> nx.Graph:
        """Convert to a :class:`networkx.Graph` (nodes and edges only)."""
        g = nx.Graph()
        g.add_nodes_from(self._adjacency.keys())
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, g: nx.Graph) -> "Graph":
        """Build a :class:`Graph` from a :class:`networkx.Graph`.

        Node labels must be hashable; they are relabelled to dense integers
        ``0..N-1`` in iteration order if they are not already integers.
        """
        labels = list(g.nodes())
        if all(isinstance(label, int) for label in labels):
            mapping = {label: label for label in labels}
            graph = cls()
            for label in labels:
                graph.add_node(label)
        else:
            mapping = {label: index for index, label in enumerate(labels)}
            graph = cls(len(labels))
        for u, v in g.edges():
            if u == v:
                continue  # drop self-loops on import
            graph.add_edge(mapping[u], mapping[v])
        return graph

    @classmethod
    def from_edges(cls, number_of_nodes: int, edges: Iterable[Edge]) -> "Graph":
        """Build a graph with ``number_of_nodes`` nodes and the given edges."""
        graph = cls(number_of_nodes)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    @classmethod
    def from_edge_array(
        cls,
        nodes: "int | Iterable[NodeId]",
        edge_u: "np.ndarray",
        edge_v: "np.ndarray",
        edges_are_rows: bool = False,
    ) -> "Graph":
        """Bulk-build a graph from ordered edge arrays (no per-edge Python).

        ``nodes`` is either a node count (dense ids ``0..N-1``) or an
        iterable of node ids in insertion order (e.g. a DAPA overlay's join
        order).  ``edge_u[i]``/``edge_v[i]`` are the endpoints of the
        ``i``-th edge, in the order incremental construction would have
        added them; the resulting per-node neighbor lists — the library's
        defined draw order — are identical to ``add_edge``-ing each pair in
        sequence.  With ``edges_are_rows`` the endpoints are positions into
        the node sequence instead of ids — the generator kernels emit rows
        directly, which skips the id-to-row translation loop for non-dense
        graphs.  Edges must be simple: self-loops and duplicates raise
        :class:`~repro.core.errors.GraphError`.

        This is the ingestion path for the generator kernels of
        :mod:`repro.kernels.generators`: they emit edge arrays, and this
        constructor turns them into a graph in a handful of vectorized
        operations — assembling the frozen
        :class:`~repro.core.csr.CSRGraph` snapshot directly along the way,
        so a ``freeze()`` under the ``csr`` backend costs nothing until the
        first mutation.

        Examples
        --------
        >>> import numpy as np
        >>> g = Graph.from_edge_array(4, np.array([0, 1, 2]), np.array([1, 2, 3]))
        >>> g.number_of_edges
        3
        >>> g.neighbors(1)
        [0, 2]
        """
        from repro.core.csr import CSRGraph

        edge_u = np.ascontiguousarray(edge_u, dtype=np.int64)
        edge_v = np.ascontiguousarray(edge_v, dtype=np.int64)
        if isinstance(nodes, (int, np.integer)):
            ids: Optional[List[int]] = None
            count = int(nodes)
        else:
            ids = [int(node) for node in nodes]
            count = len(ids)
            if len(set(ids)) != count:
                raise GraphError("node ids must be unique")
        if np.any(edge_u == edge_v):
            raise GraphError("self-loops are not allowed")
        if ids is None or edges_are_rows:
            row_u, row_v = edge_u, edge_v
        else:
            row_of = {node: row for row, node in enumerate(ids)}
            try:
                row_u = np.array([row_of[int(u)] for u in edge_u], dtype=np.int64)
                row_v = np.array([row_of[int(v)] for v in edge_v], dtype=np.int64)
            except KeyError as error:
                raise NodeNotFoundError(error.args[0]) from None
        if len(edge_u):
            low = np.minimum(row_u, row_v)
            high = np.maximum(row_u, row_v)
            keys = low * np.int64(count) + high
            if len(np.unique(keys)) != len(keys):
                raise GraphError("duplicate edges are not allowed")
        ids_array = None if ids is None else np.array(ids, dtype=np.int64)
        frozen = CSRGraph.from_edge_arrays(count, row_u, row_v, ids=ids_array)
        indptr, indices = frozen._indptr, frozen._indices

        graph = cls()
        id_list = ids if ids is not None else list(range(count))
        neighbor_values = indices if ids_array is None else ids_array[indices]
        flat = neighbor_values.tolist()
        lists = {
            node: flat[indptr[row] : indptr[row + 1]]
            for row, node in enumerate(id_list)
        }
        graph._neighbor_lists = lists
        graph._adjacency = {node: set(values) for node, values in lists.items()}
        graph._number_of_edges = len(edge_u)
        graph._total_degree = 2 * len(edge_u)
        graph._csr_cache = frozen
        return graph

    @classmethod
    def complete(cls, number_of_nodes: int) -> "Graph":
        """Return the complete graph on ``number_of_nodes`` nodes.

        The PA and HAPA growth models start from a fully connected seed of
        ``m + 1`` nodes; this constructor builds that seed.
        """
        graph = cls(number_of_nodes)
        for u in range(number_of_nodes):
            for v in range(u + 1, number_of_nodes):
                graph.add_edge(u, v)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(nodes={self.number_of_nodes}, edges={self.number_of_edges}, "
            f"max_degree={self.max_degree()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            set(self._adjacency) == set(other._adjacency)
            and {n: set(v) for n, v in self._adjacency.items()}
            == {n: set(v) for n, v in other._adjacency.items()}
        )

    def __hash__(self) -> int:  # Graphs are mutable; identity hash only.
        return id(self)
