"""Zero-copy shared-memory handoff for frozen CSR graphs.

Pickling a :class:`~repro.core.csr.CSRGraph` into a worker process costs
O(E): the ``indptr``/``indices`` arrays are copied into the pickle stream,
copied again out of the pipe, and materialised a third time in the worker —
per task.  For "freeze once, fan out many tasks" workloads (a scenario
service answering queries against one big topology, ``repro suite --jobs``
on paper-scale graphs) that transfer cost dominates the task itself.

This module moves the arrays into :mod:`multiprocessing.shared_memory`
segments instead:

* :class:`SharedGraphRegistry` — the parent-side owner.  ``share(graph)``
  copies a graph's arrays into named ``/dev/shm`` segments **once** and
  returns a :class:`SharedCSRGraph` whose pickle form is a tiny handle
  (segment names + lengths, a few hundred bytes regardless of edge count).
  The registry owns the segments: ``close()`` unlinks every one, and an
  ``atexit`` hook sweeps any registry left open so clean and
  signal-interrupted (SIGINT/SIGTERM-handled) shutdowns leave nothing in
  ``/dev/shm``.
* :func:`attach_shared_graph` — the worker-side entry point pickle calls.
  It maps the named segments zero-copy and memoises the resulting graph
  per process, so N tasks against one topology map it once and share its
  lazy neighbor-list caches.

The shared graph is behaviourally identical to its source (same class API,
same neighbor order, therefore byte-identical seeded draws); only its
transport representation changes.  Workers immediately unregister attached
segments from :mod:`multiprocessing.resource_tracker` — ownership stays
with the creating process, and a worker exiting must not unlink segments
other workers still map.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
import weakref
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.csr import CSRGraph
from repro.core.errors import GraphError

try:
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - stripped-down stdlib builds
    _resource_tracker = None
    _shared_memory = None

__all__ = [
    "SharedCSRGraph",
    "SharedGraphRegistry",
    "attach_shared_graph",
    "shm_available",
    "share_graph_arguments",
]

#: Every segment this library creates carries this prefix, so leak checks
#: (tests, CI) can list ``/dev/shm/repro-shm-*`` without false positives.
SEGMENT_PREFIX = "repro-shm"

#: A handle is ``((name, length), (name, length), (name, length) | None)``
#: for the indptr / indices / ids arrays — the whole pickle payload.
GraphHandle = Tuple[Tuple[str, int], Tuple[str, int], Optional[Tuple[str, int]]]

_AVAILABLE: Optional[bool] = None

#: Segment names created (and therefore resource-tracked) by *this*
#: process; attaching to one of these must not unregister it, or the
#: owner's eventual unlink would race the tracker.
_OWNED_NAMES: "set[str]" = set()

_ATTACH_LOCK = threading.Lock()
#: Per-process cache of attached graphs, keyed by the indptr segment name:
#: a worker executing N tasks against one topology maps it exactly once.
_ATTACHED: Dict[str, "SharedCSRGraph"] = {}

#: Registries still open in this process; the atexit sweep closes them.
_LIVE_REGISTRIES: "weakref.WeakSet[SharedGraphRegistry]" = weakref.WeakSet()


def shm_available() -> bool:
    """True when POSIX shared memory is usable in this environment.

    Probed once per process (create + unlink of a tiny segment); sandboxes
    without ``/dev/shm`` make every sharing entry point degrade to plain
    pickling rather than fail.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        if _shared_memory is None:
            _AVAILABLE = False
        else:
            try:
                probe = _shared_memory.SharedMemory(create=True, size=16)
                probe.close()
                probe.unlink()
                _AVAILABLE = True
            except (OSError, PermissionError, ValueError):
                _AVAILABLE = False
    return _AVAILABLE


def _close_segment(segment: Any) -> None:
    """Close a segment, tolerating live numpy views over its buffer.

    ``SharedMemory.close`` raises :class:`BufferError` while array views
    are alive; the mapping then persists until the views are collected or
    the process exits, which is fine — ``unlink`` (the part that removes
    the ``/dev/shm`` name) does not need the local mapping closed.
    """
    try:
        segment.close()
    except BufferError:
        pass


class SharedCSRGraph(CSRGraph):
    """A :class:`CSRGraph` whose arrays live in shared-memory segments.

    Identical in behaviour to its source graph — same API, same neighbor
    order, same seeded draws — but its pickle form is a constant-size
    handle instead of the O(E) arrays, so shipping it to a worker process
    costs the same whether the graph has a thousand edges or a hundred
    million.  Instances are produced by
    :meth:`SharedGraphRegistry.share` (parent side) and
    :func:`attach_shared_graph` (worker side); the constructor wires an
    already-mapped set of segments.
    """

    __slots__ = ("_segments", "_handle")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        ids: Optional[np.ndarray],
        segments: Tuple[Any, ...],
        handle: GraphHandle,
    ) -> None:
        super().__init__(indptr, indices, ids=ids)
        self._segments = segments
        self._handle = handle

    @property
    def handle(self) -> GraphHandle:
        """The constant-size transport token (segment names + lengths)."""
        return self._handle

    def segment_names(self) -> List[str]:
        """Names of the ``/dev/shm`` segments backing this graph."""
        return [entry[0] for entry in self._handle if entry is not None]

    def __reduce__(self):
        # The whole point: crossing a process boundary costs a handle,
        # not the arrays.
        return (attach_shared_graph, (self._handle,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedCSRGraph(nodes={self.number_of_nodes}, "
            f"edges={self.number_of_edges}, "
            f"segments={self.segment_names()})"
        )


def _new_segment(nbytes: int) -> Any:
    """Create a uniquely named segment (size floor 1: SHM rejects 0)."""
    for _ in range(32):
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(6)}"
        try:
            segment = _shared_memory.SharedMemory(
                create=True, size=max(1, nbytes), name=name
            )
        except FileExistsError:  # pragma: no cover - 48-bit collision
            continue
        _OWNED_NAMES.add(segment.name)
        return segment
    raise GraphError("could not allocate a uniquely named shared-memory segment")


def _export_array(array: np.ndarray) -> Tuple[Any, Tuple[str, int], np.ndarray]:
    """Copy ``array`` into a fresh segment; return (segment, handle, view)."""
    segment = _new_segment(array.nbytes)
    view = np.ndarray(array.shape, dtype=np.int64, buffer=segment.buf)
    view[:] = array
    return segment, (segment.name, int(array.shape[0])), view


def _map_array(name: str, length: int) -> Tuple[Any, np.ndarray]:
    """Attach an existing segment and view it as an ``int64[length]``."""
    try:
        segment = _shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        raise GraphError(
            f"shared graph segment {name!r} is gone — its owning process "
            "closed the registry (or exited) while tasks were still in flight"
        ) from None
    if name not in _OWNED_NAMES and _resource_tracker is not None:
        # Attaching registers the segment with this process's resource
        # tracker, which would unlink it when *this* process exits even
        # though the creating process owns it.  Hand ownership back.
        try:
            _resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals shifted
            pass
    view = np.ndarray((length,), dtype=np.int64, buffer=segment.buf)
    return segment, view


def attach_shared_graph(handle: GraphHandle) -> SharedCSRGraph:
    """Map the segments named by ``handle`` into a graph (memoised).

    This is the function :meth:`SharedCSRGraph.__reduce__` points pickle
    at; it runs inside worker processes (and in the parent, for serial
    fallbacks and pickle round-trip tests).  The per-process memoisation
    key is the indptr segment name, so repeated tasks against one shared
    topology reuse a single mapping *and* its lazily built neighbor-list
    caches.
    """
    key = handle[0][0]
    with _ATTACH_LOCK:
        cached = _ATTACHED.get(key)
        if cached is not None:
            return cached
        segments: List[Any] = []
        views: List[Optional[np.ndarray]] = []
        for entry in handle:
            if entry is None:
                views.append(None)
                continue
            segment, view = _map_array(*entry)
            segments.append(segment)
            views.append(view)
        graph = SharedCSRGraph(
            views[0], views[1], views[2], tuple(segments), handle
        )
        _ATTACHED[key] = graph
        return graph


def _forget_attached(names: List[str]) -> None:
    """Drop attach-cache entries for segments that no longer exist."""
    with _ATTACH_LOCK:
        for name in names:
            _ATTACHED.pop(name, None)


class SharedGraphRegistry:
    """Parent-side owner of the shared-memory segments behind graphs.

    ``share()`` is idempotent per graph instance (keyed by identity, with
    the source pinned so ids cannot be recycled), and the registry is the
    single place segments are unlinked: :meth:`close` — called by
    :meth:`ParallelExecutor.close`, context-manager exit, or the module's
    ``atexit`` sweep — removes every owned name from ``/dev/shm``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # id(source graph) -> (source pin, shared graph)
        self._entries: Dict[int, Tuple[CSRGraph, SharedCSRGraph]] = {}
        self._closed = False
        _LIVE_REGISTRIES.add(self)

    def __len__(self) -> int:
        return len(self._entries)

    def segment_names(self) -> List[str]:
        """Every ``/dev/shm`` name this registry currently owns."""
        with self._lock:
            return [
                name
                for _, shared in self._entries.values()
                for name in shared.segment_names()
            ]

    def share(self, graph: CSRGraph) -> CSRGraph:
        """Return a shared twin of ``graph`` (``graph`` itself if moot).

        Already-shared graphs and environments without usable shared
        memory pass through unchanged, so callers can apply this
        unconditionally.
        """
        if isinstance(graph, SharedCSRGraph) or not shm_available():
            return graph
        key = id(graph)
        with self._lock:
            if self._closed:
                raise GraphError("SharedGraphRegistry is closed")
            entry = self._entries.get(key)
            if entry is not None:
                return entry[1]
            indptr, indices, ids = graph.csr_arrays()
            segments: List[Any] = []
            handle_parts: List[Optional[Tuple[str, int]]] = []
            views: List[Optional[np.ndarray]] = []
            try:
                for array in (indptr, indices, ids):
                    if array is None:
                        handle_parts.append(None)
                        views.append(None)
                        continue
                    segment, part, view = _export_array(array)
                    segments.append(segment)
                    handle_parts.append(part)
                    views.append(view)
            except (OSError, PermissionError, ValueError):
                # Allocation failed mid-graph (e.g. /dev/shm full): roll
                # back and let the caller fall back to plain pickling.
                for segment in segments:
                    _close_segment(segment)
                    try:
                        segment.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
                    _OWNED_NAMES.discard(segment.name)
                return graph
            handle: GraphHandle = tuple(handle_parts)  # type: ignore[assignment]
            shared = SharedCSRGraph(
                views[0], views[1], views[2], tuple(segments), handle
            )
            self._entries[key] = (graph, shared)
            return shared

    def close(self) -> None:
        """Unlink every owned segment (idempotent, exception-tolerant)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._entries.values())
            self._entries.clear()
        removed: List[str] = []
        for _, shared in entries:
            for segment in shared._segments:
                _close_segment(segment)
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
                _OWNED_NAMES.discard(segment.name)
                removed.append(segment.name)
        _forget_attached(removed)

    def __enter__(self) -> "SharedGraphRegistry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"{len(self._entries)} graph(s)"
        return f"SharedGraphRegistry({state})"


def share_graph_arguments(value: Any, registry: SharedGraphRegistry) -> Any:
    """Replace every :class:`CSRGraph` reachable in ``value`` with a shared twin.

    Recurses through the containers task arguments are actually built from
    (tuples, lists, dicts); anything else passes through untouched.
    Returns ``value`` itself when nothing inside needed sharing, so
    executors can cheaply detect no-op batches.
    """
    if isinstance(value, CSRGraph):
        return registry.share(value)
    if isinstance(value, tuple):
        shared = tuple(share_graph_arguments(item, registry) for item in value)
        return value if all(a is b for a, b in zip(shared, value)) else shared
    if isinstance(value, list):
        shared_list = [share_graph_arguments(item, registry) for item in value]
        return value if all(a is b for a, b in zip(shared_list, value)) else shared_list
    if isinstance(value, dict):
        shared_dict = {
            name: share_graph_arguments(item, registry)
            for name, item in value.items()
        }
        same = all(shared_dict[name] is value[name] for name in value)
        return value if same else shared_dict
    return value


@atexit.register
def _sweep_registries() -> None:  # pragma: no cover - exercised via subprocess
    """Last-resort cleanup: unlink everything still owned at interpreter exit.

    Normal shutdown paths (executor ``close()``, ``with`` blocks, the serve
    CLI's signal handlers raising ``SystemExit``) run before this; the
    sweep covers error paths that skipped them.
    """
    for registry in list(_LIVE_REGISTRIES):
        registry.close()
