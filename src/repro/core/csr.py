"""Frozen compressed-sparse-row (CSR) graph backend.

The dict-of-sets :class:`~repro.core.graph.Graph` is tuned for *incremental
growth* — the generators add one node and a handful of edges at a time.  The
search phase of every experiment is the opposite workload: the topology is
finished and read-only, and each of hundreds of queries traverses a large
fraction of the edges.  :class:`CSRGraph` is an immutable snapshot of a
finished :class:`Graph` in the standard compressed-sparse-row layout used by
scientific graph stacks:

* ``indptr`` — ``int64[N + 1]``; node ``i``'s neighbors live at
  ``indices[indptr[i]:indptr[i + 1]]``;
* ``indices`` — ``int64[2E]``; the concatenated adjacency lists, **in the
  same per-node insertion order as the mutable graph's neighbor lists**.

Preserving the neighbor order is what makes the backend *exactly*
interchangeable: every seeded draw the search algorithms perform (random
neighbor selection, ``rng.sample`` over a candidate list, per-neighbor
forwarding coins) indexes into the same sequence on both backends, so a
frozen graph produces byte-identical search results to its mutable source —
a property pinned by ``tests/test_backend_equivalence.py``.

On top of the arrays this module provides vectorized kernels:

* :func:`flood_levels` / :func:`flood_curve` — frontier-based BFS that
  computes the whole hits-vs-τ **and** messages-vs-τ curve of a flooding
  query in a handful of NumPy operations (no Python-level per-edge loop);
* :func:`batch_random_walks` — many simultaneous random walks advanced one
  vectorized step at a time (a throughput-mode kernel with its own NumPy
  RNG stream; it is *distribution*-equivalent, not stream-identical, to
  :class:`~repro.search.random_walk.RandomWalkSearch`).

A :class:`CSRGraph` implements the read-only subset of the :class:`Graph`
API (degrees, neighbors, membership, stats, conversion), so analysis and
search code that only reads the topology accepts either backend.  Mutation
methods raise :class:`~repro.core.errors.GraphError`, and the underlying
arrays are marked read-only.  Instances are picklable and compact, so they
flow through the experiment engine's worker processes.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Set, Tuple, TYPE_CHECKING

import numpy as np

try:  # SciPy accelerates the batched flood kernel but is not required.
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised only on scipy-less installs
    _scipy_sparse = None

from repro.core.errors import GraphError, NodeNotFoundError
from repro.core.rng import RandomSource
from repro.core.types import Edge, GraphStats, NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (graph imports us lazily)
    import networkx as nx

    from repro.core.graph import Graph

__all__ = [
    "CSRGraph",
    "edge_arrays_to_csr",
    "flood_levels",
    "flood_curve",
    "batch_flood_curves",
    "batch_random_walks",
]


def edge_arrays_to_csr(
    number_of_nodes: int, edge_u: np.ndarray, edge_v: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Lower ordered edge arrays to CSR ``(indptr, indices)`` row arrays.

    ``edge_u[i]``/``edge_v[i]`` are the *row* endpoints of the ``i``-th
    undirected edge, in insertion order.  The returned ``indices`` lists
    each node's neighbors in exactly the order incremental
    ``Graph.add_edge`` calls would have appended them — the library's
    defined neighbor order, which every seeded draw depends on — computed
    with vectorized NumPy instead of a per-edge Python loop.
    """
    edge_u = np.ascontiguousarray(edge_u, dtype=np.int64)
    edge_v = np.ascontiguousarray(edge_v, dtype=np.int64)
    if edge_u.shape != edge_v.shape or edge_u.ndim != 1:
        raise GraphError("edge arrays must be one-dimensional and equal-length")
    count = edge_u.shape[0]
    if count and (
        min(edge_u.min(), edge_v.min()) < 0
        or max(edge_u.max(), edge_v.max()) >= number_of_nodes
    ):
        raise GraphError("edge endpoints must be rows in [0, number_of_nodes)")
    # Interleave the two directions so node x's entries appear in global
    # edge order (add_edge appends to both endpoints' lists per edge).
    src = np.empty(2 * count, dtype=np.int64)
    dst = np.empty(2 * count, dtype=np.int64)
    src[0::2] = edge_u
    src[1::2] = edge_v
    dst[0::2] = edge_v
    dst[1::2] = edge_u
    order = np.argsort(src, kind="stable")
    indices = dst[order]
    degrees = np.bincount(src, minlength=number_of_nodes)
    indptr = np.zeros(number_of_nodes + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    return indptr, indices

_FROZEN_MESSAGE = (
    "CSRGraph is a frozen snapshot; mutate the source Graph and freeze() again"
)


class CSRGraph:
    """An immutable undirected graph in compressed-sparse-row form.

    Build one with :meth:`Graph.freeze` (or :meth:`CSRGraph.from_graph`);
    the constructor is an internal detail.

    Examples
    --------
    >>> from repro.core.graph import Graph
    >>> g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
    >>> frozen = g.freeze()
    >>> frozen.degree(1)
    2
    >>> frozen.neighbors(2)
    [1, 3]
    >>> frozen.add_edge(0, 3)
    Traceback (most recent call last):
        ...
    repro.core.errors.GraphError: CSRGraph is a frozen snapshot; mutate the source Graph and freeze() again
    """

    __slots__ = (
        "_indptr",
        "_indices",
        "_degrees",
        "_ids",
        "_rows",
        "_py_indices",
        "_lists",
        "_edge_sources",
        "_sparse_matrix",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        ids: Optional[np.ndarray] = None,
    ) -> None:
        self._indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self._indices = np.ascontiguousarray(indices, dtype=np.int64)
        self._degrees = np.diff(self._indptr)
        # ``ids`` maps row -> node id for graphs whose ids are not the dense
        # range 0..N-1 (e.g. after removals); ``None`` means row == id.
        self._ids = None if ids is None else np.ascontiguousarray(ids, dtype=np.int64)
        self._rows: Optional[Dict[int, int]] = (
            None
            if self._ids is None
            else {int(node): row for row, node in enumerate(self._ids)}
        )
        for array in (self._indptr, self._indices, self._degrees, self._ids):
            if array is not None:
                array.setflags(write=False)
        # Lazy per-node Python neighbor lists (node *ids*, insertion order),
        # memoised because "freeze once, search many" touches each node's
        # adjacency hundreds of times per experiment.
        self._py_indices: Optional[List[int]] = None
        self._lists: Optional[List[Optional[List[int]]]] = None
        # Lazy ``int64[2E]`` array: the source row of every directed edge
        # slot in ``indices`` (the BFS kernel's frontier-expansion index).
        self._edge_sources: Optional[np.ndarray] = None
        # Lazy scipy.sparse adjacency matrix for the batched flood kernel.
        self._sparse_matrix = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(cls, graph: "Graph") -> "CSRGraph":
        """Snapshot a mutable :class:`Graph` (neighbor order is preserved)."""
        nodes = graph.nodes()
        n = len(nodes)
        dense = nodes == list(range(n))
        row_of = None if dense else {node: row for row, node in enumerate(nodes)}
        indptr = np.zeros(n + 1, dtype=np.int64)
        indices = np.empty(graph.total_degree, dtype=np.int64)
        cursor = 0
        for row, node in enumerate(nodes):
            neighbor_list = graph.iter_neighbors(node)
            end = cursor + len(neighbor_list)
            if dense:
                indices[cursor:end] = neighbor_list
            else:
                indices[cursor:end] = [row_of[v] for v in neighbor_list]
            cursor = end
            indptr[row + 1] = cursor
        ids = None if dense else np.array(nodes, dtype=np.int64)
        return cls(indptr, indices, ids=ids)

    @classmethod
    def from_edge_arrays(
        cls,
        number_of_nodes: int,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
        ids: Optional[np.ndarray] = None,
    ) -> "CSRGraph":
        """Assemble a frozen graph directly from ordered edge arrays.

        ``edge_u``/``edge_v`` hold row endpoints in edge-insertion order
        (the generator kernels emit exactly this); ``ids`` optionally maps
        rows to node ids for non-dense graphs (e.g. DAPA overlays, whose
        peers keep their substrate ids).  The result is byte-identical to
        building a mutable :class:`~repro.core.graph.Graph` edge by edge
        and calling :meth:`~repro.core.graph.Graph.freeze`, without the
        per-edge Python work.
        """
        indptr, indices = edge_arrays_to_csr(number_of_nodes, edge_u, edge_v)
        return cls(indptr, indices, ids=ids)

    def thaw(self) -> "Graph":
        """Return a new mutable :class:`Graph` with the same nodes and edges."""
        from repro.core.graph import Graph

        graph = Graph()
        for node in self.nodes():
            graph.add_node(node)
        for u, v in self.edges():
            graph.add_edge(u, v)
        return graph

    # ------------------------------------------------------------------ #
    # Row <-> id translation
    # ------------------------------------------------------------------ #
    def _row_of(self, node: NodeId) -> int:
        if self._rows is None:
            if isinstance(node, (int, np.integer)) and 0 <= node < len(self._degrees):
                return int(node)
            raise NodeNotFoundError(node)
        try:
            return self._rows[node]
        except (KeyError, TypeError):
            raise NodeNotFoundError(node) from None

    def _id_of(self, row: int) -> int:
        return int(row) if self._ids is None else int(self._ids[row])

    # ------------------------------------------------------------------ #
    # Node queries
    # ------------------------------------------------------------------ #
    def has_node(self, node: NodeId) -> bool:
        """Return ``True`` if ``node`` is in the graph."""
        if self._rows is None:
            return isinstance(node, (int, np.integer)) and 0 <= node < len(self._degrees)
        return node in self._rows

    def nodes(self) -> List[NodeId]:
        """Return all node ids, in the source graph's insertion order."""
        if self._ids is None:
            return list(range(len(self._degrees)))
        return [int(node) for node in self._ids]

    def __contains__(self, node: object) -> bool:
        return self.has_node(node)  # type: ignore[arg-type]

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.nodes())

    def __len__(self) -> int:
        return len(self._degrees)

    @property
    def number_of_nodes(self) -> int:
        """Total number of nodes ``N``."""
        return len(self._degrees)

    @property
    def number_of_edges(self) -> int:
        """Total number of undirected edges."""
        return len(self._indices) // 2

    # ------------------------------------------------------------------ #
    # Degrees and neighborhoods
    # ------------------------------------------------------------------ #
    def degree(self, node: NodeId) -> int:
        """Return the degree of ``node``."""
        return int(self._degrees[self._row_of(node)])

    def degrees(self) -> Dict[NodeId, int]:
        """Return a mapping ``node -> degree`` for every node."""
        return {node: int(self._degrees[row]) for row, node in enumerate(self.nodes())}

    def degree_sequence(self) -> List[int]:
        """Return the list of degrees in node order."""
        return [int(value) for value in self._degrees]

    def degree_array(self) -> np.ndarray:
        """Return the (read-only) degree vector, one entry per node row."""
        return self._degrees

    @property
    def total_degree(self) -> int:
        """Sum of all degrees (``2E``, the paper's ``ktotal``)."""
        return len(self._indices)

    def min_degree(self) -> int:
        """Return the smallest degree (0 for an empty graph)."""
        if len(self._degrees) == 0:
            return 0
        return int(self._degrees.min())

    def max_degree(self) -> int:
        """Return the largest degree, i.e. the empirical cutoff of the network."""
        if len(self._degrees) == 0:
            return 0
        return int(self._degrees.max())

    def mean_degree(self) -> float:
        """Return the average degree ``2E / N`` (0.0 for an empty graph)."""
        if len(self._degrees) == 0:
            return 0.0
        return len(self._indices) / len(self._degrees)

    def _ensure_lists(self) -> List[Optional[List[int]]]:
        if self._lists is None:
            if self._py_indices is None:
                source = self._indices if self._ids is None else self._ids[self._indices]
                self._py_indices = source.tolist()
            self._lists = [None] * len(self._degrees)
        return self._lists

    def edge_source_rows(self) -> np.ndarray:
        """Return the (read-only) source row of each directed-edge slot.

        ``edge_source_rows()[k]`` is the row whose adjacency slice contains
        ``indices[k]``; the vectorized BFS uses it to expand a whole
        frontier with one boolean gather over the edge array.
        """
        if self._edge_sources is None:
            sources = np.repeat(
                np.arange(len(self._degrees), dtype=np.int64), self._degrees
            )
            sources.setflags(write=False)
            self._edge_sources = sources
        return self._edge_sources

    def sparse_adjacency(self) -> Optional[Any]:
        """Return the cached :mod:`scipy.sparse` adjacency, or ``None``.

        The matrix shares this graph's ``indptr``/``indices`` buffers (no
        copy beyond the unit data vector) and drives the batched flood
        kernel; ``None`` when SciPy is not installed.
        """
        if _scipy_sparse is None:
            return None
        if self._sparse_matrix is None:
            n = len(self._degrees)
            self._sparse_matrix = _scipy_sparse.csr_matrix(
                (np.ones(len(self._indices), dtype=np.int32), self._indices, self._indptr),
                shape=(n, n),
            )
        return self._sparse_matrix

    def iter_neighbors(self, node: NodeId) -> List[NodeId]:
        """Return the cached neighbor list of ``node`` — do **not** mutate.

        The list holds plain Python ints in the source graph's insertion
        order and is shared across calls (freeze once, search many), which
        is what makes repeated traversals allocation-free.
        """
        row = self._row_of(node)
        lists = self._ensure_lists()
        cached = lists[row]
        if cached is None:
            start, end = int(self._indptr[row]), int(self._indptr[row + 1])
            cached = self._py_indices[start:end]  # type: ignore[index]
            lists[row] = cached
        return cached

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """Return a fresh list of the neighbors of ``node``."""
        return list(self.iter_neighbors(node))

    def neighbor_set(self, node: NodeId) -> Set[NodeId]:
        """Return the neighbor set of ``node``."""
        return set(self.iter_neighbors(node))

    def neighbor_array(self, node: NodeId) -> np.ndarray:
        """Return the (read-only) row-index slice of ``node``'s neighbors."""
        row = self._row_of(node)
        return self._indices[self._indptr[row] : self._indptr[row + 1]]

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Return ``True`` if the undirected edge ``(u, v)`` exists."""
        if not self.has_node(u) or not self.has_node(v):
            return False
        row_u, row_v = self._row_of(u), self._row_of(v)
        # Scan the smaller adjacency of the two endpoints.
        if self._degrees[row_v] < self._degrees[row_u]:
            row_u, row_v = row_v, row_u
        slice_u = self._indices[self._indptr[row_u] : self._indptr[row_u + 1]]
        return bool(np.any(slice_u == row_v))

    def random_neighbor(self, node: NodeId, rng: RandomSource) -> Optional[NodeId]:
        """Return a uniformly random neighbor of ``node`` or ``None`` if isolated.

        Consumes exactly the draws :meth:`Graph.random_neighbor` does, so a
        shared seed selects the same neighbor on both backends.
        """
        neighbors = self.iter_neighbors(node)
        if not neighbors:
            return None
        return neighbors[rng.randint(0, len(neighbors) - 1)]

    def random_node(self, rng: RandomSource) -> NodeId:
        """Return a uniformly random node id (draw-compatible with :class:`Graph`)."""
        n = len(self._degrees)
        if n == 0:
            raise GraphError("cannot pick a random node from an empty graph")
        candidate = rng.randint(0, n - 1)
        if self._ids is None:
            return candidate
        if candidate in self._rows:  # type: ignore[operator]
            return candidate
        return int(rng.choice(self.nodes()))

    # ------------------------------------------------------------------ #
    # Edges and whole-graph utilities
    # ------------------------------------------------------------------ #
    def edges(self) -> List[Edge]:
        """Return all edges as ``(min(u, v), max(u, v))`` pairs."""
        rows_u = self.edge_source_rows()
        rows_v = self._indices
        if self._ids is not None:
            rows_u = self._ids[rows_u]
            rows_v = self._ids[rows_v]
        mask = rows_u < rows_v
        return list(zip(rows_u[mask].tolist(), rows_v[mask].tolist()))

    def stats(self) -> GraphStats:
        """Return a :class:`~repro.core.types.GraphStats` summary."""
        return GraphStats(
            number_of_nodes=self.number_of_nodes,
            number_of_edges=self.number_of_edges,
            min_degree=self.min_degree(),
            max_degree=self.max_degree(),
            mean_degree=self.mean_degree(),
        )

    def to_networkx(self) -> "nx.Graph":
        """Convert to a :class:`networkx.Graph` (nodes and edges only)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.nodes())
        g.add_edges_from(self.edges())
        return g

    def copy(self) -> "CSRGraph":
        """Return ``self``: frozen graphs are immutable, sharing is safe."""
        return self

    def freeze(self) -> "CSRGraph":
        """Already frozen; return ``self`` (so ``freeze`` is idempotent)."""
        return self

    # ------------------------------------------------------------------ #
    # Mutation is rejected
    # ------------------------------------------------------------------ #
    def add_node(self, node: Optional[NodeId] = None) -> NodeId:
        raise GraphError(_FROZEN_MESSAGE)

    def add_nodes(self, count: int) -> List[NodeId]:
        raise GraphError(_FROZEN_MESSAGE)

    def add_edge(self, u: NodeId, v: NodeId) -> bool:
        raise GraphError(_FROZEN_MESSAGE)

    def remove_node(self, node: NodeId) -> None:
        raise GraphError(_FROZEN_MESSAGE)

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        raise GraphError(_FROZEN_MESSAGE)

    # ------------------------------------------------------------------ #
    # Pickling (worker processes receive frozen graphs)
    # ------------------------------------------------------------------ #
    def csr_arrays(self) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Return the raw ``(indptr, indices, ids)`` arrays (read-only).

        This is the transport surface of a frozen graph: everything a twin
        can be rebuilt from.  :mod:`repro.core.shm` copies exactly these
        arrays into shared-memory segments so worker processes map the
        topology zero-copy instead of unpickling it per task.
        """
        return (self._indptr, self._indices, self._ids)

    def __getstate__(self) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        return (self._indptr, self._indices, self._ids)

    def __setstate__(
        self, state: Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]
    ) -> None:
        indptr, indices, ids = state
        self.__init__(indptr, indices, ids=ids)  # type: ignore[misc]

    # ------------------------------------------------------------------ #
    # Comparison / debugging
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        from repro.core.graph import Graph

        if isinstance(other, CSRGraph):
            return set(self.nodes()) == set(other.nodes()) and set(self.edges()) == set(
                other.edges()
            )
        if isinstance(other, Graph):
            return set(self.nodes()) == set(other.nodes()) and set(self.edges()) == set(
                other.edges()
            )
        return NotImplemented

    def __hash__(self) -> int:  # mirror Graph: identity hash
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRGraph(nodes={self.number_of_nodes}, edges={self.number_of_edges}, "
            f"max_degree={self.max_degree()})"
        )


# --------------------------------------------------------------------------- #
# Vectorized kernels
# --------------------------------------------------------------------------- #
def flood_levels(csr: CSRGraph, source_row: int, max_level: int) -> np.ndarray:
    """BFS hop distances from ``source_row``, capped at ``max_level``.

    Returns an ``int64[N]`` array of levels (``-1`` for nodes beyond
    ``max_level`` or in another component).  This is the frontier machinery
    the flooding-family kernels are built on: each hop expands the whole
    frontier with a boolean gather over the directed-edge arrays — no
    Python per-edge loop and no sort-based dedup.
    """
    indices = csr._indices
    n = len(csr._degrees)
    levels = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return levels
    edge_sources = csr.edge_source_rows()
    levels[source_row] = 0
    unreached = n - 1
    frontier_mask = np.zeros(n, dtype=bool)
    frontier_mask[source_row] = True
    for level in range(1, max_level + 1):
        if unreached == 0:
            break
        # Every directed edge whose source row is in the frontier delivers
        # the query; keep the targets not yet assigned a level.
        candidates = indices[frontier_mask[edge_sources]]
        fresh = candidates[levels[candidates] < 0]
        if fresh.size == 0:
            break
        # Duplicate targets (reached from several frontier nodes) collapse
        # in the fancy-index assignment — no explicit dedup needed.
        levels[fresh] = level
        frontier_mask[:] = False
        frontier_mask[fresh] = True
        unreached -= int(np.count_nonzero(frontier_mask))
    return levels


def flood_curve(
    csr: CSRGraph, source_row: int, ttl: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Whole flooding curve from one BFS: ``(levels, hits, messages)``.

    ``hits[t]`` (``t = 0..ttl - 1``) is the number of *discovered* nodes
    (source excluded) within ``t + 1`` hops; ``messages[t]`` is the
    cumulative message count after hop ``t + 1``.  Both match the
    reference :class:`~repro.search.flooding.FloodingSearch` exactly:
    every node visited at hop ``h`` forwards at hop ``h + 1`` to all its
    neighbors except the one the query arrived on, and duplicate
    deliveries count as messages.
    """
    levels = flood_levels(csr, source_row, ttl)
    reached = levels >= 0
    reached_levels = levels[reached]
    counts = np.bincount(reached_levels, minlength=ttl + 1).astype(np.int64)
    degree_sums = np.bincount(
        reached_levels, weights=csr._degrees[reached], minlength=ttl + 1
    ).astype(np.int64)
    hits = np.cumsum(counts[1:])
    # Nodes at level h forward deg - 1 messages at hop h + 1 (the previous
    # hop is excluded); the source (level 0, no previous hop) forwards deg.
    per_hop = degree_sums[:ttl] - counts[:ttl]
    if ttl > 0:
        per_hop[0] += counts[0]  # counts[0] == 1: undo the source's exclusion
    messages = np.cumsum(per_hop)
    return levels, hits, messages


def batch_flood_curves(
    csr: CSRGraph, source_rows: "np.ndarray | List[int]", ttl: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Flooding curves for many sources at once: ``(hits, messages)``.

    Returns two ``int64[S, ttl + 1]`` arrays; row ``i`` is the cumulative
    hits (source excluded) and messages curve of a flooding query from
    ``source_rows[i]``, identical to what :func:`flood_curve` computes one
    source at a time (pinned by ``tests/test_core_csr.py``).

    With SciPy installed every hop advances *all* sources with one sparse
    matrix–matrix product; otherwise the per-source kernel runs in a loop.
    This is what makes ``search_curve`` — hundreds of flooding queries on
    one frozen topology — scale: the per-query Python and NumPy call
    overhead is amortised across the whole query batch.
    """
    if ttl < 0:
        raise GraphError("ttl must be non-negative")
    rows = np.asarray(source_rows, dtype=np.int64)
    total = len(rows)
    hits = np.zeros((total, ttl + 1), dtype=np.int64)
    messages = np.zeros((total, ttl + 1), dtype=np.int64)
    if total == 0 or len(csr._degrees) == 0:
        return hits, messages

    adjacency = csr.sparse_adjacency()
    if adjacency is None:
        for index, row in enumerate(rows):
            _, row_hits, row_messages = flood_curve(csr, int(row), ttl)
            hits[index, 1:] = row_hits
            messages[index, 1:] = row_messages
        return hits, messages

    n = len(csr._degrees)
    degrees = csr._degrees
    degrees_minus_one = degrees - 1
    # Column-per-source layout so each hop is one CSR @ dense product.
    span = np.arange(total)
    visited = np.zeros((n, total), dtype=bool)
    visited[rows, span] = True
    frontier = np.zeros((n, total), dtype=np.int32)
    frontier[rows, span] = 1
    hits_t = np.zeros((ttl + 1, total), dtype=np.int64)
    messages_t = np.zeros((ttl + 1, total), dtype=np.int64)
    for hop in range(1, ttl + 1):
        # A node visited at the previous hop forwards to all neighbors but
        # the one it was reached from (the source, hop 1, has no previous).
        weights = degrees if hop == 1 else degrees_minus_one
        hop_messages = weights @ frontier
        delivered = adjacency @ frontier
        fresh = delivered > 0
        fresh &= ~visited
        messages_t[hop] = messages_t[hop - 1] + hop_messages
        if not fresh.any():
            # Coverage complete: curves stay flat for the remaining TTLs.
            hits_t[hop:] = hits_t[hop - 1]
            messages_t[hop + 1 :] = messages_t[hop]
            break
        visited |= fresh
        hits_t[hop] = hits_t[hop - 1] + fresh.sum(axis=0)
        frontier = fresh.astype(np.int32)
    return hits_t.T.copy(), messages_t.T.copy()


def batch_random_walks(
    csr: CSRGraph,
    sources: "np.ndarray | List[int]",
    ttl: int,
    rng: np.random.Generator,
    allow_backtracking: bool = False,
) -> np.ndarray:
    """Advance many random walks simultaneously; return their trajectories.

    Returns an ``int64[ttl + 1, W]`` array of node *rows*; row ``t`` holds
    every walker's position after ``t`` hops, with ``-1`` once a walker has
    died at a dead end (its only neighbor is the node it arrived from).

    This is the throughput-mode kernel: all ``W`` walkers advance per hop
    with a constant number of NumPy operations.  It draws from a NumPy
    :class:`~numpy.random.Generator`, so it is distribution-equivalent but
    **not** stream-identical to
    :class:`~repro.search.random_walk.RandomWalkSearch`; use the search
    class when byte-identical curves across backends are required.
    """
    if ttl < 0:
        raise GraphError("ttl must be non-negative")
    positions = np.asarray(sources, dtype=np.int64).copy()
    if positions.ndim != 1:
        raise GraphError("sources must be a one-dimensional sequence of node rows")
    walkers = len(positions)
    degrees, indptr, indices = csr._degrees, csr._indptr, csr._indices
    trajectory = np.full((ttl + 1, walkers), -1, dtype=np.int64)
    trajectory[0] = positions
    previous = np.full(walkers, -1, dtype=np.int64)
    alive = degrees[positions] > 0 if walkers else np.zeros(0, dtype=bool)
    for hop in range(1, ttl + 1):
        if not alive.any():
            break
        active = np.nonzero(alive)[0]
        current = positions[active]
        # Dead-end detection: a degree-1 node whose only neighbor is the
        # previous hop has no non-backtracking move.
        if not allow_backtracking:
            stuck = (degrees[current] == 1) & (
                indices[indptr[current]] == previous[active]
            )
            if stuck.any():
                alive[active[stuck]] = False
                active = active[~stuck]
                current = positions[active]
        if active.size == 0:
            continue
        draws = rng.random(active.size)
        chosen = indices[
            indptr[current] + (draws * degrees[current]).astype(np.int64)
        ]
        if not allow_backtracking:
            # Rejection-sample walkers that drew their previous hop; each
            # round resolves the collisions uniformly over the remainder.
            colliding = chosen == previous[active]
            while colliding.any():
                redo = active[colliding]
                redraw = rng.random(redo.size)
                chosen_redo = indices[
                    indptr[positions[redo]]
                    + (redraw * degrees[positions[redo]]).astype(np.int64)
                ]
                chosen[colliding] = chosen_redo
                colliding_redo = chosen_redo == previous[redo]
                new_colliding = np.zeros_like(colliding)
                new_colliding[np.nonzero(colliding)[0]] = colliding_redo
                colliding = new_colliding
        previous[active] = current
        positions[active] = chosen
        trajectory[hop, active] = chosen
    return trajectory
