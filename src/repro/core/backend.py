"""Ambient graph-backend selection (``adj`` vs ``csr``).

The experiment harness supports two interchangeable graph backends for the
read-only search phase:

* ``adj`` — the mutable dict-of-sets :class:`~repro.core.graph.Graph`; the
  reference implementation every algorithm is defined against;
* ``csr`` — the frozen :class:`~repro.core.csr.CSRGraph` snapshot with
  vectorized kernels; byte-identical results, measurably faster traversals.

Like the engine's *active executor*, the backend is an ambient context:
``repro figure fig9 --backend csr`` installs it with :func:`use_backend`
at the top of the run, and the realization helpers deep inside the figure
modules pick it up with :func:`active_backend` — no ``backend=`` argument
needs to be threaded through every experiment signature.  The selection is
baked into each picklable realization task at *task-creation* time, so it
survives the hop into the engine's worker processes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from repro.core.ambient import AmbientStack
from repro.core.csr import CSRGraph
from repro.core.errors import ConfigurationError
from repro.core.graph import Graph

# The kernel-tier context lives in repro.kernels.dispatch but is re-exported
# here: the backend and the kernel mode are sibling ambient selections (what
# representation the graph is in × what executes the search loops over it),
# and engine/CLI code imports both from this one place.
from repro.kernels.dispatch import (  # noqa: F401  (re-exports)
    KERNEL_MODES,
    active_kernels,
    kernel_tier,
    normalize_kernels,
    use_kernels,
)

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "GraphLike",
    "KERNEL_MODES",
    "active_backend",
    "active_kernels",
    "freeze_for_backend",
    "kernel_tier",
    "normalize_backend",
    "normalize_kernels",
    "use_backend",
    "use_kernels",
]

#: Either graph representation; search and analysis code that only reads the
#: topology accepts both.
GraphLike = Union[Graph, CSRGraph]

#: Registered backend names, in preference order for documentation.
BACKENDS = ("adj", "csr")

#: The reference backend existing callers get when nothing is selected.
DEFAULT_BACKEND = "adj"

_ACTIVE_STACK: AmbientStack[str] = AmbientStack()


def normalize_backend(name: Optional[str]) -> str:
    """Validate a backend name (``None`` means the default, ``adj``)."""
    if name is None:
        return DEFAULT_BACKEND
    key = name.lower()
    if key not in BACKENDS:
        raise ConfigurationError(
            f"unknown graph backend {name!r}; available: {', '.join(BACKENDS)}"
        )
    return key


def active_backend() -> str:
    """Return the backend installed by the innermost :func:`use_backend`.

    The stack is thread-local (see :class:`repro.core.ambient.AmbientStack`);
    worker threads re-install the backend captured from their parent.
    """
    return _ACTIVE_STACK.top(DEFAULT_BACKEND)


@contextmanager
def use_backend(name: Optional[str]) -> Iterator[str]:
    """Install backend ``name`` for the ``with`` body.

    ``None`` leaves the ambient backend in place (mirroring
    :func:`repro.engine.executor.use_executor`), so call sites can pass an
    optional override unconditionally.
    """
    if name is not None:
        _ACTIVE_STACK.push(normalize_backend(name))
    try:
        yield active_backend()
    finally:
        if name is not None:
            _ACTIVE_STACK.pop()


def freeze_for_backend(graph: GraphLike, backend: Optional[str] = None) -> GraphLike:
    """Return ``graph`` in the representation ``backend`` asks for.

    ``csr`` freezes a mutable graph (an already-frozen graph passes
    through); ``adj`` returns the graph unchanged — a frozen graph is *not*
    thawed, because freezing loses nothing the search phase needs.
    """
    if normalize_backend(backend) == "csr" and isinstance(graph, Graph):
        from repro.telemetry.collector import active_telemetry

        with active_telemetry().span("freeze"):
            return graph.freeze()
    return graph
