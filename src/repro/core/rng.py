"""Seedable random-source façade.

Every stochastic component in the library (topology generators, search
algorithms, the churn simulator, workload generators) draws its randomness
through a :class:`RandomSource`.  This gives three properties the paper's
experiments need:

* **Reproducibility** — a generator seeded with the same value produces the
  same topology, which the test-suite and the benchmark harness rely on.
* **Independence** — :meth:`RandomSource.spawn` derives statistically
  independent child sources so that, e.g., topology construction and query
  workload generation do not share a stream.
* **Uniform interface** — the handful of primitives the paper's pseudo-code
  uses (``RANDOM(i, j)``, ``fRANDOM()``, random neighbor selection, weighted
  choice) are provided as named methods.

The implementation wraps :class:`random.Random` (Mersenne Twister), which is
fast enough for graphs of 10^5 nodes and keeps the library dependency-free at
its core; NumPy generators are available via :meth:`numpy_generator` for the
vectorised analysis code.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Iterable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

__all__ = ["RandomSource", "DEFAULT_SEED"]

T = TypeVar("T")

#: Seed used when the caller does not supply one and reproducibility is
#: requested explicitly (e.g. by the test-suite fixtures).
DEFAULT_SEED = 20070611  # arXiv submission date of the paper: cs/0611128.


class RandomSource:
    """A seedable source of randomness with the primitives the paper uses.

    Parameters
    ----------
    seed:
        Seed for the underlying Mersenne Twister.  ``None`` produces a
        non-deterministic source (seeded from OS entropy).

    Examples
    --------
    >>> rng = RandomSource(seed=7)
    >>> rng.randint(1, 3) in (1, 2, 3)
    True
    >>> 0.0 <= rng.random() < 1.0
    True
    """

    __slots__ = ("_seed", "_random")

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def seed(self) -> Optional[int]:
        """The seed this source was created with (``None`` if unseeded)."""
        return self._seed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(seed={self._seed!r})"

    # ------------------------------------------------------------------ #
    # Scalar draws (the paper's RANDOM / fRANDOM primitives)
    # ------------------------------------------------------------------ #
    def random(self) -> float:
        """Return a uniform float in ``[0, 1)`` (the paper's ``fRANDOM()``)."""
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer ``x`` with ``low <= x <= high``.

        This mirrors the paper's ``RANDOM(i, j)`` primitive (both endpoints
        inclusive).
        """
        if low > high:
            raise ValueError(f"empty integer range [{low}, {high}]")
        return self._random.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Return a uniform float in ``[low, high]``."""
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Return an exponentially distributed float with the given rate."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        return self._random.expovariate(rate)

    # ------------------------------------------------------------------ #
    # Collection draws
    # ------------------------------------------------------------------ #
    def choice(self, items: Sequence[T]) -> T:
        """Return a uniformly random element of a non-empty sequence."""
        if not items:
            raise IndexError("cannot choose from an empty sequence")
        return self._random.choice(items)

    def sample(self, items: Sequence[T], count: int) -> List[T]:
        """Return ``count`` distinct elements chosen uniformly at random.

        If ``count`` exceeds the population size the whole population is
        returned in random order (this is the behaviour the normalized
        flooding forwarder needs: "forward to kmin random neighbors, or all
        of them if there are fewer").
        """
        if count >= len(items):
            return self.shuffled(items)
        return self._random.sample(items, count)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def shuffled(self, items: Iterable[T]) -> List[T]:
        """Return a new list with the elements of ``items`` in random order."""
        out = list(items)
        self._random.shuffle(out)
        return out

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Return one element chosen with probability proportional to its weight."""
        if not items:
            raise IndexError("cannot choose from an empty sequence")
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        return self._random.choices(items, weights=weights, k=1)[0]

    def weighted_index(self, weights: Sequence[float]) -> int:
        """Return an index chosen with probability proportional to ``weights``."""
        total = float(sum(weights))
        if total <= 0.0:
            raise ValueError("weights must sum to a positive value")
        threshold = self._random.random() * total
        cumulative = 0.0
        for index, weight in enumerate(weights):
            cumulative += weight
            if threshold < cumulative:
                return index
        return len(weights) - 1

    # ------------------------------------------------------------------ #
    # Stream-position export/import (the kernel tier's splice points)
    # ------------------------------------------------------------------ #
    def getstate(self) -> Tuple[Any, ...]:
        """Return the underlying generator state (see :meth:`random.Random.getstate`)."""
        return self._random.getstate()

    def setstate(self, state: Tuple[Any, ...]) -> None:
        """Restore a state captured with :meth:`getstate`."""
        self._random.setstate(state)

    def export_mt_state(self) -> np.ndarray:
        """Export the Mersenne-Twister stream position as an ``int64[625]`` array.

        The layout (624 key words + the position index) is what the
        compiled kernels in :mod:`repro.kernels` mutate in place; pair
        with :meth:`import_mt_state` to hand the advanced stream back so
        everything drawn afterwards continues from exactly where a
        pure-Python consumer would have left it.
        """
        _version, internal, _gauss_next = self._random.getstate()
        return np.array(internal, dtype=np.int64)

    def import_mt_state(self, state: "np.ndarray") -> None:
        """Adopt a stream position exported with :meth:`export_mt_state`.

        Only the Mersenne-Twister words and position are replaced; the
        Gaussian-pair cache is preserved (the kernels never draw from it).
        """
        version, _internal, gauss_next = self._random.getstate()
        self._random.setstate(
            (version, tuple(int(word) for word in state), gauss_next)
        )

    # ------------------------------------------------------------------ #
    # Derived sources
    # ------------------------------------------------------------------ #
    def spawn(self, label: str = "") -> "RandomSource":
        """Derive an independent child source.

        The child's seed is drawn from this source's stream, optionally mixed
        with a string label so that differently-labelled children of the same
        parent are decorrelated even when spawned in a different order.  The
        label is mixed with CRC32 (not :func:`hash`, which is salted per
        process) so seeded runs are reproducible across interpreter runs.
        """
        base = self._random.getrandbits(63)
        if label:
            base ^= zlib.crc32(label.encode("utf-8")) & (2**63 - 1)
        return RandomSource(seed=base)

    def numpy_generator(self) -> np.random.Generator:
        """Return a NumPy generator seeded from this source's stream."""
        return np.random.default_rng(self._random.getrandbits(63))


def ensure_source(rng: "RandomSource | int | None") -> RandomSource:
    """Coerce ``rng`` into a :class:`RandomSource`.

    Accepts an existing source (returned unchanged), an integer seed, or
    ``None`` (a fresh unseeded source).  All public generator and search
    entry points funnel their ``rng``/``seed`` arguments through this helper
    so the two styles are interchangeable.
    """
    if isinstance(rng, RandomSource):
        return rng
    if rng is None:
        return RandomSource()
    if isinstance(rng, int):
        return RandomSource(seed=rng)
    raise TypeError(f"expected RandomSource, int, or None, got {type(rng).__name__}")
