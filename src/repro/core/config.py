"""Validated configuration objects for generators, searches, and experiments.

The paper's parameter space is small but easy to misuse (e.g. requesting more
stubs than the hard cutoff allows, or a cutoff below the minimum degree).
Each configuration dataclass validates itself on construction and raises
:class:`~repro.core.errors.ConfigurationError` with an actionable message,
so mistakes surface at configuration time rather than as silent infinite
loops inside an attachment routine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import ConfigurationError

__all__ = [
    "NO_CUTOFF",
    "TopologyConfig",
    "PAConfig",
    "CMConfig",
    "HAPAConfig",
    "DAPAConfig",
    "GRNConfig",
    "MeshConfig",
    "SearchConfig",
]

#: Sentinel meaning "no hard cutoff" (the natural cutoff applies instead).
NO_CUTOFF: Optional[int] = None


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters shared by every growth-style topology generator.

    Attributes
    ----------
    number_of_nodes:
        Target network size ``N``.
    stubs:
        Number of stubs / initial links ``m`` each joining node tries to fill.
        This is also the minimum degree for PA and HAPA.
    hard_cutoff:
        Hard cutoff ``kc`` on node degree, or ``None`` for no hard cutoff.
    seed:
        Optional RNG seed for reproducible topologies.
    """

    number_of_nodes: int
    stubs: int = 1
    hard_cutoff: Optional[int] = NO_CUTOFF
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        _require(self.number_of_nodes >= 2, "number_of_nodes must be at least 2")
        _require(self.stubs >= 1, "stubs (m) must be at least 1")
        _require(
            self.stubs < self.number_of_nodes,
            "stubs (m) must be smaller than number_of_nodes",
        )
        if self.hard_cutoff is not None:
            _require(self.hard_cutoff >= 1, "hard_cutoff (kc) must be at least 1")
            _require(
                self.hard_cutoff >= self.stubs,
                f"hard_cutoff (kc={self.hard_cutoff}) must be >= stubs (m={self.stubs}); "
                "otherwise joining nodes can never fill their stubs",
            )

    @property
    def has_cutoff(self) -> bool:
        """``True`` when a finite hard cutoff is configured."""
        return self.hard_cutoff is not None

    def effective_cutoff(self) -> int:
        """Return the cutoff used by attachment tests (``N`` when unbounded)."""
        return self.hard_cutoff if self.hard_cutoff is not None else self.number_of_nodes


@dataclass(frozen=True)
class PAConfig(TopologyConfig):
    """Configuration for the preferential-attachment generator (paper Alg. 1)."""


@dataclass(frozen=True)
class HAPAConfig(TopologyConfig):
    """Configuration for the hop-and-attempt PA generator (paper Alg. 3).

    Attributes
    ----------
    max_hops_per_stub:
        Safety bound on the number of hop attempts made while trying to fill
        one stub.  The paper's pseudo-code loops until success; a bound keeps
        pathological small networks from hanging.  The default is generous
        enough never to bind in normal operation.
    """

    max_hops_per_stub: int = 10_000

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.max_hops_per_stub >= 1, "max_hops_per_stub must be positive")


@dataclass(frozen=True)
class CMConfig:
    """Configuration for the configuration-model generator (paper Alg. 2).

    Attributes
    ----------
    number_of_nodes:
        Network size ``N``.
    exponent:
        Target power-law exponent γ of the prescribed degree distribution.
    min_degree:
        Minimum degree ``m`` of the prescribed distribution.
    hard_cutoff:
        Maximum degree ``kc`` of the prescribed distribution (``None`` → ``N``).
    seed:
        Optional RNG seed.
    """

    number_of_nodes: int
    exponent: float = 3.0
    min_degree: int = 1
    hard_cutoff: Optional[int] = NO_CUTOFF
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        _require(self.number_of_nodes >= 2, "number_of_nodes must be at least 2")
        _require(self.exponent > 1.0, "exponent (gamma) must be greater than 1")
        _require(self.min_degree >= 1, "min_degree (m) must be at least 1")
        if self.hard_cutoff is not None:
            _require(
                self.hard_cutoff >= self.min_degree,
                "hard_cutoff must be >= min_degree",
            )
            _require(
                self.hard_cutoff <= self.number_of_nodes,
                "hard_cutoff cannot exceed the number of nodes",
            )

    @property
    def has_cutoff(self) -> bool:
        """``True`` when a finite hard cutoff is configured."""
        return self.hard_cutoff is not None

    def effective_cutoff(self) -> int:
        """Return the maximum degree used when sampling the degree sequence."""
        if self.hard_cutoff is not None:
            return self.hard_cutoff
        return self.number_of_nodes


@dataclass(frozen=True)
class GRNConfig:
    """Configuration for the geometric random network substrate (paper §IV-B).

    A GRN places ``number_of_nodes`` points uniformly in the unit square
    (``dimensions = 2``) or unit hypercube and links every pair closer than
    ``radius``.  Either ``radius`` or ``target_mean_degree`` must be given;
    when only the target mean degree is given, the radius is derived from the
    Poisson-intensity relation ``<k> = N * V_d * R^d`` (area of the
    d-dimensional ball, ignoring boundary effects).
    """

    number_of_nodes: int
    radius: Optional[float] = None
    target_mean_degree: Optional[float] = None
    dimensions: int = 2
    torus: bool = False
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        _require(self.number_of_nodes >= 2, "number_of_nodes must be at least 2")
        _require(self.dimensions in (1, 2, 3), "dimensions must be 1, 2, or 3")
        _require(
            self.radius is not None or self.target_mean_degree is not None,
            "either radius or target_mean_degree must be provided",
        )
        if self.radius is not None:
            _require(0.0 < self.radius <= math.sqrt(self.dimensions),
                     "radius must be in (0, sqrt(d)]")
        if self.target_mean_degree is not None:
            _require(self.target_mean_degree > 0, "target_mean_degree must be positive")

    def effective_radius(self) -> float:
        """Return the connection radius, deriving it from the mean degree if needed."""
        if self.radius is not None:
            return self.radius
        # <k> = (N - 1) * volume(ball of radius R) for points in a unit box,
        # ignoring boundary effects. Solve for R.
        mean_degree = float(self.target_mean_degree)
        n = self.number_of_nodes - 1
        if self.dimensions == 1:
            volume_coefficient = 2.0
        elif self.dimensions == 2:
            volume_coefficient = math.pi
        else:
            volume_coefficient = 4.0 * math.pi / 3.0
        return (mean_degree / (n * volume_coefficient)) ** (1.0 / self.dimensions)


@dataclass(frozen=True)
class MeshConfig:
    """Configuration for the 2-D regular mesh substrate (paper §IV-B).

    ``rows * columns`` nodes arranged on a grid, each connected to its four
    lattice neighbors (von Neumann neighborhood).  ``torus=True`` wraps the
    boundaries so every node has exactly four neighbors.
    """

    rows: int
    columns: int
    torus: bool = False

    def __post_init__(self) -> None:
        _require(self.rows >= 2, "rows must be at least 2")
        _require(self.columns >= 2, "columns must be at least 2")

    @property
    def number_of_nodes(self) -> int:
        """Total node count of the mesh."""
        return self.rows * self.columns


@dataclass(frozen=True)
class DAPAConfig:
    """Configuration for the discover-and-attempt PA generator (paper Alg. 4).

    Attributes
    ----------
    overlay_size:
        Target number of peers ``N_O`` in the overlay network.
    stubs:
        Number of stubs ``m`` each joining peer tries to fill.
    hard_cutoff:
        Hard cutoff ``kc`` on overlay degree (``None`` for unbounded).
    local_ttl:
        Horizon ``τ_sub``: how many substrate hops a joining peer explores to
        discover existing peers.
    initial_peers:
        Number of substrate nodes seeded into the overlay before growth
        starts (the paper uses 2).
    seed:
        Optional RNG seed.
    substrate:
        Optional substrate configuration (:class:`GRNConfig` or
        :class:`MeshConfig`).  When omitted the generator uses the paper's
        default: a 2-D GRN with N_S = 2 × overlay_size and mean degree 10.
    """

    overlay_size: int
    stubs: int = 1
    hard_cutoff: Optional[int] = NO_CUTOFF
    local_ttl: int = 2
    initial_peers: int = 2
    seed: Optional[int] = None
    substrate: Optional[object] = field(default=None)

    def __post_init__(self) -> None:
        _require(self.overlay_size >= 2, "overlay_size must be at least 2")
        _require(self.stubs >= 1, "stubs (m) must be at least 1")
        _require(self.local_ttl >= 1, "local_ttl (tau_sub) must be at least 1")
        _require(self.initial_peers >= 2, "initial_peers must be at least 2")
        _require(
            self.initial_peers <= self.overlay_size,
            "initial_peers cannot exceed overlay_size",
        )
        if self.hard_cutoff is not None:
            _require(self.hard_cutoff >= 1, "hard_cutoff must be at least 1")
            _require(
                self.hard_cutoff >= self.stubs,
                "hard_cutoff must be >= stubs (m)",
            )
        if self.substrate is not None:
            _require(
                isinstance(self.substrate, (GRNConfig, MeshConfig)),
                "substrate must be a GRNConfig or MeshConfig",
            )
            substrate_nodes = self.substrate.number_of_nodes
            _require(
                substrate_nodes >= self.overlay_size,
                "the substrate must have at least overlay_size nodes",
            )

    @property
    def has_cutoff(self) -> bool:
        """``True`` when a finite hard cutoff is configured."""
        return self.hard_cutoff is not None

    def effective_cutoff(self) -> int:
        """Return the cutoff used by attachment tests (overlay size when unbounded)."""
        return self.hard_cutoff if self.hard_cutoff is not None else self.overlay_size

    def default_substrate(self) -> GRNConfig:
        """Return the paper's default substrate: 2-D GRN, N_S = 2·N_O, <k> = 10."""
        return GRNConfig(
            number_of_nodes=2 * self.overlay_size,
            target_mean_degree=10.0,
            dimensions=2,
            seed=self.seed,
        )


@dataclass(frozen=True)
class SearchConfig:
    """Parameters shared by the search-algorithm simulations.

    Attributes
    ----------
    ttl:
        Time-to-live ``τ`` of a query.
    queries:
        Number of independent queries (source nodes) to average over.
    seed:
        Optional RNG seed for source selection and probabilistic forwarding.
    count_source_as_hit:
        Whether the source node itself counts as a "hit" (a discovered node).
        The paper counts nodes reached by the query; we exclude the source by
        default and expose the flag for sensitivity analysis.
    """

    ttl: int = 5
    queries: int = 100
    seed: Optional[int] = None
    count_source_as_hit: bool = False

    def __post_init__(self) -> None:
        _require(self.ttl >= 0, "ttl must be non-negative")
        _require(self.queries >= 1, "queries must be at least 1")
