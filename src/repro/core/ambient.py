"""Thread-local stacks for the library's ambient selections.

The harness threads three ambient choices through every experiment without
touching call signatures: the executor/progress pair
(:mod:`repro.engine.executor`), the graph backend
(:mod:`repro.core.backend`), and the kernel mode
(:mod:`repro.kernels.dispatch`).  Each used to be a module-level list used
as a stack — correct under the engine's process-pool parallelism (workers
re-install their own contexts from the pickled task), but unsafe once the
scenario compiler started distributing a scenario's panels across *threads*
sharing one process: two threads pushing and popping one list corrupt each
other's contexts.

:class:`AmbientStack` keeps the same push/pop/top contract but stores the
stack per thread.  A fresh thread starts with an empty stack and therefore
sees the module default, so thread workers must re-install the values they
captured from their parent explicitly (see
:func:`repro.scenarios.compile._run_plans`) — inheritance is deliberate,
never implicit, which keeps the single-threaded behaviour bit-for-bit
unchanged.
"""

from __future__ import annotations

import threading
from typing import Generic, List, TypeVar

__all__ = ["AmbientStack"]

T = TypeVar("T")


class AmbientStack(Generic[T]):
    """A per-thread stack of ambient values with a shared default."""

    __slots__ = ("_local",)

    def __init__(self) -> None:
        self._local = threading.local()

    def _items(self) -> List[T]:
        items = getattr(self._local, "items", None)
        if items is None:
            items = []
            self._local.items = items
        return items

    def push(self, value: T) -> None:
        """Install ``value`` as the innermost ambient value for this thread."""
        self._items().append(value)

    def pop(self) -> T:
        """Remove and return this thread's innermost ambient value."""
        return self._items().pop()

    def top(self, default: T) -> T:
        """Return this thread's innermost value, or ``default`` when empty."""
        items = self._items()
        return items[-1] if items else default

    def __bool__(self) -> bool:
        return bool(self._items())
