"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands
-----------
``repro list``
    List the reproducible experiments (figures, tables, ablations).
``repro figure fig9 --scale small --jobs 4 --cache .repro-cache --out results/``
    Run one experiment — optionally across worker processes and against a
    persistent result cache — and print its series (optionally saving
    JSON/CSV).  ``--json`` emits a machine-readable payload instead.
``repro suite --scale small --jobs 8 --cache .repro-cache --out results/``
    Run every registered experiment through one shared worker pool; cached
    experiments are skipped, so an interrupted suite resumes where it left
    off.  ``--json`` emits per-experiment results and cache-hit flags.
``repro run my_scenario.json --scale small --jobs 4 --cache .repro-cache``
    Run a user-authored declarative scenario spec (see
    :mod:`repro.scenarios`) with the same engine options as ``figure``;
    ``--inline '<json>'`` takes the spec on the command line.
``repro scenarios list`` / ``repro scenarios show fig9``
    Introspect the built-in scenarios (every figure/table/ablation is a
    spec); ``show --scale smoke`` prints the compiled series labels.
``repro generate pa --nodes 10000 --stubs 2 --cutoff 40 --out topo.json``
    Generate a topology and print (or save) its summary statistics.
``repro search nf --model pa --nodes 5000 --stubs 2 --cutoff 10 --ttl 8``
    Generate a topology and run a search-efficiency measurement on it.
``repro churn --peers 200 --duration 100 --cutoff 8``
    Run a join/leave (churn) simulation and print the topology time series.
``repro bench --quick --json --compare BENCH_prev.json``
    Run the pinned benchmark suite and write/compare a schema-versioned
    ``BENCH_<date>_<sha>.json`` performance-trajectory file.
``repro cache stats --cache .repro-cache``
    Print result-store entry count, total bytes, the persisted hit/miss
    counters of the last run, and the last ``gc`` summary.
``repro cache gc --cache .repro-cache --max-bytes 500m --older-than 7d``
    Evict least-recently-written result-store entries until the cache fits
    the byte budget and/or drop entries older than the age bound.
``repro serve --port 8765 --jobs 4 --cache .repro-cache``
    Serve scenario specs over HTTP: warm requests are answered from the
    result store, identical in-flight specs are deduplicated, and progress
    streams as NDJSON (see :mod:`repro.serve`).
``repro lint src/ --json --select RPL1``
    Run the AST invariant checker (draw-order, kernel purity, pool
    contracts, ambient discipline; see :mod:`repro.staticcheck`) — the CI
    lint gate.  ``--list-rules`` prints the rule catalogue.

Every run-style subcommand (``figure``/``suite``/``run``/``generate``/
``search``) also takes ``--trace <out.json>`` (write a schema-versioned
trace of spans/counters/histograms) and ``--metrics`` (print a telemetry
summary to stderr); with either flag the ambient telemetry collector is
enabled for the run, otherwise instrumentation is a no-op.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro._version import __version__
from repro.analysis.degree_distribution import degree_distribution
from repro.analysis.powerlaw import fit_power_law
from repro.core.backend import freeze_for_backend, use_kernels
from repro.core.errors import AnalysisError, ReproError
from repro.engine.executor import executor_from_jobs
from repro.engine.progress import ProgressReporter
from repro.engine.store import ResultStore
from repro.engine.tasks import run_suite
from repro.experiments.registry import (
    available_experiments,
    experiment_titles,
    run_experiment_cached,
)
from repro.experiments.runner import ExperimentScale
from repro.generators.registry import available_generators, create_generator
from repro.scenarios import (
    ScenarioSpec,
    builtin_scenarios,
    compile_scenario,
    get_builtin_scenario,
    run_scenario_cached,
)
from repro.search.flooding import FloodingSearch
from repro.search.metrics import normalized_walk_curve, search_curve
from repro.search.normalized_flooding import NormalizedFloodingSearch
from repro.simulation.churn import ChurnConfig, ChurnProcess
from repro.telemetry.collector import (
    TelemetryCollector,
    telemetry_clock,
    use_telemetry,
)

__all__ = ["main", "build_parser"]


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    """The shared ``--trace``/``--metrics`` flags of every run-style command."""
    parser.add_argument("--trace", type=Path, default=None, metavar="OUT.json",
                        help="enable telemetry and write the trace (span "
                             "tree, counters, histograms, per-task records) "
                             "to this JSON file")
    parser.add_argument("--trace-format", default="repro",
                        choices=["repro", "chrome"],
                        help="--trace output format: 'repro' (the "
                             "schema-versioned export) or 'chrome' (Chrome "
                             "trace-event JSON for about:tracing / Perfetto)")
    parser.add_argument("--metrics", action="store_true",
                        help="enable telemetry and print a summary of spans, "
                             "counters, and histogram percentiles to stderr "
                             "after the run")
    parser.add_argument("--log-json", action="store_true",
                        help="emit structured JSON-lines logs (trace-id "
                             "stamped) to stderr")


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Scale-free overlay topologies with hard cutoffs for unstructured "
            "P2P networks (Guclu & Yuksel, ICDCS 2007) — reproduction toolkit"
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    # list
    subparsers.add_parser("list", help="list reproducible experiments")

    # figure
    figure = subparsers.add_parser("figure", help="run one figure/table experiment")
    figure.add_argument("experiment", help="experiment id, e.g. fig1, table1, fig9")
    figure.add_argument(
        "--scale", default="small", choices=["smoke", "small", "paper"],
        help="experiment scale preset (default: small)",
    )
    figure.add_argument("--seed", type=int, default=None, help="base RNG seed")
    figure.add_argument("--out", type=Path, default=None,
                        help="directory to write <experiment>.json and .csv into")
    figure.add_argument("--jobs", type=int, default=1,
                        help="worker processes for realization tasks (default: 1)")
    figure.add_argument("--backend", default="adj", choices=["adj", "csr"],
                        help="graph backend for the search phase: 'adj' "
                             "(mutable reference) or 'csr' (frozen, "
                             "vectorized kernels); results are identical")
    figure.add_argument("--cache", type=Path, default=None,
                        help="result-store directory; identical re-runs are "
                             "served from cache")
    figure.add_argument("--kernels", default="auto",
                        choices=["auto", "python", "jit"],
                        help="execution tier for topology generation "
                             "(substrate builds included), the stochastic "
                             "search loops, and batched protocol queries: "
                             "'jit' compiles them with numba (identical "
                             "results), 'auto' picks jit when numba is "
                             "installed, 'python' forces the reference loops")
    figure.add_argument("--progress", action="store_true",
                        help="stream per-task progress to stderr")
    figure.add_argument("--json", action="store_true",
                        help="print a machine-readable JSON payload "
                             "(experiment id, cache-hit flag, full series) "
                             "instead of the text table")
    _add_telemetry_args(figure)

    # suite
    suite = subparsers.add_parser(
        "suite", help="run many experiments through one shared worker pool"
    )
    suite.add_argument(
        "--scale", default="small", choices=["smoke", "small", "paper"],
        help="experiment scale preset (default: small)",
    )
    suite.add_argument("--seed", type=int, default=None, help="base RNG seed")
    suite.add_argument("--jobs", type=int, default=1,
                       help="worker processes shared by all experiments")
    suite.add_argument("--backend", default="adj", choices=["adj", "csr"],
                       help="graph backend for the search phase (identical "
                            "results; 'csr' is faster)")
    suite.add_argument("--kernels", default="auto",
                       choices=["auto", "python", "jit"],
                       help="execution tier for generation and search loops "
                            "(identical results; 'jit' is faster with numba)")
    suite.add_argument("--cache", type=Path, default=None,
                       help="result-store directory; completed experiments are "
                            "skipped on re-runs, making the suite resumable")
    suite.add_argument("--out", type=Path, default=None,
                       help="directory to write per-experiment JSON/CSV into")
    suite.add_argument("--only", nargs="*", default=None,
                       help="run only these experiment ids (default: all)")
    suite.add_argument("--progress", action="store_true",
                       help="stream per-task progress to stderr")
    suite.add_argument("--json", action="store_true",
                       help="print a machine-readable JSON report (per-"
                            "experiment results, timings, cache-hit flags) "
                            "instead of the summary table")
    _add_telemetry_args(suite)

    # run (declarative scenarios)
    run_cmd = subparsers.add_parser(
        "run", help="run a declarative scenario spec (JSON file or --inline)"
    )
    run_cmd.add_argument(
        "spec", nargs="?", default=None,
        help="path to a scenario JSON file, or a built-in scenario id",
    )
    run_cmd.add_argument("--inline", default=None, metavar="JSON",
                         help="scenario spec as an inline JSON string")
    run_cmd.add_argument(
        "--scale", default="small", choices=["smoke", "small", "paper"],
        help="experiment scale preset (default: small)",
    )
    run_cmd.add_argument("--seed", type=int, default=None, help="base RNG seed")
    run_cmd.add_argument("--jobs", type=int, default=1,
                         help="worker processes for realization tasks (default: 1)")
    run_cmd.add_argument("--backend", default="adj", choices=["adj", "csr"],
                         help="graph backend for the search phase; results "
                              "are identical ('csr' is faster)")
    run_cmd.add_argument("--kernels", default="auto",
                         choices=["auto", "python", "jit"],
                         help="execution tier for generation and search "
                              "loops (identical results; 'jit' is faster "
                              "with numba)")
    run_cmd.add_argument("--compare", type=Path, default=None, metavar="BASELINE",
                         help="compare the result against a stored baseline "
                              "JSON (a previous --out / save_json file); "
                              "exits non-zero when any shared series drifts "
                              "beyond --tolerance")
    run_cmd.add_argument("--tolerance", type=float, default=0.0,
                         help="maximum relative per-series difference "
                              "accepted by --compare (default: 0.0 — "
                              "byte-identical reproduction)")
    run_cmd.add_argument("--cache", type=Path, default=None,
                         help="result-store directory; re-runs of any "
                              "equivalent spelling of the spec are served "
                              "from cache (specs hash canonically)")
    run_cmd.add_argument("--out", type=Path, default=None,
                         help="directory to write <scenario-id>.json and .csv into")
    run_cmd.add_argument("--progress", action="store_true",
                         help="stream per-task progress to stderr")
    run_cmd.add_argument("--json", action="store_true",
                         help="print a machine-readable JSON payload "
                              "(scenario id, spec hash, cache-hit flag, "
                              "full series) instead of the text table")
    _add_telemetry_args(run_cmd)

    # scenarios (introspection)
    scenarios_cmd = subparsers.add_parser(
        "scenarios", help="introspect the built-in declarative scenarios"
    )
    scenarios_sub = scenarios_cmd.add_subparsers(dest="scenarios_command")
    scenarios_sub.add_parser("list", help="list built-in scenario ids and titles")
    scenarios_show = scenarios_sub.add_parser(
        "show", help="print one built-in scenario's spec as JSON"
    )
    scenarios_show.add_argument("scenario", help="scenario id, e.g. fig9")
    scenarios_show.add_argument(
        "--scale", default=None, choices=["smoke", "small", "paper"],
        help="also print the series labels the spec compiles to at this scale",
    )

    # generate
    generate = subparsers.add_parser("generate", help="generate one overlay topology")
    generate.add_argument("model", choices=available_generators())
    generate.add_argument("--nodes", type=int, default=10_000)
    generate.add_argument("--stubs", type=int, default=1, help="number of stubs m")
    generate.add_argument("--cutoff", type=int, default=None, help="hard cutoff kc")
    generate.add_argument("--exponent", type=float, default=3.0,
                          help="prescribed exponent (CM only)")
    generate.add_argument("--tau-sub", type=int, default=4,
                          help="locality horizon (DAPA only)")
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("--kernels", default="auto",
                          choices=["auto", "python", "jit"],
                          help="execution tier for the construction loop "
                               "(identical topologies; 'jit' is faster "
                               "with numba)")
    generate.add_argument("--fit", action="store_true",
                          help="also fit a power-law exponent to the result")
    generate.add_argument("--out", type=Path, default=None,
                          help="write the edge list to this path")
    _add_telemetry_args(generate)

    # search
    search = subparsers.add_parser("search", help="measure search efficiency")
    search.add_argument("algorithm", choices=["fl", "nf", "rw"])
    search.add_argument("--model", default="pa", choices=available_generators())
    search.add_argument("--nodes", type=int, default=5000)
    search.add_argument("--stubs", type=int, default=2)
    search.add_argument("--cutoff", type=int, default=None)
    search.add_argument("--exponent", type=float, default=3.0)
    search.add_argument("--tau-sub", type=int, default=4)
    search.add_argument("--ttl", type=int, default=8, help="maximum TTL")
    search.add_argument("--queries", type=int, default=100)
    search.add_argument("--seed", type=int, default=None)
    search.add_argument("--backend", default="adj", choices=["adj", "csr"],
                        help="graph backend: freeze the generated topology "
                             "('csr') or search the mutable graph ('adj')")
    search.add_argument("--kernels", default="auto",
                        choices=["auto", "python", "jit"],
                        help="execution tier for generation and search loops "
                             "(identical results; 'jit' is faster with numba)")
    _add_telemetry_args(search)

    # churn
    churn = subparsers.add_parser("churn", help="run a join/leave simulation")
    churn.add_argument("--peers", type=int, default=200, help="initial peers")
    churn.add_argument("--duration", type=float, default=100.0)
    churn.add_argument("--arrival-rate", type=float, default=2.0)
    churn.add_argument("--session", type=float, default=50.0,
                       help="mean session length (0 disables departures)")
    churn.add_argument("--cutoff", type=int, default=None)
    churn.add_argument("--stubs", type=int, default=2)
    churn.add_argument("--seed", type=int, default=None)

    # bench
    bench = subparsers.add_parser(
        "bench", help="run the pinned benchmark suite (perf trajectory)"
    )
    bench.add_argument("--quick", action="store_true",
                       help="small sizes for CI/tests instead of paper scale")
    bench.add_argument("--only", nargs="*", default=None, metavar="PREFIX",
                       help="run only benchmarks whose id starts with one of "
                            "these prefixes (e.g. generate/pa store)")
    bench.add_argument("--out", type=Path, default=None,
                       help="trajectory file to write (default: "
                            "BENCH_<date>_<sha7>.json in the current "
                            "directory)")
    bench.add_argument("--no-write", action="store_true",
                       help="do not write a trajectory file (print only)")
    bench.add_argument("--compare", type=Path, default=None, metavar="BASELINE",
                       help="compare against a previous BENCH_*.json; exits "
                            "non-zero when any shared benchmark regressed "
                            "beyond --tolerance")
    bench.add_argument("--tolerance", type=float, default=0.25,
                       help="maximum accepted relative slowdown for "
                            "--compare (default: 0.25 = 25%%)")
    bench.add_argument("--json", action="store_true",
                       help="print the full trajectory payload (and the "
                            "comparison, if any) as JSON on stdout")

    # cache
    cache = subparsers.add_parser(
        "cache", help="inspect a result-store directory"
    )
    cache_sub = cache.add_subparsers(dest="cache_command")
    cache_stats = cache_sub.add_parser(
        "stats", help="entry count, total bytes, and last-run hit/miss counters"
    )
    cache_stats.add_argument("--cache", type=Path, required=True,
                             help="result-store directory to inspect")
    cache_stats.add_argument("--json", action="store_true",
                             help="print the stats as JSON")
    cache_gc = cache_sub.add_parser(
        "gc", help="evict cache entries LRU-by-mtime to bound a store"
    )
    cache_gc.add_argument("--cache", type=Path, required=True,
                          help="result-store directory to collect")
    cache_gc.add_argument("--max-bytes", default=None, metavar="SIZE",
                          help="evict oldest entries until the store fits "
                               "this budget (plain bytes or k/m/g suffix, "
                               "e.g. 256m)")
    cache_gc.add_argument("--older-than", default=None, metavar="AGE",
                          help="evict entries whose result is older than "
                               "this (seconds, or s/m/h/d suffix, e.g. 7d)")
    cache_gc.add_argument("--dry-run", action="store_true",
                          help="report what would be evicted without deleting")
    cache_gc.add_argument("--json", action="store_true",
                          help="print the gc summary as JSON")

    # lint
    lint = subparsers.add_parser(
        "lint",
        help="run the repro invariant checker (RPL draw-order / kernel "
             "purity / pool-contract / ambient-discipline rules)",
    )
    lint.add_argument("paths", nargs="*", type=Path, default=[Path("src")],
                      metavar="PATH",
                      help="files or directories to lint (default: src)")
    lint.add_argument("--json", action="store_true",
                      help="emit the machine-readable report on stdout")
    lint.add_argument("--select", action="append", default=None,
                      metavar="CODE",
                      help="only run rules matching this code or family "
                           "prefix (e.g. RPL101 or RPL1); repeatable")
    lint.add_argument("--ignore", action="append", default=None,
                      metavar="CODE",
                      help="skip rules matching this code or family prefix; "
                           "repeatable")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="also print suppressed findings with their "
                           "justifications")
    lint.add_argument("--list-rules", action="store_true",
                      help="print every rule code with the invariant it "
                           "checks, then exit")

    # serve
    serve = subparsers.add_parser(
        "serve", help="serve scenario specs over HTTP (see repro.serve)"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (0 picks a free port; default: 8765)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes shared by all scenario "
                            "computations (default: 1)")
    serve.add_argument("--workers", type=int, default=4,
                       help="scenario computations admitted concurrently "
                            "(default: 4)")
    serve.add_argument(
        "--scale", default="small", choices=["smoke", "small", "paper"],
        help="scale preset requests run at (default: small)",
    )
    serve.add_argument("--seed", type=int, default=None, help="base RNG seed")
    serve.add_argument("--backend", default="adj", choices=["adj", "csr"],
                       help="graph backend for the search phase (identical "
                            "results; 'csr' is faster)")
    serve.add_argument("--kernels", default="auto",
                       choices=["auto", "python", "jit"],
                       help="execution tier for generation and search loops "
                            "(identical results; 'jit' is faster with numba)")
    serve.add_argument("--cache", type=Path, default=None,
                       help="result-store directory; warm requests are "
                            "answered straight from disk")
    serve.add_argument("--quiet", action="store_true",
                       help="disable the structured access log and job "
                            "lifecycle log lines on stderr")

    return parser


# --------------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------------- #
def _cmd_list(_: argparse.Namespace) -> int:
    titles = experiment_titles()
    width = max(len(exp_id) for exp_id in titles)
    for exp_id in available_experiments():
        print(f"{exp_id:<{width}}  {titles[exp_id]}")
    return 0


def _save_result(result, out_dir: Path, to_stderr: bool = False) -> None:
    """Write a result's JSON/CSV artifacts under ``out_dir`` and report it."""
    json_path = result.save_json(out_dir / f"{result.experiment_id}.json")
    csv_path = result.save_csv(out_dir / f"{result.experiment_id}.csv")
    print(
        f"wrote {json_path} and {csv_path}",
        file=sys.stderr if to_stderr else sys.stdout,
    )


def _telemetry_collector(args: argparse.Namespace) -> Optional[TelemetryCollector]:
    """A fresh collector when ``--trace``/``--metrics`` asked for one, else
    ``None`` (the ambient stays the zero-overhead null collector)."""
    if getattr(args, "trace", None) is not None or getattr(args, "metrics", False):
        return TelemetryCollector()
    return None


def _telemetry_report(
    args: argparse.Namespace,
    collector: Optional[TelemetryCollector],
    wall_seconds: float,
    store: Optional[ResultStore] = None,
) -> dict:
    """Write ``--trace``, print ``--metrics``, and return the ``--json`` block.

    The block is always present in run-style JSON payloads so consumers can
    rely on its shape; with telemetry disabled it carries only the wall time,
    the kernel provenance (cached probe state — reading it never triggers a
    compile), and the cache counters.
    """
    from repro.kernels.dispatch import probe_status

    block: dict = {
        "enabled": collector is not None,
        "wall_seconds": wall_seconds,
        "kernels": {
            "requested": getattr(args, "kernels", None),
            "probe": probe_status(),
        },
        "cache": store.stats() if store is not None else None,
    }
    if collector is None:
        return block
    export = collector.export()
    block["trace"] = export
    if args.trace is not None:
        args.trace.parent.mkdir(parents=True, exist_ok=True)
        if getattr(args, "trace_format", "repro") == "chrome":
            from repro.telemetry.trace import to_chrome_trace

            payload = to_chrome_trace(export)
        else:
            payload = dict(export, wall_seconds=wall_seconds)
        args.trace.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"wrote trace to {args.trace}", file=sys.stderr)
    if args.metrics:
        for line in collector.summary_lines():
            print(line, file=sys.stderr)
    return block


def _cmd_figure(args: argparse.Namespace) -> int:
    scale = ExperimentScale.from_name(args.scale)
    store = ResultStore(args.cache) if args.cache is not None else None
    progress = ProgressReporter(stream=sys.stderr if args.progress else None)
    collector = _telemetry_collector(args)
    started = telemetry_clock()
    with use_telemetry(collector), executor_from_jobs(args.jobs) as executor:
        result, from_cache = run_experiment_cached(
            args.experiment,
            scale=scale,
            seed=args.seed,
            executor=executor,
            store=store,
            progress=progress,
            backend=args.backend,
            kernels=args.kernels,
        )
    wall_seconds = telemetry_clock() - started
    if store is not None:
        store.save_stats()
    telemetry_block = _telemetry_report(args, collector, wall_seconds, store)
    if args.json:
        print(json.dumps(
            {
                "experiment_id": result.experiment_id,
                "from_cache": from_cache,
                "result": result.as_dict(),
                "telemetry": telemetry_block,
            },
            indent=2,
            sort_keys=True,
        ))
    else:
        print(result.to_table())
    if store is not None and from_cache:
        print(f"served from cache ({store.root})", file=sys.stderr)
    if args.out is not None:
        _save_result(result, args.out, to_stderr=args.json)
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    scale = ExperimentScale.from_name(args.scale)
    store = ResultStore(args.cache) if args.cache is not None else None
    progress = ProgressReporter(stream=sys.stderr if args.progress else None)

    def save_entry(entry) -> None:
        # Persist as soon as each experiment finishes so an interrupted
        # suite keeps everything completed so far.
        if args.out is not None:
            entry.result.save_json(args.out / f"{entry.experiment_id}.json")
            entry.result.save_csv(args.out / f"{entry.experiment_id}.csv")

    collector = _telemetry_collector(args)
    started = telemetry_clock()
    with use_telemetry(collector), executor_from_jobs(args.jobs) as executor:
        report = run_suite(
            args.only,
            scale=scale,
            seed=args.seed,
            executor=executor,
            store=store,
            progress=progress,
            on_result=save_entry,
            backend=args.backend,
            kernels=args.kernels,
        )
    wall_seconds = telemetry_clock() - started
    if store is not None:
        store.save_stats()
    telemetry_block = _telemetry_report(args, collector, wall_seconds, store)
    if args.out is not None:
        print(f"wrote {2 * len(report.entries)} files under {args.out}", file=sys.stderr)
    if args.json:
        payload = report.as_dict()
        payload["telemetry"] = telemetry_block
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0


def _load_scenario(args: argparse.Namespace) -> "tuple[ScenarioSpec, bool]":
    """Resolve the scenario for ``repro run``: inline JSON, file, or built-in.

    Returns ``(spec, is_builtin)``; built-ins are flagged so the run can be
    keyed like ``repro figure`` and share its cache entries.
    """
    if (args.spec is None) == (args.inline is None):
        raise ReproError(
            "give exactly one scenario source: a spec file/built-in id, "
            "or --inline '<json>'"
        )
    if args.inline is not None:
        return ScenarioSpec.from_json(args.inline), False
    path = Path(args.spec)
    if path.exists():
        try:
            text = path.read_text()
        except (OSError, UnicodeDecodeError) as error:
            raise ReproError(f"cannot read scenario file {args.spec!r}: {error}")
        return ScenarioSpec.from_json(text), False
    if args.spec in builtin_scenarios():
        return get_builtin_scenario(args.spec), True
    raise ReproError(
        f"scenario file {args.spec!r} does not exist and is not a "
        f"built-in scenario id (see 'repro scenarios list')"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    spec, is_builtin = _load_scenario(args)
    scale = ExperimentScale.from_name(args.scale)
    store = ResultStore(args.cache) if args.cache is not None else None
    progress = ProgressReporter(stream=sys.stderr if args.progress else None)
    collector = _telemetry_collector(args)
    started = telemetry_clock()
    with use_telemetry(collector), executor_from_jobs(args.jobs) as executor:
        if is_builtin:
            # Built-in ids go through the experiment registry so the cache
            # entry is the same one `repro figure <id>` / `repro suite` use
            # (keyed by id + scale, no spec-hash extra).  Results are
            # byte-identical either way.
            result, from_cache = run_experiment_cached(
                spec.scenario_id,
                scale=scale,
                seed=args.seed,
                executor=executor,
                store=store,
                progress=progress,
                backend=args.backend,
                kernels=args.kernels,
            )
        else:
            result, from_cache = run_scenario_cached(
                spec,
                scale=scale,
                seed=args.seed,
                executor=executor,
                store=store,
                progress=progress,
                backend=args.backend,
                kernels=args.kernels,
            )
    wall_seconds = telemetry_clock() - started
    if store is not None:
        store.save_stats()
    telemetry_block = _telemetry_report(args, collector, wall_seconds, store)
    comparison = None
    if args.compare is not None:
        comparison = _compare_against_baseline(result, args.compare, args.tolerance)
    payload = {
        "scenario": spec.scenario_id,
        "spec_hash": spec.spec_hash(),
        "from_cache": from_cache,
        "result": result.as_dict(),
        "telemetry": telemetry_block,
    }
    if comparison is not None:
        payload["comparison"] = comparison
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(result.to_table())
        if comparison is not None:
            _print_comparison(comparison)
    if store is not None and from_cache:
        print(f"served from cache ({store.root})", file=sys.stderr)
    if args.out is not None:
        _save_result(result, args.out, to_stderr=args.json)
    if comparison is not None and not comparison["within_tolerance"]:
        if not comparison["labels_match"]:
            summary = comparison["summary"]
            print(
                f"error: series labels diverged from baseline {args.compare} "
                f"(shared: {summary['shared_series']}, only in this run: "
                f"{summary['only_in_first']}, only in baseline: "
                f"{summary['only_in_second']})",
                file=sys.stderr,
            )
        else:
            print(
                f"error: result drifted beyond tolerance {args.tolerance} "
                f"from baseline {args.compare} "
                f"(worst: {comparison['summary']['worst_label']!r} at "
                f"{comparison['summary']['worst_max_relative_difference']:.3e})",
                file=sys.stderr,
            )
        return 3
    return 0


def _compare_against_baseline(result, baseline_path: Path, tolerance: float) -> dict:
    """Diff ``result`` against a stored baseline via :mod:`experiments.compare`."""
    from repro.experiments.compare import compare_results
    from repro.experiments.results import ExperimentResult

    try:
        baseline = ExperimentResult.load_json(baseline_path)
    except (OSError, ValueError, KeyError, TypeError) as error:
        raise ReproError(
            f"cannot load baseline result {str(baseline_path)!r}: {error}"
        ) from None
    report = compare_results(result, baseline)
    # The gate must fail closed: a run whose series *labels* drifted (or
    # that dropped/added series) has no shared curves to diff, and an
    # empty diff is a reproduction failure, not a pass.
    labels_match = (
        bool(report.shared)
        and not report.only_in_first
        and not report.only_in_second
    )
    return {
        "baseline": str(baseline_path),
        "tolerance": tolerance,
        "within_tolerance": labels_match and report.all_within(tolerance),
        "labels_match": labels_match,
        "summary": report.summary(),
        "series": [
            {
                "label": item.label,
                "max_relative_difference": item.max_relative_difference,
                "mean_relative_difference": item.mean_relative_difference,
                "points_compared": item.points_compared,
                "identical_grid": item.identical_grid,
                "within_tolerance": item.within(tolerance),
            }
            for item in report.shared
        ],
    }


def _print_comparison(comparison: dict) -> None:
    """Render a ``--compare`` delta as a compact text table."""
    print(f"\ncompared against {comparison['baseline']}:")
    width = max(
        [len(item["label"]) for item in comparison["series"]] or [5]
    )
    for item in comparison["series"]:
        verdict = "ok" if item["within_tolerance"] else "DRIFT"
        print(
            f"  {item['label']:<{width}}  "
            f"max {item['max_relative_difference']:.3e}  "
            f"mean {item['mean_relative_difference']:.3e}  "
            f"({item['points_compared']} pts)  {verdict}"
        )
    for label in comparison["summary"]["only_in_first"]:
        print(f"  {label:<{width}}  only in this run")
    for label in comparison["summary"]["only_in_second"]:
        print(f"  {label:<{width}}  only in baseline")


def _cmd_scenarios(args: argparse.Namespace) -> int:
    command = args.scenarios_command or "list"
    specs = builtin_scenarios()
    if command == "list":
        width = max(len(scenario_id) for scenario_id in specs)
        for scenario_id, spec in specs.items():
            print(f"{scenario_id:<{width}}  {spec.title}")
        return 0
    # show
    spec = get_builtin_scenario(args.scenario)
    if args.scale is not None:
        plans = compile_scenario(spec, ExperimentScale.from_name(args.scale))
        print(json.dumps(
            {
                "scenario": spec.scenario_id,
                "scale": args.scale,
                "spec_hash": spec.spec_hash(),
                "series": [plan.label for plan in plans],
            },
            indent=2,
            sort_keys=True,
        ))
        return 0
    print(spec.to_json())
    return 0


def _build_generator(args: argparse.Namespace):
    kwargs = {"seed": args.seed}
    if args.model == "cm":
        kwargs.update(
            number_of_nodes=args.nodes,
            exponent=args.exponent,
            min_degree=args.stubs,
            hard_cutoff=args.cutoff,
        )
    elif args.model == "dapa":
        kwargs.update(
            overlay_size=args.nodes,
            stubs=args.stubs,
            hard_cutoff=args.cutoff,
            local_ttl=args.tau_sub,
        )
    else:
        kwargs.update(
            number_of_nodes=args.nodes,
            stubs=args.stubs,
            hard_cutoff=args.cutoff,
        )
    return create_generator(args.model, **kwargs)


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = _build_generator(args)
    collector = _telemetry_collector(args)
    started = telemetry_clock()
    with use_telemetry(collector), use_kernels(args.kernels):
        result = generator.generate()
    # The stdout payload stays exactly as before (CI diffs it byte-wise
    # across backends/tiers); the trace file and stderr carry the telemetry.
    _telemetry_report(args, collector, telemetry_clock() - started)
    summary = result.summary()
    print(json.dumps(summary, indent=2, sort_keys=True))
    if args.fit:
        try:
            fit = fit_power_law(
                result.graph, k_min=max(1, args.stubs), exclude_cutoff_spike=True
            )
            print(json.dumps({"power_law_fit": fit.as_dict()}, indent=2))
        except AnalysisError as error:
            print(f"power-law fit unavailable: {error}", file=sys.stderr)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        with args.out.open("w") as handle:
            for u, v in result.graph.edges():
                handle.write(f"{u} {v}\n")
        print(f"wrote edge list to {args.out}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    generator = _build_generator(args)
    ttl_values = list(range(1, args.ttl + 1))
    collector = _telemetry_collector(args)
    started = telemetry_clock()
    with use_telemetry(collector), use_kernels(args.kernels):
        graph = freeze_for_backend(generator.generate_graph(), args.backend)
        if args.algorithm == "fl":
            curve = search_curve(
                graph, FloodingSearch(), ttl_values, queries=args.queries,
                rng=args.seed,
            )
        elif args.algorithm == "nf":
            curve = search_curve(
                graph,
                NormalizedFloodingSearch(k_min=args.stubs),
                ttl_values,
                queries=args.queries,
                rng=args.seed,
            )
        else:
            curve = normalized_walk_curve(
                graph, ttl_values, k_min=args.stubs, queries=args.queries,
                rng=args.seed,
            )
    # Stdout stays the bare curve payload (CI diffs it across backends);
    # the trace file and stderr carry the telemetry.
    _telemetry_report(args, collector, telemetry_clock() - started)
    print(json.dumps(curve.as_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_churn(args: argparse.Namespace) -> int:
    config = ChurnConfig(
        initial_peers=args.peers,
        duration=args.duration,
        arrival_rate=args.arrival_rate,
        mean_session_length=args.session if args.session > 0 else None,
        hard_cutoff=args.cutoff,
        stubs=args.stubs,
        seed=args.seed,
    )
    report = ChurnProcess(config).run()
    print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.telemetry.bench import (
        bench_filename,
        compare_benchmarks,
        run_benchmarks,
    )

    def report_progress(bench_id: str, seconds: float) -> None:
        print(f"  {bench_id:<28} {seconds:9.3f}s", file=sys.stderr)

    payload = run_benchmarks(
        quick=args.quick, only=args.only, progress=report_progress
    )

    out_path: Optional[Path] = None
    if not args.no_write:
        out_path = args.out if args.out is not None else Path(bench_filename())
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"wrote {out_path}", file=sys.stderr)

    comparison = None
    if args.compare is not None:
        try:
            baseline = json.loads(args.compare.read_text())
        except (OSError, ValueError) as error:
            raise ReproError(
                f"cannot load bench baseline {str(args.compare)!r}: {error}"
            ) from None
        try:
            comparison = compare_benchmarks(payload, baseline, args.tolerance)
        except ValueError as error:
            raise ReproError(str(error)) from None

    if args.json:
        out = dict(payload)
        if comparison is not None:
            out["comparison"] = comparison
        print(json.dumps(out, indent=2, sort_keys=True))
    else:
        width = max((len(entry["id"]) for entry in payload["benchmarks"]), default=5)
        for entry in payload["benchmarks"]:
            print(f"{entry['id']:<{width}}  {entry['seconds']:9.3f}s")
        if comparison is not None:
            print(f"\ncompared against {args.compare} "
                  f"(tolerance {comparison['tolerance']:.0%}):")
            for row in comparison["rows"]:
                verdict = "REGRESSED" if row["regressed"] else "ok"
                print(
                    f"  {row['id']:<{width}}  "
                    f"{row['baseline_seconds']:9.3f}s -> "
                    f"{row['current_seconds']:9.3f}s  "
                    f"x{row['ratio']:.2f}  {verdict}"
                )

    if comparison is not None and not comparison["ok"]:
        if comparison["shared"] == 0:
            print(
                f"error: no shared benchmarks between this run and "
                f"{args.compare} (nothing compared fails the gate)",
                file=sys.stderr,
            )
        else:
            print(
                f"error: {comparison['regressions']} benchmark(s) regressed "
                f"beyond tolerance {args.tolerance:.0%} vs {args.compare}",
                file=sys.stderr,
            )
        return 3
    return 0


def _parse_size(text: str) -> int:
    """Parse a byte count: plain digits or a k/m/g(b) suffix (e.g. ``256m``)."""
    raw = text.strip().lower()
    multiplier = 1
    for suffix, factor in (("gb", 1 << 30), ("g", 1 << 30), ("mb", 1 << 20),
                           ("m", 1 << 20), ("kb", 1 << 10), ("k", 1 << 10),
                           ("b", 1)):
        if raw.endswith(suffix):
            raw = raw[: -len(suffix)]
            multiplier = factor
            break
    try:
        value = int(float(raw) * multiplier)
    except ValueError:
        raise ReproError(f"cannot parse size {text!r} (try 1048576, 256m, 2g)")
    if value < 0:
        raise ReproError(f"size must be non-negative, got {text!r}")
    return value


def _parse_duration(text: str) -> float:
    """Parse a duration: seconds, or an s/m/h/d suffix (e.g. ``7d``)."""
    raw = text.strip().lower()
    multiplier = 1.0
    for suffix, factor in (("d", 86400.0), ("h", 3600.0), ("m", 60.0), ("s", 1.0)):
        if raw.endswith(suffix):
            raw = raw[: -len(suffix)]
            multiplier = factor
            break
    try:
        value = float(raw) * multiplier
    except ValueError:
        raise ReproError(f"cannot parse duration {text!r} (try 3600, 12h, 7d)")
    if value < 0:
        raise ReproError(f"duration must be non-negative, got {text!r}")
    return value


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    store = ResultStore(args.cache)
    disk = store.disk_stats()
    last_run = store.last_run_stats()
    last_gc = store.last_gc_stats()
    if args.json:
        print(json.dumps(
            {
                "root": str(store.root),
                "disk": disk,
                "last_run": last_run,
                "last_gc": last_gc,
            },
            indent=2,
            sort_keys=True,
        ))
        return 0
    print(f"cache root:   {store.root}")
    print(f"entries:      {disk['entries']}")
    print(f"total bytes:  {disk['total_bytes']}")
    if last_run is None:
        print("last run:     no recorded run (stores write last-run.json "
              "after figure/suite/run)")
    else:
        print(
            f"last run:     {last_run.get('hits', 0)} hits, "
            f"{last_run.get('misses', 0)} misses, "
            f"{last_run.get('bytes_read', 0)} bytes read, "
            f"{last_run.get('bytes_written', 0)} bytes written"
        )
    if last_gc is not None:
        print(
            f"last gc:      reclaimed {last_gc.get('reclaimed_bytes', 0)} "
            f"bytes ({last_gc.get('removed_entries', 0)} entries evicted, "
            f"{last_gc.get('remaining_entries', 0)} kept)"
        )
    return 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    if args.max_bytes is None and args.older_than is None:
        raise ReproError(
            "repro cache gc needs a policy: --max-bytes and/or --older-than"
        )
    store = ResultStore(args.cache)
    summary = store.gc(
        max_bytes=_parse_size(args.max_bytes) if args.max_bytes else None,
        older_than_seconds=(
            _parse_duration(args.older_than) if args.older_than else None
        ),
        dry_run=args.dry_run,
    )
    if args.json:
        print(json.dumps(dict(summary, root=str(store.root)),
                         indent=2, sort_keys=True))
        return 0
    verb = "would reclaim" if args.dry_run else "reclaimed"
    print(
        f"{verb} {summary['reclaimed_bytes']} bytes "
        f"({summary['removed_entries']} of {summary['scanned_entries']} "
        f"entries); {summary['remaining_entries']} entries / "
        f"{summary['remaining_bytes']} bytes kept"
    )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    if args.cache_command == "stats":
        return _cmd_cache_stats(args)
    if args.cache_command == "gc":
        return _cmd_cache_gc(args)
    raise ReproError("usage: repro cache {stats|gc} --cache DIR")


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the linter is a dev/CI tool and must not slow down
    # `repro --help` or the run-style commands.
    from repro.staticcheck import lint_paths, render_json, render_rules, render_text

    if args.list_rules:
        render_rules(sys.stdout)
        return 0
    report = lint_paths(args.paths, select=args.select, ignore=args.ignore)
    if args.json:
        print(json.dumps(render_json(report), indent=2, sort_keys=True))
    else:
        render_text(report, sys.stdout, show_suppressed=args.show_suppressed)
    return report.exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.engine.executor import ParallelExecutor
    from repro.serve import ScenarioService, ServeHTTP
    from repro.telemetry.logs import JsonLinesHandler, install_log_handler

    if not args.quiet:
        # The service's access log and job lifecycle records are structured
        # JSON lines; install the stderr handler unless silenced.
        install_log_handler(JsonLinesHandler(sys.stderr))
    store = ResultStore(args.cache) if args.cache else None
    executor = ParallelExecutor(jobs=args.jobs)
    service = ScenarioService(
        store=store,
        executor=executor,
        scale=args.scale,
        seed=args.seed,
        backend=args.backend,
        kernels=args.kernels,
        workers=args.workers,
        telemetry=TelemetryCollector(),
    )
    http = ServeHTTP(
        service, host=args.host, port=args.port, access_log=not args.quiet
    )

    async def _serve() -> None:
        await http.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        print(f"serving on http://{http.host}:{http.port}", file=sys.stderr)
        try:
            await stop.wait()
        finally:
            await http.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler fallback
        pass
    finally:
        service.close()
        executor.close()
    print("serve: shut down cleanly", file=sys.stderr)
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "figure": _cmd_figure,
    "suite": _cmd_suite,
    "run": _cmd_run,
    "scenarios": _cmd_scenarios,
    "generate": _cmd_generate,
    "search": _cmd_search,
    "churn": _cmd_churn,
    "bench": _cmd_bench,
    "cache": _cmd_cache,
    "lint": _cmd_lint,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if getattr(args, "log_json", False):
        from repro.telemetry.logs import JsonLinesHandler, install_log_handler

        install_log_handler(JsonLinesHandler(sys.stderr))
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
